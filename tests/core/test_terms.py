"""Unit tests for the term language (Section 3.1)."""

import pytest

from repro.core.errors import SyntaxKindError
from repro.core.terms import (
    Collection,
    Const,
    Func,
    LabelSpec,
    LTerm,
    OBJECT,
    Var,
    constants_of,
    functors_of,
    identity_of,
    is_ground,
    is_term,
    labels_of,
    substitute_term,
    term_depth,
    term_size,
    type_of,
    types_of,
    variables_of,
)


class TestConstruction:
    def test_variable_default_type_is_object(self):
        assert Var("X").type == OBJECT

    def test_typed_variable(self):
        v = Var("X", "path")
        assert v.name == "X" and v.type == "path"

    def test_constant_str_and_int(self):
        assert Const("john").value == "john"
        assert Const(7).value == 7

    def test_constant_rejects_bool(self):
        with pytest.raises(SyntaxKindError):
            Const(True)

    def test_constant_rejects_float(self):
        with pytest.raises(SyntaxKindError):
            Const(3.14)

    def test_func_requires_args(self):
        with pytest.raises(SyntaxKindError):
            Func("f", ())

    def test_func_args_must_be_terms(self):
        with pytest.raises(SyntaxKindError):
            Func("f", ("not-a-term",))

    def test_empty_variable_name_rejected(self):
        with pytest.raises(SyntaxKindError):
            Var("")

    def test_empty_type_rejected(self):
        with pytest.raises(SyntaxKindError):
            Var("X", "")

    def test_collection_nonempty(self):
        with pytest.raises(SyntaxKindError):
            Collection(())

    def test_collection_members_must_be_terms(self):
        with pytest.raises(SyntaxKindError):
            Collection((Const("a"), "b"))

    def test_lterm_requires_specs(self):
        with pytest.raises(SyntaxKindError):
            LTerm(Const("john"), ())

    def test_lterm_base_cannot_be_labelled(self):
        """Example 1: student: id[name => joe][age => 20] is not a term."""
        inner = LTerm(Const("id", "student"), (LabelSpec("name", Const("joe")),))
        with pytest.raises(SyntaxKindError):
            LTerm(inner, (LabelSpec("age", Const(20)),))

    def test_label_spec_value_kinds(self):
        LabelSpec("l", Const("a"))
        LabelSpec("l", Collection((Const("a"), Const("b"))))
        with pytest.raises(SyntaxKindError):
            LabelSpec("l", "raw")

    def test_nested_labelled_term_inside_function_args(self):
        """Function arguments may themselves be labelled terms."""
        inner = LTerm(Const("n1", "node"), (LabelSpec("linkto", Const("n2")),))
        outer = Func("id", (inner, Const("n2")), "path")
        assert outer.arity == 2

    def test_lterm_type_is_base_type(self):
        t = LTerm(Const("p1", "path"), (LabelSpec("src", Const("a")),))
        assert t.type == "path"


class TestEqualityAndHashing:
    def test_structural_equality(self):
        a = LTerm(Const("john", "person"), (LabelSpec("age", Const(28)),))
        b = LTerm(Const("john", "person"), (LabelSpec("age", Const(28)),))
        assert a == b
        assert hash(a) == hash(b)

    def test_spec_order_distinguishes_syntax(self):
        """t[a=>x, b=>y] and t[b=>y, a=>x] are different syntax trees
        (though semantically equivalent — see decompose tests)."""
        base = Const("t")
        one = LTerm(base, (LabelSpec("a", Const("x")), LabelSpec("b", Const("y"))))
        two = LTerm(base, (LabelSpec("b", Const("y")), LabelSpec("a", Const("x"))))
        assert one != two

    def test_type_distinguishes_terms(self):
        assert Const("john", "person") != Const("john")

    def test_int_str_constants_distinct(self):
        assert Const(1) != Const("1")

    def test_terms_usable_in_sets(self):
        terms = {Var("X"), Var("X"), Const("a"), Func("f", (Var("X"),))}
        assert len(terms) == 3


class TestAccessors:
    def test_identity_of_strips_labels(self):
        t = LTerm(Const("p", "path"), (LabelSpec("src", Const("a")),))
        assert identity_of(t) == Const("p", "path")

    def test_identity_of_plain_term(self):
        assert identity_of(Var("X")) == Var("X")

    def test_type_of(self):
        assert type_of(Const("john", "person")) == "person"
        assert type_of(Var("X")) == OBJECT

    def test_variables_of_collects_everywhere(self):
        t = LTerm(
            Func("id", (Var("X"), Var("Y")), "path"),
            (LabelSpec("src", Var("X")), LabelSpec("vals", Collection((Var("Z"), Const("a"))))),
        )
        assert variables_of(t) == {"X", "Y", "Z"}

    def test_is_ground(self):
        assert is_ground(Const("a"))
        assert is_ground(Func("f", (Const("a"),)))
        assert not is_ground(Var("X"))
        assert not is_ground(LTerm(Const("p"), (LabelSpec("l", Var("V")),)))

    def test_is_ground_collection_value(self):
        t = LTerm(Const("p"), (LabelSpec("l", Collection((Const("a"), Var("X")))),))
        assert not is_ground(t)

    def test_labels_of_nested(self):
        inner = LTerm(Const("c"), (LabelSpec("inner", Const("v")),))
        t = LTerm(Const("p"), (LabelSpec("outer", inner),))
        assert labels_of(t) == {"outer", "inner"}

    def test_types_of(self):
        t = LTerm(Const("p", "path"), (LabelSpec("src", Const("a", "node")),))
        assert types_of(t) == {"path", "node"}

    def test_constants_and_functors(self):
        t = Func("f", (Const("a"), Func("g", (Const(1),))))
        assert constants_of(t) == {"a", 1}
        assert functors_of(t) == {("f", 2), ("g", 1)}

    def test_term_size_and_depth(self):
        assert term_size(Const("a")) == 1
        assert term_depth(Const("a")) == 1
        nested = Func("f", (Func("g", (Const("a"),)),))
        assert term_depth(nested) == 3


class TestSubstitution:
    def test_substitute_variable(self):
        assert substitute_term(Var("X"), {"X": Const("a")}) == Const("a")

    def test_substitute_missing_is_identity(self):
        assert substitute_term(Var("X"), {}) == Var("X")

    def test_substitute_inside_function(self):
        t = Func("id", (Var("X"), Var("Y")))
        result = substitute_term(t, {"X": Const("a")})
        assert result == Func("id", (Const("a"), Var("Y")))

    def test_substitute_inside_labels(self):
        t = LTerm(Var("P", "path"), (LabelSpec("src", Var("X")),))
        result = substitute_term(t, {"P": Const("p1"), "X": Const("a")})
        assert result == LTerm(Const("p1", "path"), (LabelSpec("src", Const("a")),))

    def test_substitute_transfers_type_to_untyped_replacement(self):
        result = substitute_term(Var("X", "node"), {"X": Const("a")})
        assert result == Const("a", "node")

    def test_substitute_keeps_existing_type(self):
        result = substitute_term(Var("X", "node"), {"X": Const("a", "city")})
        assert result == Const("a", "city")

    def test_substitute_collection_values(self):
        t = LTerm(Const("p"), (LabelSpec("l", Collection((Var("X"), Const("b")))),))
        result = substitute_term(t, {"X": Const("a")})
        assert result == LTerm(Const("p"), (LabelSpec("l", Collection((Const("a"), Const("b")))),))

    def test_substitute_labelled_replacement_folds_labels(self):
        """Binding a labelled-term base variable merges label blocks
        instead of creating the forbidden t[...][...]."""
        replacement = LTerm(Const("p"), (LabelSpec("a", Const("x")),))
        t = LTerm(Var("P"), (LabelSpec("b", Const("y")),))
        result = substitute_term(t, {"P": replacement})
        assert isinstance(result, LTerm)
        assert result.base == Const("p")
        assert [s.label for s in result.specs] == ["a", "b"]

    def test_no_new_object_when_unchanged(self):
        t = Func("f", (Const("a"),))
        assert substitute_term(t, {"Z": Const("q")}) is t

    def test_is_term(self):
        assert is_term(Var("X"))
        assert is_term(Const("a"))
        assert not is_term("a")
        assert not is_term(Collection((Const("a"),)))
