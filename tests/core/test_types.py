"""Unit tests for the type hierarchy (Sections 2.3, 3.1)."""

import pytest

from repro.core.errors import TypeOrderError
from repro.core.terms import OBJECT
from repro.core.types import SubtypeDecl, TypeHierarchy


class TestSubtypeDecl:
    def test_valid(self):
        decl = SubtypeDecl("proper_np", "noun_phrase")
        assert decl.sub == "proper_np"

    def test_reflexive_rejected(self):
        with pytest.raises(TypeOrderError):
            SubtypeDecl("a", "a")

    def test_object_has_no_proper_supertype(self):
        with pytest.raises(TypeOrderError):
            SubtypeDecl(OBJECT, "a")

    def test_empty_rejected(self):
        with pytest.raises(TypeOrderError):
            SubtypeDecl("", "a")


class TestHierarchy:
    def test_everything_below_object(self):
        h = TypeHierarchy()
        h.add_symbol("anything")
        assert h.is_subtype("anything", OBJECT)
        assert h.is_subtype(OBJECT, OBJECT)

    def test_declared_edge(self):
        h = TypeHierarchy()
        h.declare("student", "person")
        assert h.is_subtype("student", "person")
        assert not h.is_subtype("person", "student")

    def test_transitivity(self):
        h = TypeHierarchy()
        h.declare("a", "b")
        h.declare("b", "c")
        assert h.is_subtype("a", "c")

    def test_reflexivity(self):
        h = TypeHierarchy()
        h.add_symbol("a")
        assert h.is_subtype("a", "a")

    def test_cycle_rejected(self):
        h = TypeHierarchy()
        h.declare("a", "b")
        h.declare("b", "c")
        with pytest.raises(TypeOrderError):
            h.declare("c", "a")

    def test_two_cycle_rejected(self):
        h = TypeHierarchy()
        h.declare("a", "b")
        with pytest.raises(TypeOrderError):
            h.declare("b", "a")

    def test_diamond_allowed(self):
        h = TypeHierarchy()
        h.declare("bottom", "left")
        h.declare("bottom", "right")
        h.declare("left", "top")
        h.declare("right", "top")
        assert h.is_subtype("bottom", "top")
        assert not h.comparable("left", "right")

    def test_supertypes_include_self_and_object(self):
        h = TypeHierarchy()
        h.declare("student", "person")
        assert h.supertypes("student") == {"student", "person", OBJECT}

    def test_subtypes_of_object_is_everything(self):
        h = TypeHierarchy()
        h.declare("a", "b")
        assert h.subtypes(OBJECT) == {OBJECT, "a", "b"}

    def test_subtypes_downset(self):
        h = TypeHierarchy()
        h.declare("a", "b")
        h.declare("c", "b")
        assert h.subtypes("b") == {"a", "b", "c"}

    def test_symbols(self):
        h = TypeHierarchy()
        h.declare("proper_np", "noun_phrase")
        assert h.symbols == {OBJECT, "proper_np", "noun_phrase"}

    def test_declarations_roundtrip(self):
        decls = [SubtypeDecl("a", "b"), SubtypeDecl("c", "b")]
        h = TypeHierarchy(decls)
        assert list(h.declarations()) == decls

    def test_copy_is_independent(self):
        h = TypeHierarchy()
        h.declare("a", "b")
        clone = h.copy()
        clone.declare("c", "d")
        assert "c" not in h
        assert clone.is_subtype("a", "b")

    def test_contains(self):
        h = TypeHierarchy()
        h.declare("a", "b")
        assert "a" in h and OBJECT in h and "zzz" not in h

    def test_least_common_supertypes_top_only(self):
        h = TypeHierarchy()
        h.add_symbol("x")
        h.add_symbol("y")
        assert h.least_common_supertypes("x", "y") == {OBJECT}

    def test_least_common_supertypes_shared_parent(self):
        h = TypeHierarchy()
        h.declare("x", "p")
        h.declare("y", "p")
        assert h.least_common_supertypes("x", "y") == {"p"}

    def test_cache_invalidation_on_declare(self):
        h = TypeHierarchy()
        h.declare("a", "b")
        assert not h.is_subtype("a", "c")
        h.declare("b", "c")
        assert h.is_subtype("a", "c")
