"""Formula-AST unit tests (free variables, folds, validation)."""

import pytest

from repro.core.errors import SyntaxKindError
from repro.core.formulas import (
    And,
    Exists,
    ForAll,
    Implies,
    Not,
    Or,
    PredAtom,
    TermAtom,
    conjoin,
    disjoin,
    free_variables,
)
from repro.core.terms import Const, Var
from repro.lang.parser import parse_term


def t(name="X"):
    return TermAtom(Var(name))


class TestConstruction:
    def test_term_atom_requires_term(self):
        with pytest.raises(SyntaxKindError):
            TermAtom("john")

    def test_pred_atom_requires_terms(self):
        with pytest.raises(SyntaxKindError):
            PredAtom("p", ("a",))

    def test_pred_atom_empty_name(self):
        with pytest.raises(SyntaxKindError):
            PredAtom("", (Const("a"),))

    def test_pred_arity(self):
        assert PredAtom("p", (Const("a"), Const("b"))).arity == 2


class TestFreeVariables:
    def test_atom(self):
        atom = TermAtom(parse_term("path: P[src => X]"))
        assert free_variables(atom) == {"P", "X"}

    def test_pred_atom(self):
        assert free_variables(PredAtom("p", (Var("X"), Const("a")))) == {"X"}

    def test_connectives_union(self):
        formula = And(t("X"), Or(t("Y"), Not(t("Z"))))
        assert free_variables(formula) == {"X", "Y", "Z"}

    def test_implication(self):
        assert free_variables(Implies(t("X"), t("Y"))) == {"X", "Y"}

    def test_quantifier_binds(self):
        assert free_variables(ForAll("X", And(t("X"), t("Y")))) == {"Y"}
        assert free_variables(Exists("Y", t("Y"))) == set()

    def test_shadowing(self):
        formula = And(t("X"), ForAll("X", t("X")))
        assert free_variables(formula) == {"X"}


class TestFolds:
    def test_conjoin_single(self):
        assert conjoin([t("X")]) == t("X")

    def test_conjoin_right_fold(self):
        formula = conjoin([t("X"), t("Y"), t("Z")])
        assert formula == And(t("X"), And(t("Y"), t("Z")))

    def test_disjoin_right_fold(self):
        formula = disjoin([t("X"), t("Y")])
        assert formula == Or(t("X"), t("Y"))

    def test_empty_rejected(self):
        with pytest.raises(SyntaxKindError):
            conjoin([])
        with pytest.raises(SyntaxKindError):
            disjoin([])
