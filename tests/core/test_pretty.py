"""Pretty-printer tests: paper notation, parser round-trips."""

from repro.core.builder import V, c, fn, obj, pred, query, rule
from repro.core.formulas import And, Exists, ForAll, Implies, Not, Or, TermAtom
from repro.core.pretty import (
    pretty_atom,
    pretty_clause,
    pretty_formula,
    pretty_program,
    pretty_query,
    pretty_term,
)
from repro.core.terms import Const, Var
from repro.lang.parser import parse_clause, parse_program, parse_query, parse_term


class TestTermPrinting:
    def test_object_prefix_omitted(self):
        assert pretty_term(Const("john")) == "john"
        assert pretty_term(Var("X")) == "X"

    def test_type_prefix(self):
        assert pretty_term(Const("john", "person")) == "person: john"

    def test_labels(self):
        t = obj("p1", type="path", src="a", dest="b")
        assert pretty_term(t) == "path: p1[src => a, dest => b]"

    def test_collection(self):
        t = obj("john", type="person", children=["bob", "bill"])
        assert pretty_term(t) == "person: john[children => {bob, bill}]"

    def test_quoted_string(self):
        t = obj("john", name="John Smith")
        assert pretty_term(t) == 'john[name => "John Smith"]'

    def test_string_with_quote_escaped(self):
        rendered = pretty_term(Const('say "hi"'))
        assert rendered == '"say \\"hi\\""'
        assert parse_term(rendered) == Const('say "hi"')

    def test_negative_number(self):
        assert pretty_term(Const(-3)) == "-3"

    def test_arith_infix(self):
        assert pretty_term(fn("+", V("L0"), 1)) == "(L0 + 1)"

    def test_function_identity(self):
        assert pretty_term(fn("id", "a", "b", type="path")) == "path: id(a, b)"


class TestClausePrinting:
    def test_fact(self):
        assert pretty_clause(parse_clause("name: john.")) == "name: john."

    def test_rule(self):
        source = "proper_np: X[pers => 3] :- name: X."
        assert pretty_clause(parse_clause(source)) == source

    def test_query(self):
        assert pretty_query(parse_query(":- noun_phrase: X[num => plural].")) == (
            ":- noun_phrase: X[num => plural]."
        )

    def test_builtin_in_body(self):
        clause = parse_clause("p(L) :- q(L0), L is L0 + 1.")
        assert pretty_clause(clause) == "p(L) :- q(L0), L is (L0 + 1)."

    def test_predicate_atom(self):
        assert pretty_atom(pred("edge", "a", "b")) == "edge(a, b)"

    def test_program_roundtrip(self, noun_phrase_program):
        text = pretty_program(noun_phrase_program)
        reparsed = parse_program(text).program
        assert reparsed == noun_phrase_program


class TestFormulaPrinting:
    def test_connectives(self):
        a = TermAtom(Const("a"))
        b = TermAtom(Const("b"))
        assert pretty_formula(And(a, b)) == "a & b"
        assert pretty_formula(Or(a, b)) == "a | b"
        assert pretty_formula(Not(a)) == "~a"
        assert pretty_formula(Implies(a, b)) == "a -> b"

    def test_precedence_parentheses(self):
        a = TermAtom(Const("a"))
        b = TermAtom(Const("b"))
        c_atom = TermAtom(Const("c"))
        assert pretty_formula(And(Or(a, b), c_atom)) == "(a | b) & c"
        assert pretty_formula(Or(And(a, b), c_atom)) == "a & b | c"

    def test_quantifiers(self):
        body = TermAtom(Var("X", "person"))
        assert pretty_formula(ForAll("X", body)) == "forall X. person: X"
        assert pretty_formula(Exists("X", body)) == "exists X. person: X"


class TestRoundTrips:
    SOURCES = [
        "X",
        "path: g(X, Y)[length => 10]",
        "person: john[children => {person: bob, person: bill}]",
        "instructor: david[course => courseid: cse538, course => courseid: cse505]",
        "determiner: the[num => {singular, plural}, def => definite]",
        'john[name => "John Smith", age => 28]',
        "path: id(X, Y)[src => X, dest => Y, length => L]",
    ]

    def test_parse_pretty_parse(self):
        for source in self.SOURCES:
            term = parse_term(source)
            assert parse_term(pretty_term(term)) == term


class TestNegationPrinting:
    def test_negated_atom_roundtrip(self):
        source = "lonely(X) :- node: X, \\+ node: X[linkto => Y]."
        clause = parse_clause(source)
        assert parse_clause(pretty_clause(clause)) == clause

    def test_negated_rendering(self):
        clause = parse_clause("q(X) :- p(X), \\+ r(X).")
        assert pretty_clause(clause) == "q(X) :- p(X), \\+ r(X)."
