"""Unit tests for the clausal subset (Section 4)."""

import pytest

from repro.core.builder import V, builtin, c, fact, fn, obj, pred, program, rule, subtype
from repro.core.clauses import (
    BuiltinAtom,
    DefiniteClause,
    Program,
    Query,
    atom_is_ground,
    atom_variables,
    substitute_atom,
)
from repro.core.errors import SyntaxKindError
from repro.core.formulas import PredAtom, TermAtom
from repro.core.terms import Const, OBJECT, Var
from repro.lang.parser import parse_clause, parse_program


class TestBuiltinAtom:
    def test_is(self):
        atom = builtin("is", V("L"), fn("+", V("L0"), 1))
        assert atom.op == "is"

    def test_unknown_operator(self):
        with pytest.raises(SyntaxKindError):
            BuiltinAtom("**", (Const(1), Const(2)))

    def test_wrong_arity(self):
        with pytest.raises(SyntaxKindError):
            BuiltinAtom("is", (Const(1),))


class TestDefiniteClause:
    def test_fact(self):
        clause = fact(obj("john", type="person"))
        assert clause.is_fact

    def test_rule_not_fact(self):
        clause = rule(pred("p", V("X")), pred("q", V("X")))
        assert not clause.is_fact

    def test_builtin_cannot_head(self):
        with pytest.raises(SyntaxKindError):
            DefiniteClause(builtin("is", V("X"), Const(1)))

    def test_variables(self):
        clause = parse_clause("p(X, Y) :- q(X, Z).")
        assert clause.variables() == {"X", "Y", "Z"}

    def test_head_only_variables(self):
        """Existential object variables (Section 2.1) are exactly the
        head-only variables."""
        clause = parse_clause(
            "path: C[src => X, dest => Y, length => 1] :- node: X[linkto => Y]."
        )
        assert clause.head_only_variables() == {"C"}

    def test_head_only_variables_empty_for_safe_clause(self):
        clause = parse_clause("p(X) :- q(X).")
        assert clause.head_only_variables() == set()


class TestQuery:
    def test_requires_body(self):
        with pytest.raises(SyntaxKindError):
            Query(())

    def test_variables(self):
        q = Query((TermAtom(Var("X", "noun_phrase")),))
        assert q.variables() == {"X"}


class TestProgram:
    def test_type_symbols(self, noun_phrase_program):
        symbols = noun_phrase_program.type_symbols()
        assert {
            "name",
            "determiner",
            "noun",
            "proper_np",
            "common_np",
            "noun_phrase",
            OBJECT,
        } <= symbols

    def test_labels(self, noun_phrase_program):
        assert noun_phrase_program.labels() == {"num", "def", "pers"}

    def test_predicates_empty_in_object_program(self, noun_phrase_program):
        assert noun_phrase_program.predicates() == set()

    def test_hierarchy_from_declarations(self, noun_phrase_program):
        h = noun_phrase_program.hierarchy()
        assert h.is_subtype("proper_np", "noun_phrase")
        assert h.is_subtype("common_np", "noun_phrase")
        assert not h.is_subtype("proper_np", "common_np")

    def test_facts_and_rules_partition(self, noun_phrase_program):
        facts = list(noun_phrase_program.facts())
        rules = list(noun_phrase_program.rules())
        assert len(facts) + len(rules) == len(noun_phrase_program)
        assert len(rules) == 2

    def test_extended(self):
        p = program(fact(obj("a")))
        q = p.extended(fact(obj("b")))
        assert len(q) == 2 and len(p) == 1

    def test_builder_subtype(self):
        p = program(fact(obj("a", type="t1")), subtypes=[subtype("t1", "t2")])
        assert p.hierarchy().is_subtype("t1", "t2")


class TestAtomHelpers:
    def test_atom_variables_builtin(self):
        atom = builtin("is", V("L"), fn("+", V("L0"), 1))
        assert atom_variables(atom) == {"L", "L0"}

    def test_atom_is_ground(self):
        assert atom_is_ground(TermAtom(Const("a")))
        assert not atom_is_ground(PredAtom("p", (Var("X"),)))

    def test_substitute_atom_predicate(self):
        atom = PredAtom("p", (Var("X"),))
        assert substitute_atom(atom, {"X": Const("a")}) == PredAtom("p", (Const("a"),))

    def test_substitute_atom_builtin(self):
        atom = builtin("<", V("X"), c(3))
        out = substitute_atom(atom, {"X": Const(1)})
        assert out == BuiltinAtom("<", (Const(1), Const(3)))
