"""The decomposition/recombination laws of Section 3.2.

"A term of the form t[l1 => t1, ..., ln => tn] is semantically
equivalent to t[l1 => t1] & ... & t[ln => tn]; a term of the form
t[l => {t1, ..., tn}] is semantically equivalent to t[l => t1] & ... &
t[l => tn]."
"""

from repro.core.decompose import (
    atomic_descriptions,
    decompose_atom,
    decompose_term,
    normalize_atom,
    normalize_term,
    recombine,
    spec_pairs,
)
from repro.core.formulas import PredAtom, TermAtom
from repro.core.terms import Collection, Const, Func, LabelSpec, LTerm, Var
from repro.lang.parser import parse_atom, parse_term


class TestDecompose:
    def test_unlabelled_term_is_atomic(self):
        assert decompose_term(Const("john", "person")) == [Const("john", "person")]

    def test_multi_label_splits(self):
        t = parse_term('john[name => "John Smith", age => 28]')
        pieces = decompose_term(t)
        assert pieces == [
            Const("john"),
            parse_term('john[name => "John Smith"]'),
            parse_term("john[age => 28]"),
        ]

    def test_collection_splits(self):
        t = parse_term("person: john[children => {bob, bill, joe}]")
        pieces = decompose_term(t)
        assert parse_term("person: john[children => bob]") in pieces
        assert parse_term("person: john[children => bill]") in pieces
        assert parse_term("person: john[children => joe]") in pieces
        assert len(pieces) == 4  # bare identity + three atomic labels

    def test_decompose_atom_predicate_unchanged(self):
        atom = PredAtom("p", (Const("a"),))
        assert decompose_atom(atom) == [atom]

    def test_spec_pairs_flattens_collections(self):
        t = parse_term("p[l => {a, b}, m => c]")
        assert list(spec_pairs(t)) == [
            ("l", Const("a")),
            ("l", Const("b")),
            ("m", Const("c")),
        ]


class TestRecombine:
    def test_inverse_of_decompose_up_to_normalization(self):
        t = parse_term("person: john[children => {bob, bill}, age => 28]")
        pieces = decompose_term(t)
        merged = recombine(pieces)
        assert len(merged) == 1
        assert normalize_term(merged[0]) == normalize_term(t)

    def test_combines_separate_pieces(self):
        """Information about an object may be accumulated piecewise."""
        one = parse_term('john[name => "John Smith"]')
        two = parse_term("john[age => 28]")
        merged = recombine([one, two])
        assert len(merged) == 1
        assert normalize_term(merged[0]) == normalize_term(
            parse_term('john[name => "John Smith", age => 28]')
        )

    def test_distinct_identities_stay_separate(self):
        merged = recombine([parse_term("a[l => x]"), parse_term("b[l => y]")])
        assert len(merged) == 2

    def test_multivalued_labels_become_collections(self):
        merged = recombine(
            [parse_term("p[src => a]"), parse_term("p[src => c]")]
        )
        assert merged == [parse_term("p[src => {a, c}]")]

    def test_duplicate_values_collapse(self):
        merged = recombine([parse_term("p[src => a]"), parse_term("p[src => a]")])
        assert merged == [parse_term("p[src => a]")]


class TestNormalize:
    def test_spec_order_irrelevant(self):
        one = parse_term("t[a => x, b => y]")
        two = parse_term("t[b => y, a => x]")
        assert normalize_term(one) == normalize_term(two)

    def test_collection_order_irrelevant(self):
        one = parse_term("t[l => {x, y}]")
        two = parse_term("t[l => {y, x}]")
        assert normalize_term(one) == normalize_term(two)

    def test_collection_duplicates_collapse(self):
        one = parse_term("t[l => {x, x, y}]")
        two = parse_term("t[l => {x, y}]")
        assert normalize_term(one) == normalize_term(two)

    def test_singleton_collection_equals_plain_value(self):
        one = parse_term("t[l => {x}]")
        two = parse_term("t[l => x]")
        assert normalize_term(one) == normalize_term(two)

    def test_repeated_label_merges(self):
        one = parse_term("t[l => x, l => y]")
        two = parse_term("t[l => {x, y}]")
        assert normalize_term(one) == normalize_term(two)

    def test_normalizes_nested_values(self):
        one = parse_term("t[l => u[b => q, a => p]]")
        two = parse_term("t[l => u[a => p, b => q]]")
        assert normalize_term(one) == normalize_term(two)

    def test_distinct_terms_stay_distinct(self):
        assert normalize_term(parse_term("t[l => x]")) != normalize_term(
            parse_term("t[l => y]")
        )

    def test_normalize_atom_predicate(self):
        one = normalize_atom(parse_atom("q(t[b => y, a => x])"))
        two = normalize_atom(parse_atom("q(t[a => x, b => y])"))
        assert one == two

    def test_normalize_plain_terms_identity(self):
        for source in ("X", "john", "f(a, b)"):
            t = parse_term(source)
            assert normalize_term(t) == t


class TestAtomicDescriptions:
    def test_matches_transformation_shape(self):
        """Flattening mirrors the alpha* conjunct list of Example 2."""
        atom = parse_atom("determiner: the[num => {singular, plural}, def => definite]")
        flat = atomic_descriptions(atom)
        rendered = [
            a.term if isinstance(a, TermAtom) else a for a in flat
        ]
        assert rendered[0] == Const("the", "determiner")
        assert parse_term("determiner: the[num => singular]") in rendered
        assert parse_term("determiner: the[num => plural]") in rendered
        assert parse_term("determiner: the[def => definite]") in rendered
        # one host assertion + 3 value assertions + 3 label assertions
        assert len(flat) == 7

    def test_nested_function_identity(self):
        atom = parse_atom("object: id(a, b)")
        flat = atomic_descriptions(atom)
        terms = [a.term for a in flat]
        assert Func("id", (Const("a"), Const("b"))) in terms
        assert Const("a") in terms and Const("b") in terms

    def test_predicate_atom_strips_labels_from_args(self):
        atom = parse_atom("edge(a[weight => 3], b)")
        flat = atomic_descriptions(atom)
        pred = [a for a in flat if isinstance(a, PredAtom)]
        assert pred == [PredAtom("edge", (Const("a"), Const("b")))]
        label_atoms = [
            a for a in flat if isinstance(a, TermAtom) and isinstance(a.term, LTerm)
        ]
        assert len(label_atoms) == 1
