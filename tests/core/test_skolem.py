"""Skolemization of existential object variables (Section 2.1)."""

import pytest

from repro.core.errors import TransformError
from repro.core.skolem import SkolemPolicy, fresh_skolem_namer, skolemize_clause, skolemize_program
from repro.core.terms import Const, Func, Var
from repro.core.formulas import TermAtom
from repro.lang.parser import parse_clause, parse_program


RULE1 = "path: C[src => X, dest => Y, length => 1] :- node: X[linkto => Y]."
RULE2 = (
    "path: C[src => X, dest => Y, length => L] :- node: X[linkto => Z], "
    "path: C0[src => Z, dest => Y, length => L0], L is L0 + 1."
)


class TestSkolemizeClause:
    def test_reading_one_matches_paper(self):
        """Reading 1: path objects determined by nodes at both ends —
        C becomes id(X, Y), exactly the paper's rewritten rule."""
        clause = parse_clause(RULE1)
        result = skolemize_clause(clause, SkolemPolicy("C", ("X", "Y")))
        expected = parse_clause(
            "path: id(X, Y)[src => X, dest => Y, length => 1] :- node: X[linkto => Y]."
        )
        assert result == expected

    def test_reading_two_includes_length(self):
        clause = parse_clause(RULE2)
        result = skolemize_clause(clause, SkolemPolicy("C", ("X", "Y", "L")))
        assert isinstance(result.head, TermAtom)
        head_base = result.head.term.base
        assert head_base == Func("id", (Var("X"), Var("Y"), Var("L")), "path")

    def test_reading_three_sequence(self):
        """Reading 3: VX VC0 EC — identity depends on the extending node
        and the extended path (which encodes the node sequence)."""
        clause = parse_clause(RULE2)
        result = skolemize_clause(clause, SkolemPolicy("C", ("X", "C0")))
        head_base = result.head.term.base
        assert head_base == Func("id", (Var("X"), Var("C0")), "path")

    def test_non_existential_variable_rejected(self):
        clause = parse_clause(RULE1)
        with pytest.raises(TransformError):
            skolemize_clause(clause, SkolemPolicy("X", ("Y",)))

    def test_missing_dependency_rejected(self):
        clause = parse_clause(RULE1)
        with pytest.raises(TransformError):
            skolemize_clause(clause, SkolemPolicy("C", ("NOPE",)))

    def test_self_dependency_rejected(self):
        clause = parse_clause(RULE1)
        with pytest.raises(TransformError):
            skolemize_clause(clause, SkolemPolicy("C", ("C",)))

    def test_no_dependencies_yields_constant_identity(self):
        clause = parse_clause("thing: C[kind => x] :- object: x.")
        result = skolemize_clause(clause, SkolemPolicy("C", (), functor="the_thing"))
        assert result.head.term.base == Const("the_thing", "thing")

    def test_custom_functor(self):
        clause = parse_clause(RULE1)
        result = skolemize_clause(clause, SkolemPolicy("C", ("X", "Y"), functor="pth"))
        assert result.head.term.base.functor == "pth"


class TestSkolemizeProgram:
    def test_both_path_rules(self):
        program = parse_program(RULE1 + "\n" + RULE2).program
        result = skolemize_program(
            program,
            [(0, SkolemPolicy("C", ("X", "Y"))), (1, SkolemPolicy("C", ("X", "Y")))],
        )
        for clause in result.clauses:
            assert clause.head_only_variables() == set()

    def test_bad_index(self):
        program = parse_program(RULE1).program
        with pytest.raises(TransformError):
            skolemize_program(program, [(5, SkolemPolicy("C", ("X",)))])


def test_fresh_skolem_namer():
    namer = fresh_skolem_namer("id")
    assert namer() == "id1"
    assert namer() == "id2"
