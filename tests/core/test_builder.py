"""Unit tests for the Python builder DSL."""

import pytest

from repro.core.builder import (
    V,
    arith,
    atom,
    builtin,
    c,
    fact,
    fn,
    labeled,
    lift,
    obj,
    pred,
    program,
    query,
    rule,
)
from repro.core.errors import SyntaxKindError
from repro.core.formulas import PredAtom, TermAtom
from repro.core.terms import Collection, Const, Func, LTerm, Var
from repro.lang.parser import parse_clause, parse_term


class TestLift:
    def test_string_to_constant(self):
        assert lift("john") == Const("john")

    def test_int_to_constant(self):
        assert lift(28) == Const(28)

    def test_term_passthrough(self):
        assert lift(Var("X")) is not None
        assert lift(Var("X")) == Var("X")

    def test_set_to_sorted_collection(self):
        assert lift({"bob", "bill"}) == Collection((Const("bill"), Const("bob")))

    def test_list_preserves_order(self):
        assert lift(["z", "a"]) == Collection((Const("z"), Const("a")))

    def test_nested_collection_rejected(self):
        with pytest.raises(SyntaxKindError):
            lift([["a"]])

    def test_unliftable(self):
        with pytest.raises(SyntaxKindError):
            lift(3.5)


class TestObj:
    def test_matches_parsed_term(self):
        built = obj("john", type="person", age=28, children={"bob", "bill"})
        parsed = parse_term("person: john[age => 28, children => {bill, bob}]")
        assert built == parsed

    def test_plain_identity(self):
        assert obj("john") == Const("john")

    def test_typed_variable_identity(self):
        assert obj(V("X"), type="noun") == Var("X", "noun")

    def test_function_identity(self):
        built = obj(fn("id", V("X"), V("Y")), type="path", src=V("X"))
        assert isinstance(built, LTerm)
        assert built.base == Func("id", (Var("X"), Var("Y")), "path")

    def test_labelled_identity_rejected(self):
        with pytest.raises(SyntaxKindError):
            obj(obj("p", src="a"), type="path")


class TestClauses:
    def test_rule_matches_parsed(self):
        built = rule(
            obj(fn("id", V("X"), V("Y")), type="path", src=V("X"), dest=V("Y"), length=1),
            obj(V("X"), type="node", linkto=V("Y")),
        )
        parsed = parse_clause(
            "path: id(X, Y)[src => X, dest => Y, length => 1] :- node: X[linkto => Y]."
        )
        assert built == parsed

    def test_rule_with_builtin(self):
        built = rule(
            pred("bigger", V("X")),
            pred("size", V("X"), V("S")),
            builtin(">", V("S"), 10),
        )
        parsed = parse_clause("bigger(X) :- size(X, S), S > 10.")
        assert built == parsed

    def test_fact_rejects_builtin(self):
        with pytest.raises(SyntaxKindError):
            fact(builtin("is", V("X"), c(1)))

    def test_query(self):
        q = query(obj(V("X"), type="noun_phrase", num="plural"))
        assert len(q.body) == 1

    def test_atom_coercion(self):
        assert isinstance(atom(obj("a")), TermAtom)
        assert isinstance(atom(pred("p", "a")), PredAtom)
        with pytest.raises(SyntaxKindError):
            atom(42)

    def test_labeled_for_awkward_names(self):
        t = labeled(c("p", type="path"), ("src", "a"), ("dest", "b"))
        assert t == parse_term("path: p[src => a, dest => b]")

    def test_labeled_rejects_labelled_base(self):
        with pytest.raises(SyntaxKindError):
            labeled(labeled(c("p"), ("a", "x")), ("b", "y"))

    def test_arith(self):
        assert arith("+", V("L0"), 1) == Func("+", (Var("L0"), Const(1)))

    def test_program_builder(self):
        p = program(fact(obj("a")), rule(pred("q", V("X")), pred("p", V("X"))))
        assert len(p) == 2
