"""The incremental-maintenance correctness harness: after any random
sequence of fact insertions and retractions, the maintained model must
equal the from-scratch semi-naive fixpoint over the surviving
assertions.

CI runs this with ``REPRO_PROPERTY_EXAMPLES=200`` (the acceptance
criterion's >= 200 random update sequences); locally it defaults to a
quicker pass.
"""

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.seminaive import seminaive_fixpoint
from repro.fol.atoms import FAtom, HornClause
from repro.fol.terms import FConst, FVar
from repro.incremental import IncrementalEngine
from repro.interface.kb import KnowledgeBase

EXAMPLES = int(os.environ.get("REPRO_PROPERTY_EXAMPLES", "40"))

X, Y, Z = FVar("X"), FVar("Y"), FVar("Z")


def atom(pred, *args):
    return FAtom(pred, tuple(args))


def edge(source, target):
    return atom("edge", FConst(source), FConst(target))


RULES = [
    HornClause(atom("tc", X, Y), (atom("edge", X, Y),)),
    HornClause(atom("tc", X, Z), (atom("edge", X, Y), atom("tc", Y, Z))),
    HornClause(atom("reach", Y), (atom("tc", X, Y),)),
]

NODES = list(range(5))

edges = st.tuples(st.sampled_from(NODES), st.sampled_from(NODES))
operations = st.lists(
    st.tuples(st.sampled_from(["insert", "retract"]), edges),
    min_size=1,
    max_size=12,
)


def recompute(engine):
    clauses = [HornClause(fact) for fact in engine.edb] + RULES
    return seminaive_fixpoint(clauses).snapshot()


@given(st.lists(edges, max_size=6, unique=True), operations)
@settings(max_examples=EXAMPLES, deadline=None)
def test_maintained_equals_recomputed(initial, sequence):
    clauses = [HornClause(edge(s, t)) for s, t in set(initial)] + RULES
    engine = IncrementalEngine(clauses)
    engine.materialize()
    assert engine.snapshot() == recompute(engine)
    for action, (source, target) in sequence:
        if action == "insert":
            engine.apply(inserts=[edge(source, target)])
        else:
            engine.apply(retracts=[edge(source, target)])
        assert engine.snapshot() == recompute(engine)


@given(operations)
@settings(max_examples=EXAMPLES, deadline=None)
def test_batched_updates_equal_recomputed(sequence):
    """One apply() carrying the whole batch, not one per operation."""
    engine = IncrementalEngine([HornClause(edge(0, 1))] + RULES)
    engine.materialize()
    inserts = [edge(s, t) for action, (s, t) in sequence if action == "insert"]
    retracts = [edge(s, t) for action, (s, t) in sequence if action == "retract"]
    engine.apply(inserts=inserts, retracts=retracts)
    assert engine.snapshot() == recompute(engine)


# No length counter here: random updates create cycles, and a
# length-incrementing rule would diverge on them.  Reachability alone
# stays finite on any graph.
KB_SOURCE = """
node: a[linkto => b].
node: b[linkto => c].
path: C[src => X, dest => Y] :- node: X[linkto => Y].
path: C[src => X, dest => Y] :-
    node: X[linkto => Z],
    path: C0[src => Z, dest => Y].
"""

KB_NODES = ["a", "b", "c", "d"]
kb_edges = st.lists(
    st.tuples(st.sampled_from(KB_NODES), st.sampled_from(KB_NODES)),
    min_size=1,
    max_size=6,
)


@given(kb_edges, kb_edges)
@settings(max_examples=max(10, EXAMPLES // 4), deadline=None)
def test_kb_transactions_agree_with_fresh_evaluation(to_insert, to_retract):
    """Through the transactional API (C-logic surface syntax), committed
    updates leave every engine agreeing with a KB rebuilt from the
    resulting program."""
    kb = KnowledgeBase.from_source(KB_SOURCE)
    kb.declare_identity("C", depends_on=("X", "Y"))
    with kb.transaction() as txn:
        for source, target in to_insert:
            txn.insert(f"node: {source}[linkto => {target}].")
        for source, target in to_retract:
            txn.retract(f"node: {source}[linkto => {target}].")
    query = "path: P[src => a, dest => Y]"
    maintained = kb.ask(query, engine="seminaive")
    fresh = KnowledgeBase(kb.program).ask(query, engine="seminaive")
    assert maintained == fresh
