"""Order-theoretic properties: the description subsumption ordering and
the type hierarchy are genuine partial orders."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.decompose import normalize_term
from repro.core.types import TypeHierarchy, TypeOrderError
from repro.db.subsume import description_leq

# ---------------------------------------------------------------------------
# Ground description strategy (small vocabulary so comparisons happen)
# ---------------------------------------------------------------------------

from repro.core.terms import Collection, Const, LabelSpec, LTerm

IDS = ["p", "q"]
LABELS = ["src", "dest"]
VALUES = ["a", "b", "c"]


@st.composite
def ground_descriptions(draw):
    identity = Const(draw(st.sampled_from(IDS)), draw(st.sampled_from(["object", "path"])))
    spec_count = draw(st.integers(min_value=0, max_value=2))
    specs = []
    for __ in range(spec_count):
        label = draw(st.sampled_from(LABELS))
        values = draw(st.lists(st.sampled_from(VALUES), min_size=1, max_size=2, unique=True))
        if len(values) == 1:
            specs.append(LabelSpec(label, Const(values[0])))
        else:
            specs.append(LabelSpec(label, Collection(tuple(Const(v) for v in values))))
    if not specs:
        return identity
    return LTerm(identity, tuple(specs))


@given(ground_descriptions())
@settings(max_examples=200, deadline=None)
def test_subsumption_reflexive(d):
    assert description_leq(d, d)


@given(ground_descriptions(), ground_descriptions(), ground_descriptions())
@settings(max_examples=300, deadline=None)
def test_subsumption_transitive(a, b, c):
    if description_leq(a, b) and description_leq(b, c):
        assert description_leq(a, c)


@given(ground_descriptions(), ground_descriptions())
@settings(max_examples=300, deadline=None)
def test_subsumption_antisymmetric_up_to_normalization(a, b):
    if description_leq(a, b) and description_leq(b, a):
        assert normalize_term(a) == normalize_term(b)


@given(ground_descriptions(), ground_descriptions())
@settings(max_examples=300, deadline=None)
def test_bare_identity_is_minimal(a, b):
    """Stripping all labels yields a description below the original."""
    from repro.core.terms import LTerm as _LTerm

    bare = a.base if isinstance(a, _LTerm) else a
    assert description_leq(bare, a)


# ---------------------------------------------------------------------------
# Type hierarchy partial-order properties
# ---------------------------------------------------------------------------

SYMBOLS = ["t1", "t2", "t3", "t4"]


@st.composite
def hierarchies(draw):
    hierarchy = TypeHierarchy()
    for symbol in SYMBOLS:
        hierarchy.add_symbol(symbol)
    edges = draw(
        st.lists(
            st.tuples(st.sampled_from(SYMBOLS), st.sampled_from(SYMBOLS)),
            max_size=5,
        )
    )
    for sub, sup in edges:
        try:
            hierarchy.declare(sub, sup)
        except TypeOrderError:
            pass  # reflexive or cycle-creating edges are skipped
    return hierarchy


@given(hierarchies(), st.sampled_from(SYMBOLS))
@settings(max_examples=200, deadline=None)
def test_hierarchy_reflexive_and_bounded(h, a):
    assert h.is_subtype(a, a)
    assert h.is_subtype(a, "object")


@given(hierarchies(), st.sampled_from(SYMBOLS), st.sampled_from(SYMBOLS), st.sampled_from(SYMBOLS))
@settings(max_examples=300, deadline=None)
def test_hierarchy_transitive(h, a, b, c):
    if h.is_subtype(a, b) and h.is_subtype(b, c):
        assert h.is_subtype(a, c)


@given(hierarchies(), st.sampled_from(SYMBOLS), st.sampled_from(SYMBOLS))
@settings(max_examples=300, deadline=None)
def test_hierarchy_antisymmetric(h, a, b):
    if a != b:
        assert not (h.is_subtype(a, b) and h.is_subtype(b, a))


@given(hierarchies(), st.sampled_from(SYMBOLS), st.sampled_from(SYMBOLS))
@settings(max_examples=200, deadline=None)
def test_downset_upset_duality(h, a, b):
    assert (a in h.subtypes(b)) == (b in h.supertypes(a))