"""Parser robustness properties: total over arbitrary input."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import LexError, ParseError
from repro.core.pretty import pretty_clause, pretty_program
from repro.lang.lexer import tokenize
from repro.lang.parser import parse_clause, parse_program, parse_term


@given(st.text(max_size=120))
@settings(max_examples=400, deadline=None)
def test_lexer_total(source):
    """The lexer either tokenizes or raises LexError — nothing else."""
    try:
        tokens = tokenize(source)
        assert tokens[-1].kind == "EOF"
    except LexError:
        pass


@given(st.text(max_size=120))
@settings(max_examples=400, deadline=None)
def test_parser_total(source):
    """parse_program either succeeds or raises a syntax error family
    exception — it never crashes with anything else."""
    try:
        parse_program(source)
    except (LexError, ParseError):
        pass


# Constrain to the token alphabet so a useful fraction actually parses.
_TOKENS = st.sampled_from(
    ["john", "X", "path", ":", "[", "]", "=>", "{", "}", ",", ".", ":-",
     "(", ")", "a", "b", "linkto", "42", "is", "+", "<", "\\+"]
)


@given(st.lists(_TOKENS, max_size=25))
@settings(max_examples=400, deadline=None)
def test_parser_total_on_token_soup(pieces):
    source = " ".join(pieces)
    try:
        unit = parse_program(source)
    except (LexError, ParseError):
        return
    # Whatever parsed must pretty-print and re-parse to itself.
    assert parse_program(pretty_program(unit.program)).program == unit.program


@given(st.text(max_size=60))
@settings(max_examples=300, deadline=None)
def test_parse_term_total(source):
    try:
        term = parse_term(source)
    except (LexError, ParseError):
        return
    from repro.core.pretty import pretty_term

    assert parse_term(pretty_term(term)) == term
