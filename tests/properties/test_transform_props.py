"""Property tests for the Theorem-1 transformation."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.formulas import TermAtom, free_variables
from repro.core.terms import variables_of
from repro.semantics.random_gen import Signature, random_assignment, random_structure
from repro.semantics.satisfaction import (
    denote_fterm,
    denote_term,
    satisfies_atom,
    satisfies_fol_conjunction,
)
from repro.transform.atoms import atom_to_fol
from repro.transform.terms import fol_to_identity, term_to_fol
from repro.fol.terms import fterm_variables

from tests.properties.strategies import atoms, fol_terms, terms

_SIGNATURE = Signature(
    constants=("a", "b", "c", "john", "bob", "p1", "node", "x", "John Smith", "a b", "Quoted"),
    functors=(("f", 1), ("g", 2), ("id", 2), ("np", 2), ("f", 2), ("g", 1), ("id", 1), ("np", 1), ("f", 3), ("g", 3), ("id", 3), ("np", 3)),
    predicates=(("p", 1), ("q", 1), ("edge", 1), ("p", 2), ("q", 2), ("edge", 2)),
    labels=("src", "dest", "children", "num", "linkto"),
    types=("object", "person", "path", "node", "student"),
    variables=("X", "Y", "Z", "C0", "Det"),
    subtype_pairs=(("student", "person"),),
)


def _interpret_all_ints(structure):
    """Extend the structure's constant interpretation to the integer
    constants the strategies can generate."""
    elements = sorted(structure.domain)
    for value in range(-20, 21):
        structure.constants.setdefault(value, elements[abs(value) % len(elements)])
    return structure


@given(atoms, st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=250, deadline=None)
def test_theorem1_on_random_structures(atom, seed):
    """M |= alpha[s] iff M* |= alpha*[s] (Theorem 1)."""
    rng = random.Random(seed)
    structure = _interpret_all_ints(random_structure(rng, _SIGNATURE))
    assignment = random_assignment(rng, structure, free_variables(atom))
    lhs = satisfies_atom(atom, structure, assignment)
    rhs = satisfies_fol_conjunction(atom_to_fol(atom), structure, assignment)
    assert lhs == rhs


@given(terms, st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=250, deadline=None)
def test_denotation_preserved(term, seed):
    """s_M(t) = s_M*(t')."""
    rng = random.Random(seed)
    structure = _interpret_all_ints(random_structure(rng, _SIGNATURE))
    assignment = random_assignment(rng, structure, variables_of(term))
    assert denote_term(term, structure, assignment) == denote_fterm(
        term_to_fol(term), structure, assignment
    )


@given(terms)
@settings(max_examples=250, deadline=None)
def test_translation_preserves_variables(term):
    """t' has exactly the variables of t's identity tree: labels add
    conjuncts, not term structure, but the *atom* translation mentions
    every variable of the description."""
    conjuncts = atom_to_fol(TermAtom(term))
    mentioned = set()
    for conjunct in conjuncts:
        for arg in conjunct.args:
            mentioned |= fterm_variables(arg)
    assert mentioned == variables_of(term)


@given(fol_terms)
@settings(max_examples=250, deadline=None)
def test_backmap_inverts_translation(fterm):
    """term_to_fol(fol_to_identity(t)) == t for every FOL term."""
    assert term_to_fol(fol_to_identity(fterm)) == fterm
