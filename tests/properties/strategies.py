"""Hypothesis strategies for C-logic and FOL syntax."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.clauses import BuiltinAtom
from repro.core.formulas import PredAtom, TermAtom
from repro.core.terms import Collection, Const, Func, LabelSpec, LTerm, OBJECT, Var
from repro.fol.terms import FApp, FConst, FVar

IDENTS = st.sampled_from(["a", "b", "c", "john", "bob", "p1", "node", "x"])
LABELS = st.sampled_from(["src", "dest", "children", "num", "linkto"])
TYPES = st.sampled_from([OBJECT, "person", "path", "node", "student"])
VARNAMES = st.sampled_from(["X", "Y", "Z", "C0", "Det"])
FUNCTORS = st.sampled_from(["f", "g", "id", "np"])
PREDICATES = st.sampled_from(["p", "q", "edge"])

constants = st.one_of(
    st.builds(Const, IDENTS, TYPES),
    st.builds(Const, st.integers(min_value=-20, max_value=20), TYPES),
    st.builds(Const, st.sampled_from(["John Smith", "a b", "Quoted"]), TYPES),
)

variables = st.builds(Var, VARNAMES, TYPES)


def _base_terms(term_strategy):
    return st.one_of(
        variables,
        constants,
        st.builds(
            lambda functor, args, type_name: Func(functor, tuple(args), type_name),
            FUNCTORS,
            st.lists(term_strategy, min_size=1, max_size=3),
            TYPES,
        ),
    )


def _label_values(term_strategy):
    return st.one_of(
        term_strategy,
        st.builds(
            lambda items: Collection(tuple(items)),
            st.lists(term_strategy, min_size=1, max_size=3),
        ),
    )


def _extend_terms(term_strategy):
    bases = _base_terms(term_strategy)
    labelled = st.builds(
        lambda base, specs: LTerm(base, tuple(specs)),
        bases,
        st.lists(
            st.builds(LabelSpec, LABELS, _label_values(term_strategy)),
            min_size=1,
            max_size=3,
        ),
    )
    return st.one_of(bases, labelled)


#: Arbitrary terms of the language of objects (depth-bounded by recursion).
terms = st.recursive(st.one_of(variables, constants), _extend_terms, max_leaves=12)

#: Arbitrary atomic formulas.
atoms = st.one_of(
    st.builds(TermAtom, terms),
    st.builds(
        lambda pred, args: PredAtom(pred, tuple(args)),
        PREDICATES,
        st.lists(terms, min_size=1, max_size=2),
    ),
)

# ---------------------------------------------------------------------------
# FOL strategies
# ---------------------------------------------------------------------------

fol_constants = st.one_of(
    st.builds(FConst, IDENTS),
    st.builds(FConst, st.integers(min_value=-9, max_value=9)),
)
fol_variables = st.builds(FVar, VARNAMES)

fol_terms = st.recursive(
    st.one_of(fol_variables, fol_constants),
    lambda inner: st.builds(
        lambda functor, args: FApp(functor, tuple(args)),
        FUNCTORS,
        st.lists(inner, min_size=1, max_size=3),
    ),
    max_leaves=10,
)
