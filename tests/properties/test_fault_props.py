"""The chaos property: any single injected fault during a transaction
commit leaves the knowledge base exactly where it was — the maintained
model always equals a from-scratch recompute, whether the fault fired,
fired late, or never fired at all.

CI runs this with ``REPRO_PROPERTY_EXAMPLES=200``; locally it defaults
to a quicker pass.
"""

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interface.kb import KnowledgeBase
from repro.runtime.faults import InjectedFault, inject_faults

EXAMPLES = int(os.environ.get("REPRO_PROPERTY_EXAMPLES", "40"))

RULES = """
tc(X, Y) :- edge(X, Y).
tc(X, Y) :- edge(X, Z), tc(Z, Y).
"""

NODES = ["a", "b", "c", "d"]

#: Every failure point a fact-batch commit can reach.
COMMIT_POINTS = [
    "kb.commit.begin",
    "kb.commit.apply",
    "kb.commit.swap",
    "kb.commit.version",
    "incremental.apply.begin",
    "incremental.apply.propagate",
    "incremental.apply.expand",
    "incremental.apply.finish",
    "factbase.remove_batch",
]

edges = st.tuples(st.sampled_from(NODES), st.sampled_from(NODES))
operations = st.lists(
    st.tuples(st.sampled_from(["insert", "retract"]), edges),
    min_size=1,
    max_size=6,
)


def build_kb(initial):
    facts = "".join(f"edge({s}, {t}).\n" for s, t in sorted(set(initial)))
    return KnowledgeBase.from_source(facts + RULES)


def model(kb):
    return sorted(repr(answer) for answer in kb.ask("tc(X, Y)", engine="seminaive"))


def recomputed_model(kb):
    return model(KnowledgeBase(kb.program))


@given(
    st.lists(edges, min_size=1, max_size=5, unique=True),
    operations,
    st.sampled_from(COMMIT_POINTS),
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=EXAMPLES, deadline=None)
def test_any_single_fault_leaves_maintained_equal_recomputed(
    initial, sequence, point, hit
):
    kb = build_kb(initial)
    before_version = kb.version
    before_model = model(kb)

    txn = kb.transaction()
    for action, (source, target) in sequence:
        if action == "insert":
            txn.insert(f"edge({source}, {target}).")
        else:
            txn.retract(f"edge({source}, {target}).")

    fired = False
    with inject_faults({point: hit}):
        try:
            txn.commit()
        except InjectedFault:
            fired = True

    if fired:
        # Atomicity: the crash rolled everything back.
        assert kb.version == before_version
        assert model(kb) == before_model
    else:
        # The scheduled hit was never reached: the commit must have
        # gone through untouched.
        assert kb.version == before_version + 1
    # The load-bearing invariant either way: what the KB serves equals
    # what a from-scratch evaluation over its program derives.
    assert model(kb) == recomputed_model(kb)
