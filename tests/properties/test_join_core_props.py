"""Property tests for the compiled join core: naive and semi-naive
fixpoints coincide on recursive programs, and the semi-naive delta
positions partition the new instantiations (each is produced by exactly
one position — the no-double-derivation invariant the ``old``-mode
restriction on earlier body atoms exists to guarantee)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.bottomup import naive_fixpoint
from repro.engine.factbase import FactBase
from repro.engine.join import compile_body
from repro.engine.seminaive import seminaive_fixpoint
from repro.fol.atoms import FAtom, HornClause
from repro.fol.terms import FConst, FVar

NODES = ["a", "b", "c", "d"]

edge_pairs = st.lists(
    st.tuples(st.sampled_from(NODES), st.sampled_from(NODES)),
    min_size=0,
    max_size=8,
    unique=True,
)

#: Random ground e/2 and t/2 atoms over the tiny vocabulary.
ground_atoms = st.lists(
    st.tuples(
        st.sampled_from(["e", "t"]),
        st.sampled_from(NODES),
        st.sampled_from(NODES),
    ),
    min_size=0,
    max_size=8,
    unique=True,
)


def _atom(pred: str, first: str, second: str) -> FAtom:
    return FAtom(pred, (FConst(first), FConst(second)))


def _tc_program(pairs):
    clauses = [HornClause(_atom("e", a, b)) for a, b in pairs]
    clauses.append(
        HornClause(
            FAtom("t", (FVar("X"), FVar("Y"))),
            (FAtom("e", (FVar("X"), FVar("Y"))),),
        )
    )
    clauses.append(
        HornClause(
            FAtom("t", (FVar("X"), FVar("Z"))),
            (FAtom("e", (FVar("X"), FVar("Y"))), FAtom("t", (FVar("Y"), FVar("Z")))),
        )
    )
    return clauses


@given(edge_pairs)
@settings(max_examples=80, deadline=None)
def test_naive_and_seminaive_fixpoints_coincide_on_recursive_tc(pairs):
    """The delta machinery must not change the minimal model — on
    random recursive TC instances the two fixpoints are identical."""
    clauses = _tc_program(pairs)
    assert naive_fixpoint(clauses).snapshot() == seminaive_fixpoint(clauses).snapshot()


BODIES = [
    (FAtom("e", (FVar("X"), FVar("Y"))), FAtom("t", (FVar("Y"), FVar("Z")))),
    (
        FAtom("e", (FVar("X"), FVar("Y"))),
        FAtom("e", (FVar("Y"), FVar("Z"))),
        FAtom("t", (FVar("X"), FVar("Z"))),
    ),
]


@given(old=ground_atoms, new=ground_atoms, body=st.sampled_from(BODIES))
@settings(max_examples=120, deadline=None)
def test_delta_positions_partition_the_new_instantiations(old, new, body):
    """Semi-naive soundness and non-duplication, stated directly on the
    compiled plan: with facts split into an old round and a delta round,

    * no instantiation is produced by two delta positions (the ``old``
      restriction on atoms left of the delta makes the union disjoint),
    * together the delta positions produce exactly the instantiations
      of the full join that are not already instantiations over the old
      facts alone.
    """
    facts = FactBase()
    for pred, first, second in old:
        facts.add(_atom(pred, first, second))
    delta_round = facts.next_round()
    for pred, first, second in new:
        facts.add(_atom(pred, first, second))  # duplicates keep old stamps

    plan = compile_body(tuple(body))
    per_position = {
        position: set(plan.run_delta(facts, position, delta_round))
        for position in range(len(body))
    }

    positions = sorted(per_position)
    for i in positions:
        for j in positions:
            if i < j:
                overlap = per_position[i] & per_position[j]
                assert not overlap, (
                    f"instantiations produced by both delta position {i} "
                    f"and {j}: {overlap!r}"
                )

    old_only = FactBase()
    for pred, first, second in old:
        old_only.add(_atom(pred, first, second))
    full = set(plan.run(facts))
    stale = set(plan.run(old_only))
    combined = set().union(*per_position.values()) if per_position else set()
    assert combined == full - stale
