"""Property tests for stratified negation: direct-engine and translated
stratified evaluation agree on random two-stratum programs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import fact, obj, program, rule, pred, V
from repro.core.clauses import NegatedAtom
from repro.core.formulas import PredAtom, TermAtom
from repro.core.terms import Const, Var
from repro.engine.bottomup import answer_query_bottomup
from repro.engine.direct import DirectEngine
from repro.engine.negation import stratified_fixpoint
from repro.lang.parser import parse_query
from repro.transform.clauses import program_to_fol, query_to_fol
from repro.transform.terms import fol_to_identity

NODES = ["a", "b", "c", "d"]


@st.composite
def link_programs(draw):
    """Random link graphs plus the sink pattern (negation stratum 1)."""
    edges = draw(
        st.lists(
            st.tuples(st.sampled_from(NODES), st.sampled_from(NODES)),
            max_size=6,
            unique=True,
        )
    )
    isolated = draw(st.lists(st.sampled_from(NODES), max_size=3, unique=True))
    facts = [fact(obj(src, type="node", linkto=dst)) for src, dst in edges]
    facts.extend(fact(obj(name, type="node")) for name in isolated)
    if not facts:
        facts.append(fact(obj("a", type="node")))
    haslink = rule(
        pred("haslink", V("X")),
        obj(V("X"), type="node", linkto=V("Y")),
    )
    sink = rule(
        pred("sink", V("X")),
        obj(V("X"), type="node"),
        NegatedAtom(PredAtom("haslink", (Var("X"),))),
    )
    return program(*facts, haslink, sink)


QUERIES = [":- sink(X).", ":- haslink(X).", ":- node: X."]


@given(link_programs(), st.sampled_from(QUERIES))
@settings(max_examples=100, deadline=None)
def test_direct_agrees_with_stratified_translation(prog, query_source):
    query = parse_query(query_source)
    direct = {
        frozenset(answer.items()) for answer in DirectEngine(prog).solve(query)
    }
    facts = stratified_fixpoint(program_to_fol(prog))
    translated = {
        frozenset((name, fol_to_identity(value)) for name, value in s.items())
        for s in answer_query_bottomup(query_to_fol(query), facts)
    }
    assert direct == translated


@given(link_programs())
@settings(max_examples=60, deadline=None)
def test_sinks_partition_nodes(prog):
    """Invariant of the pattern: sinks and link-havers partition nodes."""
    engine = DirectEngine(prog)
    nodes = {a["X"] for a in engine.solve(parse_query(":- node: X."))}
    sinks = {a["X"] for a in engine.solve(parse_query(":- sink(X)."))}
    linked = {a["X"] for a in engine.solve(parse_query(":- haslink(X)."))}
    assert sinks | linked == nodes
    assert not (sinks & linked)


@given(link_programs())
@settings(max_examples=40, deadline=None)
def test_saturation_modes_agree_under_negation(prog):
    naive = DirectEngine(prog, saturation_mode="naive")
    delta = DirectEngine(prog, saturation_mode="delta")
    assert naive.saturate().fact_count() == delta.saturate().fact_count()
