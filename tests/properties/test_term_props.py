"""Property tests over terms: round-trips, decomposition, normalization."""

from hypothesis import given, settings

from repro.core.decompose import decompose_term, normalize_term, recombine
from repro.core.pretty import pretty_term
from repro.core.terms import identity_of, is_ground, substitute_term, variables_of
from repro.lang.parser import parse_term

from tests.properties.strategies import terms


@given(terms)
@settings(max_examples=300, deadline=None)
def test_parser_pretty_roundtrip(term):
    """parse(pretty(t)) == t for every term."""
    assert parse_term(pretty_term(term)) == term


@given(terms)
@settings(max_examples=200, deadline=None)
def test_decompose_recombine_preserves_meaning(term):
    """recombine(decompose(t)) is semantically the same description."""
    merged = recombine(decompose_term(term))
    assert len(merged) == 1
    assert normalize_term(merged[0]) == normalize_term(term)


@given(terms)
@settings(max_examples=200, deadline=None)
def test_normalize_idempotent(term):
    normalized = normalize_term(term)
    assert normalize_term(normalized) == normalized


@given(terms)
@settings(max_examples=200, deadline=None)
def test_decomposed_pieces_share_identity(term):
    base = identity_of(term)
    for piece in decompose_term(term):
        assert identity_of(piece) == base


@given(terms)
@settings(max_examples=200, deadline=None)
def test_groundness_equals_no_variables(term):
    assert is_ground(term) == (not variables_of(term))


@given(terms)
@settings(max_examples=200, deadline=None)
def test_empty_substitution_is_identity(term):
    assert substitute_term(term, {}) == term


@given(terms)
@settings(max_examples=200, deadline=None)
def test_substitution_grounds_all_variables(term):
    from repro.core.terms import Const

    binding = {name: Const("k") for name in variables_of(term)}
    assert is_ground(substitute_term(term, binding))
