"""Property tests for unification: soundness, idempotence, symmetry."""

from hypothesis import given, settings

from repro.fol.subst import Substitution
from repro.fol.unify import match, unify

from tests.properties.strategies import fol_terms


@given(fol_terms, fol_terms)
@settings(max_examples=300, deadline=None)
def test_unifier_is_sound(left, right):
    """If a unifier exists, applying it makes the terms equal."""
    subst = unify(left, right)
    if subst is not None:
        assert subst.apply(left) == subst.apply(right)


@given(fol_terms, fol_terms)
@settings(max_examples=300, deadline=None)
def test_unifier_is_idempotent(left, right):
    subst = unify(left, right)
    if subst is not None:
        assert subst.is_idempotent()
        for term in (left, right):
            once = subst.apply(term)
            assert subst.apply(once) == once


@given(fol_terms, fol_terms)
@settings(max_examples=300, deadline=None)
def test_unifiability_is_symmetric(left, right):
    assert (unify(left, right) is None) == (unify(right, left) is None)


@given(fol_terms)
@settings(max_examples=200, deadline=None)
def test_self_unification_is_empty(term):
    assert unify(term, term) == Substitution.empty()


@given(fol_terms, fol_terms)
@settings(max_examples=300, deadline=None)
def test_match_implies_unify(pattern, instance):
    """One-way matching success implies two-way unifiability — for
    standardized-apart terms (matching treats instance variables as
    constants, so shared names must be renamed first, exactly as the
    engines do)."""
    from repro.fol.terms import rename_fterm

    instance = rename_fterm(instance, "_apart")
    subst = match(pattern, instance)
    if subst is not None:
        assert subst.apply(pattern) == instance
        assert unify(pattern, instance) is not None


@given(fol_terms, fol_terms)
@settings(max_examples=300, deadline=None)
def test_mgu_is_most_general_via_match(left, right):
    """The mgu factors through: both inputs match the unified term."""
    subst = unify(left, right)
    if subst is not None:
        unified = subst.apply(left)
        assert match(left, unified) is not None
        assert match(right, unified) is not None
