"""Property tests over the engines: fixpoint agreement on random
extensional databases plus random queries, and direct-vs-translated
answer agreement."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import fact, obj, program
from repro.core.terms import Const
from repro.engine.bottomup import answer_query_bottomup, naive_fixpoint
from repro.engine.direct import DirectEngine
from repro.engine.seminaive import seminaive_fixpoint
from repro.lang.parser import parse_query
from repro.transform.clauses import program_to_fol, query_to_fol
from repro.transform.terms import fol_to_identity

IDS = ["p1", "p2", "p3"]
VALUES = ["a", "b", "c", "d"]
LABELS = ["src", "dest"]
TYPES = ["path", "route"]


@st.composite
def extensional_programs(draw):
    """Random extensional databases over a tiny vocabulary."""
    count = draw(st.integers(min_value=1, max_value=6))
    facts = []
    for _ in range(count):
        identity = draw(st.sampled_from(IDS))
        type_name = draw(st.sampled_from(TYPES))
        labels = {}
        for label in LABELS:
            values = draw(st.lists(st.sampled_from(VALUES), max_size=2, unique=True))
            if values:
                labels[label] = set(values) if len(values) > 1 else values[0]
        facts.append(fact(obj(identity, type=type_name, **labels)))
    return program(*facts)


QUERIES = [
    ":- path: X[src => S].",
    ":- path: X[src => S, dest => D].",
    ":- path: p1[src => a].",
    ":- path: p1[src => S, dest => b].",
    ":- route: X[dest => D].",
    ":- object: X.",
]


@given(extensional_programs(), st.sampled_from(QUERIES))
@settings(max_examples=120, deadline=None)
def test_direct_agrees_with_translated_bottomup(prog, query_source):
    query = parse_query(query_source)
    direct = {
        frozenset(answer.items()) for answer in DirectEngine(prog).solve(query)
    }
    facts = naive_fixpoint(program_to_fol(prog))
    translated = {
        frozenset((n, fol_to_identity(v)) for n, v in s.items())
        for s in answer_query_bottomup(query_to_fol(query), facts)
    }
    assert direct == translated


@given(extensional_programs())
@settings(max_examples=100, deadline=None)
def test_seminaive_equals_naive(prog):
    fol = program_to_fol(prog)
    assert naive_fixpoint(fol).snapshot() == seminaive_fixpoint(fol).snapshot()


@given(extensional_programs(), st.sampled_from(QUERIES[:4]))
@settings(max_examples=80, deadline=None)
def test_subsumption_agrees_with_residual_on_extensional(prog, query_source):
    """Section 4: merged-description subsumption answers extensional
    queries exactly like residual solving."""
    query = parse_query(query_source)
    engine = DirectEngine(prog)
    residual = {frozenset(a.items()) for a in engine.solve(query)}
    subsumed = {frozenset(a.items()) for a in engine.solve_subsumption(query)}
    assert residual == subsumed


@given(extensional_programs())
@settings(max_examples=60, deadline=None)
def test_store_merge_roundtrip(prog):
    """Merged descriptions, re-asserted into a fresh store, reproduce
    the object population and every label fact.  (Type sets may shrink
    to the representative annotation: a term carries one type prefix,
    so an object asserted under two incomparable types keeps only one —
    the documented lossiness of merging.)"""
    from repro.db.store import ObjectStore

    engine = DirectEngine(prog)
    store = engine.saturate()
    fresh = ObjectStore(prog.hierarchy())
    for description in store.merged_descriptions():
        fresh.assert_description(description)
    assert fresh.all_ids() == store.all_ids()
    for label in store.labels():
        assert set(fresh.label_pairs(label)) == set(store.label_pairs(label))
    for identity in store.all_ids():
        assert fresh.asserted_types(identity) <= store.asserted_types(identity)
        informative = store.asserted_types(identity) - {"object"}
        if informative:
            assert fresh.asserted_types(identity) & informative
