"""Clause/program translation tests — the Section 4 noun-phrase listing."""

from repro.fol.atoms import FAtom, GeneralizedClause, HornClause
from repro.fol.pretty import pretty_generalized, pretty_horn
from repro.fol.terms import FVar
from repro.lang.parser import parse_clause, parse_program, parse_query
from repro.transform.clauses import (
    clause_to_generalized,
    object_axioms,
    program_to_fol,
    program_to_generalized,
    query_to_fol,
    subtype_axiom,
    type_axioms,
)
from repro.core.types import SubtypeDecl


class TestClauseTranslation:
    def test_fact_becomes_multi_head_fact(self):
        clause = parse_clause("determiner: a[num => singular, def => indef].")
        gen = clause_to_generalized(clause)
        assert gen.is_fact
        assert pretty_generalized(gen) == (
            "determiner(a), object(singular), num(a, singular), "
            "object(indef), def(a, indef)."
        )

    def test_proper_np_rule_matches_paper(self):
        clause = parse_clause(
            "proper_np: X[pers => 3, num => singular, def => definite] :- name: X."
        )
        gen = clause_to_generalized(clause)
        assert pretty_generalized(gen) == (
            "proper_np(X), object(3), pers(X, 3), object(singular), "
            "num(X, singular), object(definite), def(X, definite) :- name(X)."
        )

    def test_common_np_rule_matches_paper_raw_listing(self):
        """The paper's un-optimized listing keeps object(N) twice in the
        body (once from the determiner description, once from the noun);
        dedupe=False reproduces it."""
        clause = parse_clause(
            "common_np: np(Det, Noun)[pers => 3, num => N, def => D] :- "
            "determiner: Det[num => N, def => D], noun: Noun[num => N]."
        )
        gen = clause_to_generalized(clause, dedupe=False)
        body = [pretty := a for a in gen.body]
        from repro.fol.pretty import pretty_fatom

        rendered = [pretty_fatom(a) for a in gen.body]
        assert rendered == [
            "determiner(Det)",
            "object(N)",
            "num(Det, N)",
            "object(D)",
            "def(Det, D)",
            "noun(Noun)",
            "object(N)",
            "num(Noun, N)",
        ]

    def test_builtin_kept_in_body_order(self):
        # Predicate arguments contribute their own (object) typing
        # conjuncts; the builtin stays in place.
        clause = parse_clause(
            "p(L) :- q(L0), L is L0 + 1."
        )
        gen = clause_to_generalized(clause)
        assert pretty_generalized(gen) == (
            "object(L), p(L) :- object(L0), q(L0), L is (L0 + 1)."
        )

    def test_path_rule_translation(self):
        clause = parse_clause(
            "path: id(X, Y)[src => X, dest => Y, length => L] :- "
            "node: X[linkto => Z], path: C0[src => Z, dest => Y, length => L0], "
            "L is L0 + 1."
        )
        gen = clause_to_generalized(clause)
        # Note object(Z) appears once (deduped from the node description)
        # so src(C0, Z) follows path(C0) directly.
        assert pretty_generalized(gen) == (
            "path(id(X, Y)), object(X), object(Y), src(id(X, Y), X), "
            "dest(id(X, Y), Y), object(L), length(id(X, Y), L) :- "
            "node(X), object(Z), linkto(X, Z), path(C0), "
            "src(C0, Z), object(Y), dest(C0, Y), object(L0), length(C0, L0), "
            "L is (L0 + 1)."
        )


class TestAxioms:
    def test_subtype_axiom(self):
        axiom = subtype_axiom(SubtypeDecl("proper_np", "noun_phrase"))
        assert pretty_horn(axiom) == "noun_phrase(X) :- proper_np(X)."

    def test_object_axioms_sorted_and_skip_object(self):
        axioms = object_axioms({"noun", "object", "name"})
        assert [pretty_horn(a) for a in axioms] == [
            "object(X) :- name(X).",
            "object(X) :- noun(X).",
        ]

    def test_program_axioms(self, noun_phrase_program):
        axioms = type_axioms(noun_phrase_program)
        rendered = {pretty_horn(a) for a in axioms}
        assert "noun_phrase(X) :- proper_np(X)." in rendered
        assert "noun_phrase(X) :- common_np(X)." in rendered
        assert "object(X) :- noun_phrase(X)." in rendered
        # one axiom per subtype decl + one object axiom per non-object type
        assert len(axioms) == 2 + 6


class TestProgramTranslation:
    def test_generalized_program_shape(self, noun_phrase_program):
        gen = program_to_generalized(noun_phrase_program)
        assert len(gen.clauses) == len(noun_phrase_program.clauses)
        assert len(gen.axioms) == 8

    def test_split_counts(self, noun_phrase_program):
        gen = program_to_generalized(noun_phrase_program)
        fol = gen.split()
        expected = sum(len(c.heads) for c in gen.clauses) + len(gen.axioms)
        assert len(fol) == expected

    def test_split_clauses_share_variables_per_clause(self):
        """Multiple occurrences of the same head variable are independent
        across the split clauses (the paper's proper_np remark)."""
        clause = parse_clause("proper_np: X[pers => 3, num => singular] :- name: X.")
        horns = clause_to_generalized(clause).split()
        rendered = {pretty_horn(h) for h in horns}
        assert "proper_np(X) :- name(X)." in rendered
        assert "pers(X, 3) :- name(X)." in rendered
        assert "num(X, singular) :- name(X)." in rendered

    def test_program_to_fol(self, noun_phrase_program):
        fol = program_to_fol(noun_phrase_program)
        assert all(isinstance(c, HornClause) for c in fol.clauses)

    def test_atom_count(self, noun_phrase_program):
        gen = program_to_generalized(noun_phrase_program)
        assert gen.atom_count() > 40


class TestQueryTranslation:
    def test_noun_phrase_query(self):
        """The query of Example 3 translates as the paper shows."""
        goals = query_to_fol(parse_query(":- noun_phrase: X[num => plural]."))
        from repro.fol.pretty import pretty_fatom

        assert [pretty_fatom(g) for g in goals] == [
            "noun_phrase(X)",
            "object(plural)",
            "num(X, plural)",
        ]

    def test_path_query_enumerates_active_domain(self):
        """Section 4: the translated path query starts with object(S),
        object(D) goals — the source of SLD's inefficiency."""
        goals = query_to_fol(parse_query(":- path: X[src => S, dest => D]."))
        from repro.fol.pretty import pretty_fatom

        assert [pretty_fatom(g) for g in goals] == [
            "path(X)",
            "object(S)",
            "src(X, S)",
            "object(D)",
            "dest(X, D)",
        ]
