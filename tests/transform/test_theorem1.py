"""Theorem 1 (Section 3.3): M |= alpha[s]  iff  M* |= alpha*[s].

Checked by seeded random sampling over finite structures, atomic
formulas and assignments (the E10 experiment runs a larger sweep), plus
hand-picked cases covering each clause of the translation.
"""

import random

import pytest

from repro.core.formulas import free_variables
from repro.lang.parser import parse_atom
from repro.semantics.random_gen import (
    Signature,
    random_assignment,
    random_atom,
    random_structure,
)
from repro.semantics.satisfaction import (
    denote_fterm,
    denote_term,
    satisfies_atom,
    satisfies_fol_conjunction,
)
from repro.semantics.structure import Structure
from repro.transform.atoms import atom_to_fol
from repro.transform.terms import term_to_fol


@pytest.fixture(scope="module")
def signature():
    return Signature()


def check_equivalence(structure, atom, assignment) -> None:
    lhs = satisfies_atom(atom, structure, assignment)
    rhs = satisfies_fol_conjunction(atom_to_fol(atom), structure, assignment)
    assert lhs == rhs, f"Theorem 1 violated on {atom!r}"


class TestRandomized:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_batches(self, seed, signature):
        rng = random.Random(seed)
        for _ in range(40):
            structure = random_structure(rng, signature)
            atom = random_atom(rng, signature)
            assignment = random_assignment(rng, structure, free_variables(atom))
            check_equivalence(structure, atom, assignment)

    @pytest.mark.parametrize("seed", range(6))
    def test_term_denotation_preserved(self, seed, signature):
        """s_M(t) = s_M*(t') (the induction lemma inside the proof)."""
        from repro.semantics.random_gen import random_term

        rng = random.Random(1000 + seed)
        for _ in range(40):
            structure = random_structure(rng, signature)
            term = random_term(rng, signature)
            from repro.core.terms import variables_of

            assignment = random_assignment(rng, structure, variables_of(term))
            assert denote_term(term, structure, assignment) == denote_fterm(
                term_to_fol(term), structure, assignment
            )


class TestHandPicked:
    @pytest.fixture
    def structure(self):
        return Structure(
            domain=frozenset({0, 1, 2}),
            constants={"a": 0, "b": 1, "c": 2, "p": 0},
            functions={("f", 1): {(0,): 1, (1,): 2, (2,): 0}},
            predicates={("q", 2): {(0, 1)}},
            labels={"src": {(0, 1)}, "dest": {(0, 2)}},
            types={"node": {0, 1}, "path": {0}},
        )

    CASES = [
        "node: a",
        "node: c",
        "path: a[src => b]",
        "path: a[src => c]",
        "path: a[src => b, dest => c]",
        "path: a[src => {b, c}]",
        "node: f(a)",
        "path: f(c)",
        "q(a, b)",
        "q(node: a, node: b)",
        "q(b, a)",
        "p[src => node: b]",
        "p[src => path: b]",
    ]

    @pytest.mark.parametrize("source", CASES)
    def test_case(self, structure, source):
        atom = parse_atom(source)
        check_equivalence(structure, atom, {})

    def test_with_assignment(self, structure):
        atom = parse_atom("path: X[src => Y]")
        for x in structure.domain:
            for y in structure.domain:
                check_equivalence(structure, atom, {"X": x, "Y": y})
