"""Redundancy elimination tests — the paper's optimized common_np clause."""

from repro.core.types import TypeHierarchy
from repro.fol.atoms import FAtom, GeneralizedClause
from repro.fol.pretty import pretty_generalized
from repro.fol.terms import FConst, FVar
from repro.lang.parser import parse_clause, parse_program
from repro.transform.clauses import clause_to_generalized, program_to_generalized
from repro.transform.optimize import OptimizationReport, optimize_clause, optimize_program


def atom(pred, *args):
    return FAtom(pred, tuple(args))


def hierarchy(*pairs):
    h = TypeHierarchy()
    for sub, sup in pairs:
        h.declare(sub, sup)
    return h


class TestCase1:
    def test_body_duplicate_removed(self):
        h = hierarchy()
        clause = GeneralizedClause(
            (atom("p", FVar("X")),),
            (atom("object", FVar("N")), atom("q", FVar("X")), atom("object", FVar("N"))),
        )
        out = optimize_clause(clause, h)
        assert [a.pred for a in out.body] == ["object", "q"]

    def test_supertype_removed_when_subtype_present(self):
        h = hierarchy(("student", "person"))
        clause = GeneralizedClause(
            (atom("p", FVar("X")),),
            (atom("person", FVar("X")), atom("student", FVar("X"))),
        )
        out = optimize_clause(clause, h)
        assert [a.pred for a in out.body] == ["student"]

    def test_different_arguments_untouched(self):
        h = hierarchy()
        clause = GeneralizedClause(
            (atom("p", FVar("X")),),
            (atom("object", FVar("N")), atom("object", FVar("D"))),
        )
        out = optimize_clause(clause, h)
        assert len(out.body) == 2

    def test_head_zone_case1(self):
        h = hierarchy(("noun", "object"))
        clause = GeneralizedClause(
            (atom("noun", FConst("a")), atom("object", FConst("a"))),
            (atom("q", FVar("X")),),
        )
        out = optimize_clause(clause, h)
        assert [a.pred for a in out.heads] == ["noun"]

    def test_non_type_predicates_untouched(self):
        h = hierarchy()
        clause = GeneralizedClause(
            (atom("p", FVar("X")),),
            (atom("edge", FVar("X"), FVar("Y")), atom("edge", FVar("X"), FVar("Y"))),
        )
        out = optimize_clause(clause, h)
        assert len(out.body) == 2  # not unary type atoms; left alone


class TestCase2:
    def test_head_type_implied_by_body(self):
        h = hierarchy(("determiner", "object"))
        clause = GeneralizedClause(
            (atom("object", FVar("Det")), atom("p", FVar("Det"))),
            (atom("determiner", FVar("Det")),),
        )
        out = optimize_clause(clause, h)
        assert [a.pred for a in out.heads] == ["p"]

    def test_equal_types_count(self):
        h = hierarchy()
        h.add_symbol("noun")
        clause = GeneralizedClause(
            (atom("noun", FVar("X")),),
            (atom("noun", FVar("X")),),
        )
        # tau <= tau, so the head atom is implied and the clause drops.
        assert optimize_clause(clause, h) is None

    def test_unrelated_type_stays(self):
        h = hierarchy()
        h.add_symbol("noun")
        h.add_symbol("verb")
        clause = GeneralizedClause(
            (atom("noun", FVar("X")),),
            (atom("verb", FVar("X")),),
        )
        out = optimize_clause(clause, h)
        assert out is not None and [a.pred for a in out.heads] == ["noun"]


class TestPaperExample:
    COMMON_NP = (
        "common_np: np(Det, Noun)[pers => 3, num => N, def => D] :- "
        "determiner: Det[num => N, def => D], noun: Noun[num => N]."
    )

    def test_optimized_common_np_matches_paper(self, noun_phrase_program):
        """Applying cases 1 and 2 yields exactly the clause printed at
        the top of page 376."""
        gen = program_to_generalized(noun_phrase_program, dedupe=False)
        optimized, report = optimize_program(gen)
        rendered = [pretty_generalized(c) for c in optimized.clauses]
        expected = (
            "common_np(np(Det, Noun)), object(3), pers(np(Det, Noun), 3), "
            "num(np(Det, Noun), N), def(np(Det, Noun), D) :- "
            "determiner(Det), object(N), num(Det, N), object(D), def(Det, D), "
            "noun(Noun), num(Noun, N)."
        )
        assert expected in rendered
        assert report.atoms_deleted > 0

    def test_optimization_preserves_answers(self, noun_phrase_program):
        from repro.engine.bottomup import answer_query_bottomup, naive_fixpoint
        from repro.lang.parser import parse_query
        from repro.transform.clauses import query_to_fol

        raw = program_to_generalized(noun_phrase_program)
        optimized, _ = optimize_program(raw)
        goals = query_to_fol(parse_query(":- noun_phrase: X[num => plural]."))
        raw_answers = set(answer_query_bottomup(goals, naive_fixpoint(raw.split())))
        opt_answers = set(
            answer_query_bottomup(goals, naive_fixpoint(optimized.split()))
        )
        assert raw_answers == opt_answers

    def test_optimization_shrinks_program(self, noun_phrase_program):
        raw = program_to_generalized(noun_phrase_program, dedupe=False)
        optimized, report = optimize_program(raw)
        assert optimized.atom_count() < raw.atom_count()
        # common_np loses object(Det), object(Noun), object(N), object(D)
        # from its head (case 2) and one duplicate object(N) from its body
        # (case 1), matching the paper's rewritten clause.
        assert report.head_atoms_deleted >= 4
        assert report.body_atoms_deleted >= 1

    def test_axioms_preserved(self, noun_phrase_program):
        raw = program_to_generalized(noun_phrase_program)
        optimized, _ = optimize_program(raw)
        assert optimized.axioms == raw.axioms

    def test_duplicate_clause_elimination(self):
        program = parse_program("name: john.\nname: john.").program
        gen = program_to_generalized(program)
        optimized, report = optimize_program(gen)
        assert len(optimized.clauses) == 1
        assert report.duplicate_clauses_dropped == 1
