"""Term translation t -> t' unit tests (Section 3.3)."""

from repro.core.terms import Const, Func, Var
from repro.fol.terms import FApp, FConst, FVar
from repro.lang.parser import parse_term
from repro.transform.terms import fol_to_identity, term_to_fol


class TestTermToFol:
    def test_variable_drops_type(self):
        assert term_to_fol(Var("X", "path")) == FVar("X")

    def test_constant_drops_type(self):
        assert term_to_fol(Const("john", "person")) == FConst("john")

    def test_int_constant(self):
        assert term_to_fol(Const(28)) == FConst(28)

    def test_function(self):
        t = parse_term("path: id(X, name: Y)")
        assert term_to_fol(t) == FApp("id", (FVar("X"), FVar("Y")))

    def test_labels_dropped(self):
        """(t[l1 => e1, ..., ln => en])' = t'."""
        t = parse_term("path: p1[src => a, dest => b]")
        assert term_to_fol(t) == FConst("p1")

    def test_labels_dropped_in_function_args(self):
        t = parse_term("id(a[w => 1], b)")
        assert term_to_fol(t) == FApp("id", (FConst("a"), FConst("b")))


class TestFolToIdentity:
    def test_roundtrip_on_label_free_untyped_terms(self):
        for source in ("X", "john", "28", "id(X, Y)", "f(g(a), b)"):
            term = parse_term(source)
            assert fol_to_identity(term_to_fol(term)) == term

    def test_variable(self):
        assert fol_to_identity(FVar("X")) == Var("X")

    def test_application(self):
        assert fol_to_identity(FApp("f", (FConst("a"),))) == Func("f", (Const("a"),))
