"""Back-translation tests: FOL facts -> merged object descriptions."""

from repro.core.decompose import normalize_term
from repro.core.terms import Const, Func
from repro.fol.atoms import FAtom
from repro.fol.terms import FApp, FConst
from repro.lang.parser import parse_term
from repro.transform.backmap import facts_to_descriptions, retype_identity


def atom(pred, *args):
    return FAtom(pred, tuple(args))


class TestFactsToDescriptions:
    def test_single_object(self):
        atoms = [
            atom("path", (FConst("p1"))),
            atom("src", FConst("p1"), FConst("a")),
            atom("dest", FConst("p1"), FConst("b")),
        ]
        out = facts_to_descriptions(atoms, {"path"}, {"src", "dest"})
        types, description = out[Const("p1")]
        assert types == {"path"}
        assert normalize_term(description) == normalize_term(
            parse_term("path: p1[dest => b, src => a]")
        )

    def test_multivalued_label_becomes_collection(self):
        atoms = [
            atom("path", FConst("p")),
            atom("src", FConst("p"), FConst("a")),
            atom("src", FConst("p"), FConst("c")),
        ]
        out = facts_to_descriptions(atoms, {"path"}, {"src"})
        _, description = out[Const("p")]
        assert normalize_term(description) == normalize_term(
            parse_term("path: p[src => {a, c}]")
        )

    def test_object_without_labels(self):
        atoms = [atom("name", FConst("john"))]
        out = facts_to_descriptions(atoms, {"name"}, set())
        types, description = out[Const("john")]
        assert description == Const("john", "name")

    def test_function_identity(self):
        identity = FApp("id", (FConst("a"), FConst("b")))
        atoms = [atom("path", identity), atom("length", identity, FConst(1))]
        out = facts_to_descriptions(atoms, {"path"}, {"length"})
        key = Func("id", (Const("a"), Const("b")))
        types, description = out[key]
        assert "path" in types

    def test_plain_predicates_ignored(self):
        atoms = [atom("edge", FConst("a"), FConst("b"))]
        out = facts_to_descriptions(atoms, set(), set())
        assert out == {}

    def test_label_creates_host_entry(self):
        atoms = [atom("src", FConst("p"), FConst("a"))]
        out = facts_to_descriptions(atoms, set(), {"src"})
        assert Const("p") in out

    def test_multiple_types_choose_informative_annotation(self):
        atoms = [
            atom("object", FConst("x")),
            atom("noun", FConst("x")),
        ]
        out = facts_to_descriptions(atoms, {"object", "noun"}, set())
        types, description = out[Const("x")]
        assert types == {"object", "noun"}
        assert description == Const("x", "noun")


class TestRetype:
    def test_object_only(self):
        assert retype_identity(Const("x"), {"object"}) == Const("x")

    def test_prefers_lexicographically_first_informative(self):
        assert retype_identity(Const("x"), {"object", "b_type", "a_type"}) == Const(
            "x", "a_type"
        )
