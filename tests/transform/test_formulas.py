"""General-formula translation tests: Theorem 1's compositional closure."""

import random

import pytest

from repro.core.formulas import (
    And,
    Exists,
    ForAll,
    Formula,
    Implies,
    Not,
    Or,
    PredAtom,
    TermAtom,
    free_variables,
)
from repro.lang.parser import parse_atom
from repro.semantics.random_gen import (
    Signature,
    random_assignment,
    random_atom,
    random_structure,
)
from repro.semantics.satisfaction import satisfies
from repro.transform.formulas import (
    FolAnd,
    FolAtomF,
    FolExists,
    formula_to_fol,
    satisfies_fol_formula,
)


def random_formula(rng: random.Random, signature: Signature, depth: int) -> Formula:
    if depth == 0 or rng.random() < 0.35:
        return random_atom(rng, signature, depth=2)
    choice = rng.randrange(6)
    if choice == 0:
        return Not(random_formula(rng, signature, depth - 1))
    if choice == 1:
        return And(
            random_formula(rng, signature, depth - 1),
            random_formula(rng, signature, depth - 1),
        )
    if choice == 2:
        return Or(
            random_formula(rng, signature, depth - 1),
            random_formula(rng, signature, depth - 1),
        )
    if choice == 3:
        return Implies(
            random_formula(rng, signature, depth - 1),
            random_formula(rng, signature, depth - 1),
        )
    variable = rng.choice(signature.variables)
    body = random_formula(rng, signature, depth - 1)
    return ForAll(variable, body) if choice == 4 else Exists(variable, body)


class TestStructure:
    def test_atomic_becomes_conjunction(self):
        formula = formula_to_fol(parse_atom("path: p[src => a]"))
        assert isinstance(formula, FolAnd)

    def test_single_conjunct_stays_atomic(self):
        formula = formula_to_fol(parse_atom("name: john"))
        assert isinstance(formula, FolAtomF)

    def test_quantifier_preserved(self):
        from repro.core.terms import Var

        source = Exists("X", TermAtom(Var("X", "path")))
        translated = formula_to_fol(source)
        assert isinstance(translated, FolExists)
        assert translated.variable == "X"


class TestEquivalence:
    @pytest.mark.parametrize("seed", range(10))
    def test_general_formulas(self, seed):
        """M |= phi[s] iff M* |= phi*[s] for arbitrary formulas."""
        signature = Signature()
        rng = random.Random(500 + seed)
        for _ in range(25):
            structure = random_structure(rng, signature, domain_size=3)
            formula = random_formula(rng, signature, depth=3)
            assignment = random_assignment(rng, structure, free_variables(formula))
            lhs = satisfies(formula, structure, assignment)
            rhs = satisfies_fol_formula(formula_to_fol(formula), structure, assignment)
            assert lhs == rhs, formula

    def test_negated_description(self):
        """~(t[l => v]) negates the whole conjunction, not one conjunct."""
        signature = Signature()
        rng = random.Random(1)
        structure = random_structure(rng, signature, domain_size=3)
        inner = parse_atom("path: a[src => b]")
        formula = Not(inner)
        lhs = satisfies(formula, structure, {})
        rhs = satisfies_fol_formula(formula_to_fol(formula), structure, {})
        assert lhs == rhs
