"""Atomic-formula translation tests — Example 2 is reproduced exactly."""

from repro.core.builder import V, builtin, fn
from repro.fol.atoms import FAtom, FBuiltin
from repro.fol.pretty import pretty_fatom
from repro.fol.terms import FApp, FConst, FVar
from repro.lang.parser import parse_atom
from repro.transform.atoms import atom_to_fol, body_atom_to_fol, dedupe_atoms


def conjuncts(source: str) -> list[str]:
    return [pretty_fatom(a) for a in atom_to_fol(parse_atom(source))]


class TestExample2:
    def test_determiner_the(self):
        """Example 2, verbatim: the atomic formula

            determiner: the[num => {singular, plural}, def => definite]

        transforms into

            determiner(the) & object(singular) & num(the, singular) &
            object(plural) & num(the, plural) &
            object(definite) & def(the, definite)
        """
        assert conjuncts(
            "determiner: the[num => {singular, plural}, def => definite]"
        ) == [
            "determiner(the)",
            "object(singular)",
            "num(the, singular)",
            "object(plural)",
            "num(the, plural)",
            "object(definite)",
            "def(the, definite)",
        ]


class TestTermAtoms:
    def test_typed_variable(self):
        assert conjuncts("noun_phrase: X") == ["noun_phrase(X)"]

    def test_typed_constant(self):
        assert conjuncts("name: john") == ["name(john)"]

    def test_function_term_asserts_args(self):
        assert conjuncts("path: id(node: a, node: b)") == [
            "path(id(a, b))",
            "node(a)",
            "node(b)",
        ]

    def test_untyped_argument_gets_object(self):
        assert conjuncts("common_np: np(Det, Noun)") == [
            "common_np(np(Det, Noun))",
            "object(Det)",
            "object(Noun)",
        ]

    def test_nested_labelled_value(self):
        assert conjuncts("p[child => q[age => 3]]") == [
            "object(p)",
            "object(q)",
            "object(3)",
            "age(q, 3)",
            "child(p, q)",
        ]

    def test_repeated_label(self):
        assert conjuncts(
            "instructor: david[course => courseid: cse538, course => courseid: cse505]"
        ) == [
            "instructor(david)",
            "courseid(cse538)",
            "course(david, cse538)",
            "courseid(cse505)",
            "course(david, cse505)",
        ]


class TestPredAtoms:
    def test_argument_assertions_precede_predicate(self):
        assert conjuncts("edge(node: a, node: b)") == [
            "node(a)",
            "node(b)",
            "edge(a, b)",
        ]

    def test_labelled_argument(self):
        assert conjuncts("edge(a[w => 3], b)") == [
            "object(a)",
            "object(3)",
            "w(a, 3)",
            "object(b)",
            "edge(a, b)",
        ]


class TestBuiltins:
    def test_builtin_passthrough(self):
        out = body_atom_to_fol(builtin("is", V("L"), fn("+", V("L0"), 1)))
        assert out == [
            FBuiltin("is", (FVar("L"), FApp("+", (FVar("L0"), FConst(1)))))
        ]


class TestDedupe:
    def test_keeps_first_occurrence(self):
        a = FAtom("object", (FVar("N"),))
        b = FAtom("num", (FVar("D"), FVar("N")))
        assert dedupe_atoms([a, b, a]) == [a, b]

    def test_builtins_never_deduped(self):
        b = FBuiltin("is", (FVar("L"), FConst(1)))
        assert dedupe_atoms([b, b]) == [b, b]
