"""The transactional knowledge-base API: batched commit/rollback,
snapshot versioning, fallback paths, and agreement with from-scratch
evaluation after updates."""

import io

import pytest

from repro.core.errors import EngineError, UnsupportedFeatureError
from repro.interface.kb import KnowledgeBase

PATH_SOURCE = """
node: a[linkto => b].
node: b[linkto => c].
node: c[linkto => d].
path: C[src => X, dest => Y, length => 1] :- node: X[linkto => Y].
path: C[src => X, dest => Y, length => L] :-
    node: X[linkto => Z],
    path: C0[src => Z, dest => Y, length => L0],
    L is L0 + 1.
"""


@pytest.fixture
def kb():
    kb = KnowledgeBase.from_source(PATH_SOURCE)
    kb.declare_identity("C", depends_on=("X", "Y"))
    return kb


def answers(kb, query="path: P[src => a, dest => Y]", engine="seminaive"):
    return kb.ask(query, engine=engine)


def fresh_answers(kb, **kwargs):
    """What a KB built from scratch over the same program would say."""
    return answers(KnowledgeBase(kb.program), **kwargs)


class TestCommit:
    def test_insert_extends_answers(self, kb):
        before = len(answers(kb))
        with kb.transaction() as txn:
            txn.insert("node: d[linkto => e].")
        assert txn.stats.fallback == ""
        assert len(answers(kb)) == before + 1
        assert answers(kb) == fresh_answers(kb)

    def test_retract_shrinks_answers(self, kb):
        with kb.transaction() as txn:
            txn.retract("node: c[linkto => d].")
        assert txn.stats.facts_deleted > 0
        assert answers(kb) == fresh_answers(kb)

    def test_program_reflects_commit(self, kb):
        size = len(kb.program)
        with kb.transaction() as txn:
            txn.insert("node: d[linkto => e].")
            txn.retract("node: a[linkto => b].")
        assert len(kb.program) == size  # one in, one out

    def test_version_advances_once_per_commit(self, kb):
        v = kb.version
        with kb.transaction() as txn:
            txn.insert("node: d[linkto => e].")
            txn.insert("node: e[linkto => f].")
        assert kb.version == v + 1

    def test_all_engines_agree_after_commit(self, kb):
        with kb.transaction() as txn:
            txn.insert("node: d[linkto => e].")
            txn.retract("node: a[linkto => b].")
        results = {
            engine: answers(kb, engine=engine)
            for engine in ("direct", "bottomup", "seminaive")
        }
        assert results["direct"] == results["bottomup"] == results["seminaive"]
        assert results["seminaive"] == fresh_answers(kb)

    def test_commit_returns_stats(self, kb):
        with kb.transaction() as txn:
            txn.insert("node: d[linkto => e].")
        assert txn.stats.operation == "apply"
        assert txn.stats.edb_inserted > 0


class TestRollback:
    def test_exception_rolls_back(self, kb):
        before = answers(kb)
        v = kb.version
        with pytest.raises(RuntimeError):
            with kb.transaction() as txn:
                txn.insert("node: z[linkto => a].")
                raise RuntimeError("abort")
        assert kb.version == v
        assert answers(kb) == before

    def test_explicit_rollback(self, kb):
        v = kb.version
        txn = kb.transaction()
        txn.insert("node: z[linkto => a].")
        txn.rollback()
        assert kb.version == v
        with pytest.raises(EngineError, match="already"):
            txn.insert("node: q[linkto => a].")

    def test_closed_transaction_rejects_commit(self, kb):
        txn = kb.transaction()
        txn.rollback()
        with pytest.raises(EngineError, match="already"):
            txn.commit()


class TestValidation:
    def test_rule_insert_rejected(self, kb):
        with kb.transaction() as txn:
            with pytest.raises(EngineError, match="facts only"):
                txn.insert("p: X :- node: X[linkto => Y].")
            txn.rollback()

    def test_subtype_insert_rejected(self, kb):
        with kb.transaction() as txn:
            with pytest.raises(EngineError, match="subtype"):
                txn.insert("node < vertex.")
            txn.rollback()

    def test_nonground_fact_rejected(self, kb):
        with kb.transaction() as txn:
            with pytest.raises(EngineError, match="not ground"):
                txn.insert("node: X[linkto => a].")
            txn.rollback()


class TestFallbacks:
    def test_new_type_symbol_rematerializes(self, kb):
        answers(kb)  # warm the maintained model
        with kb.transaction() as txn:
            txn.insert("color: red.")
        assert "rule set changed" in txn.stats.fallback
        assert kb.holds("color: red", engine="seminaive")
        assert answers(kb) == fresh_answers(kb)

    def test_negated_program_falls_back(self):
        kb = KnowledgeBase.from_source(
            """
            person: ann.
            person: bob.
            employee: bob.
            idle: X :- person: X, \\+ employee: X.
            """
        )
        with kb.transaction() as txn:
            txn.insert("person: cal.")
        assert "negation" in txn.stats.fallback
        assert kb.holds("idle: cal", engine="seminaive")
        assert not kb.holds("idle: bob", engine="seminaive")

    def test_retract_absent_fact_ignored(self, kb):
        before = answers(kb)
        with kb.transaction() as txn:
            txn.retract("node: q[linkto => q].")
        assert txn.stats.retracts_ignored >= 1
        assert answers(kb) == before

    def test_incremental_engine_rejects_negation(self):
        kb = KnowledgeBase.from_source(
            r"p: a. q: X :- p: X, \+ r: X."
        )
        with pytest.raises(UnsupportedFeatureError):
            kb.incremental_engine()


class TestMaintainedModelServing:
    def test_seminaive_serves_maintained_model(self, kb):
        with kb.transaction() as txn:
            txn.insert("node: d[linkto => e].")
        engine = kb.incremental_engine()
        assert kb._fol_minimal_model("seminaive") is engine.facts

    def test_observed_ask_still_recomputes(self, kb):
        from repro.obs import ExplainReport

        with kb.transaction() as txn:
            txn.insert("node: d[linkto => e].")
        report = ExplainReport()
        observed = answers(kb)
        reported = kb.ask(
            "path: P[src => a, dest => Y]", engine="seminaive", report=report
        )
        assert reported == observed
        assert report.engine == "seminaive"

    def test_add_source_drops_maintained_model(self, kb):
        with kb.transaction() as txn:
            txn.insert("node: d[linkto => e].")
        assert kb._incremental is not None
        kb.add_source("node: e[linkto => f].")
        assert kb._incremental is None
        assert answers(kb) == fresh_answers(kb)
