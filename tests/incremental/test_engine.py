"""Maintenance engine tests: materialize equals the from-scratch
semi-naive fixpoint, and stays equal under insertions and retractions —
including multi-derivation counting and DRed rederivation cases."""

import pytest

from repro.core.errors import EngineError, StoreError
from repro.engine.seminaive import seminaive_fixpoint
from repro.fol.atoms import FAtom, FBuiltin, HornClause
from repro.fol.terms import FConst, FVar
from repro.incremental import IncrementalEngine
from repro.obs import ExplainReport, Tracer


def atom(pred, *args):
    return FAtom(pred, tuple(args))


def const_atom(pred, *args):
    return FAtom(pred, tuple(FConst(a) for a in args))


X, Y, Z = FVar("X"), FVar("Y"), FVar("Z")

TC_RULES = [
    HornClause(atom("tc", X, Y), (atom("edge", X, Y),)),
    HornClause(atom("tc", X, Z), (atom("edge", X, Y), atom("tc", Y, Z))),
]


def chain(n):
    return [const_atom("edge", i, i + 1) for i in range(n)]


def chain_engine(n):
    clauses = [HornClause(fact) for fact in chain(n)] + TC_RULES
    engine = IncrementalEngine(clauses)
    engine.materialize()
    return engine


def recompute(engine):
    """From-scratch semi-naive state for the engine's current EDB."""
    clauses = [HornClause(fact) for fact in engine.edb]
    for stratum in engine.strata:
        clauses.extend(rule.clause for rule in stratum.rules)
    return seminaive_fixpoint(clauses).snapshot()


class TestMaterialize:
    def test_equals_seminaive(self):
        engine = chain_engine(6)
        assert engine.snapshot() == recompute(engine)

    def test_version_advances(self):
        engine = chain_engine(3)
        v = engine.version
        engine.apply(inserts=[const_atom("edge", 3, 4)])
        assert engine.version == v + 1

    def test_lazy_materialize_on_first_apply(self):
        clauses = [HornClause(fact) for fact in chain(3)] + TC_RULES
        engine = IncrementalEngine(clauses)
        engine.apply(inserts=[const_atom("edge", 3, 4)])
        assert engine.snapshot() == recompute(engine)

    def test_nonground_fact_rejected(self):
        with pytest.raises(EngineError, match="not ground"):
            IncrementalEngine([HornClause(atom("p", X))])


class TestInsertions:
    def test_single_insert(self):
        engine = chain_engine(5)
        stats = engine.apply(inserts=[const_atom("edge", 5, 6)])
        assert stats.facts_new > 0
        assert engine.snapshot() == recompute(engine)

    def test_batch_insert(self):
        engine = chain_engine(4)
        engine.apply(
            inserts=[const_atom("edge", 4, 5), const_atom("edge", 9, 10)]
        )
        assert engine.snapshot() == recompute(engine)

    def test_duplicate_insert_only_counts_edb(self):
        engine = chain_engine(3)
        before = engine.snapshot()
        stats = engine.apply(inserts=[const_atom("edge", 0, 1)])
        assert stats.facts_new == 0
        assert engine.edb.get(const_atom("edge", 0, 1)) == 2
        assert engine.snapshot() == before

    def test_insert_of_derivable_fact_keeps_it_on_later_retract(self):
        """Asserting a fact that is also derived: retracting the
        assertion must not delete it while a derivation stands."""
        engine = chain_engine(3)
        derived = const_atom("tc", 0, 2)
        engine.apply(inserts=[derived])
        engine.apply(retracts=[derived])
        assert derived in engine.facts
        assert engine.snapshot() == recompute(engine)


class TestRetractions:
    def test_retract_last_edge(self):
        engine = chain_engine(5)
        stats = engine.apply(retracts=[const_atom("edge", 4, 5)])
        assert stats.facts_deleted > 0
        assert engine.snapshot() == recompute(engine)

    def test_retract_middle_edge(self):
        engine = chain_engine(6)
        engine.apply(retracts=[const_atom("edge", 3, 4)])
        assert engine.snapshot() == recompute(engine)

    def test_rederivation_rescues_alternate_support(self):
        """Diamond: a->b, a->c, b->d, c->d.  Retracting a->b kills
        tc(a,b) but tc(a,d) must be rederived through c."""
        edges = [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
        clauses = [
            HornClause(const_atom("edge", s, t)) for s, t in edges
        ] + TC_RULES
        engine = IncrementalEngine(clauses)
        engine.materialize()
        stats = engine.apply(retracts=[const_atom("edge", "a", "b")])
        assert const_atom("tc", "a", "d") in engine.facts
        assert const_atom("tc", "a", "b") not in engine.facts
        assert stats.facts_rederived > 0
        assert engine.snapshot() == recompute(engine)

    def test_retract_unasserted_is_ignored(self):
        engine = chain_engine(3)
        before = engine.snapshot()
        stats = engine.apply(retracts=[const_atom("edge", 7, 8)])
        assert stats.retracts_ignored == 1
        assert engine.snapshot() == before

    def test_multiset_edb_survives_one_retract(self):
        engine = chain_engine(3)
        engine.apply(inserts=[const_atom("edge", 0, 1)])  # second assertion
        engine.apply(retracts=[const_atom("edge", 0, 1)])
        assert const_atom("edge", 0, 1) in engine.facts
        engine.apply(retracts=[const_atom("edge", 0, 1)])
        assert const_atom("edge", 0, 1) not in engine.facts
        assert engine.snapshot() == recompute(engine)

    def test_insert_and_retract_same_fact_nets_out(self):
        engine = chain_engine(3)
        before = engine.snapshot()
        stats = engine.apply(
            inserts=[const_atom("edge", 9, 10)],
            retracts=[const_atom("edge", 9, 10)],
        )
        assert engine.snapshot() == before
        assert stats.facts_new == 0 and stats.facts_deleted == 0


class TestCounting:
    """Non-recursive strata keep exact derivation counts."""

    def counted_engine(self):
        rules = [
            HornClause(atom("reach", Y), (atom("edge", X, Y),)),
        ]
        facts = [
            const_atom("edge", "a", "c"),
            const_atom("edge", "b", "c"),
        ]
        engine = IncrementalEngine([HornClause(f) for f in facts] + rules)
        engine.materialize()
        return engine

    def test_two_derivations_survive_one_loss(self):
        engine = self.counted_engine()
        reach_c = const_atom("reach", "c")
        assert engine.counts.get(reach_c) == 2
        engine.apply(retracts=[const_atom("edge", "a", "c")])
        assert reach_c in engine.facts
        assert engine.counts.get(reach_c) == 1
        engine.apply(retracts=[const_atom("edge", "b", "c")])
        assert reach_c not in engine.facts
        assert engine.snapshot() == recompute(engine)

    def test_counted_and_recursive_strata_compose(self):
        rules = TC_RULES + [
            HornClause(atom("reach", Y), (atom("tc", X, Y),)),
        ]
        clauses = [HornClause(f) for f in chain(4)] + rules
        engine = IncrementalEngine(clauses)
        engine.materialize()
        engine.apply(retracts=[const_atom("edge", 1, 2)])
        assert engine.snapshot() == recompute(engine)
        engine.apply(inserts=[const_atom("edge", 1, 2)])
        assert engine.snapshot() == recompute(engine)

    def test_builtin_rule_maintained(self):
        rules = [
            HornClause(
                atom("succ", X, Y),
                (atom("num", X), FBuiltin("is", (Y, X))),
            )
        ]
        clauses = [HornClause(const_atom("num", 1))] + rules
        engine = IncrementalEngine(clauses)
        engine.materialize()
        engine.apply(inserts=[const_atom("num", 2)])
        assert const_atom("succ", 2, 2) in engine.facts
        engine.apply(retracts=[const_atom("num", 1)])
        assert const_atom("succ", 1, 1) not in engine.facts
        assert engine.snapshot() == recompute(engine)


class TestObservability:
    def test_report_maintenance_section(self):
        engine = chain_engine(4)
        report = ExplainReport()
        engine.apply(retracts=[const_atom("edge", 3, 4)], report=report)
        assert report.engine == "incremental"
        assert report.maintenance is not None
        rendered = report.render()
        assert "maintenance — apply" in rendered
        assert "deleted" in rendered

    def test_tracer_spans(self):
        engine = chain_engine(4)
        tracer = Tracer()
        engine.apply(
            inserts=[const_atom("edge", 4, 5)],
            retracts=[const_atom("edge", 0, 1)],
            tracer=tracer,
        )
        names = {span.name for span in tracer.spans()}
        assert "incremental.apply" in names
        assert "incremental.insert" in names
        assert "incremental.delete" in names

    def test_stats_publish(self):
        from repro.obs import MetricsRegistry

        engine = chain_engine(3)
        stats = engine.apply(inserts=[const_atom("edge", 3, 4)])
        registry = MetricsRegistry()
        stats.publish(registry)
        snapshot = registry.snapshot()
        assert snapshot["maintenance.facts_new"] == stats.facts_new
