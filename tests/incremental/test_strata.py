"""Stratum scheduler tests: SCC condensation of the positive predicate
dependency graph, dependency order, and positive-fragment enforcement."""

import pytest

from repro.core.errors import EngineError
from repro.fol.atoms import FAtom, HornClause, NegAtom
from repro.fol.terms import FConst, FVar
from repro.incremental.strata import stratify_rules


def atom(pred, *args):
    return FAtom(pred, tuple(args))


X, Y, Z = FVar("X"), FVar("Y"), FVar("Z")

TC_RULES = [
    HornClause(atom("tc", X, Y), (atom("edge", X, Y),)),
    HornClause(atom("tc", X, Z), (atom("edge", X, Y), atom("tc", Y, Z))),
]


class TestStratify:
    def test_recursive_predicate_flagged(self):
        strata = stratify_rules(TC_RULES)
        assert len(strata) == 1
        (stratum,) = strata
        assert stratum.recursive
        assert stratum.preds == frozenset({("tc", 2)})
        assert len(stratum.rules) == 2

    def test_nonrecursive_stratum(self):
        rules = [HornClause(atom("p", X), (atom("q", X),))]
        strata = stratify_rules(rules)
        assert len(strata) == 1
        assert not strata[0].recursive

    def test_dependency_order(self):
        """A stratum is emitted only after the strata it reads from."""
        rules = TC_RULES + [
            HornClause(atom("reach", Y), (atom("tc", X, Y),)),
            HornClause(atom("top", X), (atom("reach", X),)),
        ]
        strata = stratify_rules(rules)
        order = [stratum.preds for stratum in strata]
        assert order.index(frozenset({("tc", 2)})) < order.index(
            frozenset({("reach", 1)})
        )
        assert order.index(frozenset({("reach", 1)})) < order.index(
            frozenset({("top", 1)})
        )
        assert all(not s.recursive for s in strata[1:])

    def test_mutual_recursion_one_stratum(self):
        rules = [
            HornClause(atom("even", X), (atom("odd", X),)),
            HornClause(atom("odd", X), (atom("even", X),)),
        ]
        strata = stratify_rules(rules)
        assert len(strata) == 1
        assert strata[0].recursive
        assert strata[0].preds == frozenset({("even", 1), ("odd", 1)})

    def test_edb_only_predicates_get_no_stratum(self):
        strata = stratify_rules(TC_RULES)
        assert all(("edge", 2) not in s.preds for s in strata)

    def test_negation_rejected(self):
        rules = [
            HornClause(atom("p", X), (atom("q", X), NegAtom(atom("r", X)))),
        ]
        with pytest.raises(EngineError, match="positive fragment"):
            stratify_rules(rules)

    def test_rules_carry_joinable_positions(self):
        from repro.fol.atoms import FBuiltin

        rules = [
            HornClause(
                atom("p", X, Y),
                (
                    atom("q", X, Z),
                    FBuiltin("is", (Y, Z)),
                    atom("r", Z),
                ),
            )
        ]
        (stratum,) = stratify_rules(rules)
        assert stratum.rules[0].positions == (0, 2)
