"""KnowledgeBase API tests."""

import pytest

from repro.core.errors import EngineError, SafetyError, TransformError
from repro.core.terms import Const, Func
from repro.interface import ENGINES, Answer, KnowledgeBase
from tests.conftest import NOUN_PHRASE_SOURCE, PATH_SOURCE_EXISTENTIAL


class TestConstruction:
    def test_from_source(self):
        kb = KnowledgeBase.from_source("name: john.")
        assert len(kb.program) == 1

    def test_add_source_appends(self):
        kb = KnowledgeBase.from_source("name: john.")
        kb.add_source("name: bob.\nproper_np < noun_phrase.")
        assert len(kb.program) == 2
        assert len(kb.program.subtypes) == 1

    def test_add_clause_and_subtype(self):
        from repro.core.builder import fact, obj

        kb = KnowledgeBase()
        kb.add_clause(fact(obj("a", type="t1")))
        kb.add_subtype("t1", "t2")
        assert kb.holds("t2: a")

    def test_unknown_default_engine(self):
        with pytest.raises(EngineError):
            KnowledgeBase(default_engine="magic")


class TestAsking:
    @pytest.fixture
    def kb(self):
        return KnowledgeBase.from_source(NOUN_PHRASE_SOURCE)

    def test_ask_returns_sorted_answers(self, kb):
        answers = kb.ask("noun_phrase: X[num => plural]")
        assert [a.pretty()["X"] for a in answers] == [
            "np(all, students)",
            "np(the, students)",
        ]

    def test_answer_accessors(self, kb):
        answer = kb.ask("noun_phrase: X[num => plural]")[0]
        assert "X" in answer
        assert answer["X"] == Func("np", (Const("all"), Const("students")))
        assert answer.keys() == ["X"]
        with pytest.raises(KeyError):
            answer["Z"]

    def test_holds(self, kb):
        assert kb.holds("determiner: the")
        assert not kb.holds("determiner: zz")

    def test_every_engine_agrees(self, kb):
        reference = kb.ask("noun_phrase: X[num => plural]", engine="direct")
        for engine in ENGINES:
            if engine == "sld":
                kb.sld_depth = 20
            assert kb.ask("noun_phrase: X[num => plural]", engine=engine) == reference

    def test_unknown_engine(self, kb):
        with pytest.raises(EngineError):
            kb.ask("determiner: the", engine="oracle")

    def test_query_object_accepted(self, kb):
        from repro.lang.parser import parse_query

        assert kb.ask(parse_query(":- determiner: the.")) == [Answer(())]


class TestIdentityDeclarations:
    @pytest.fixture
    def kb(self):
        return KnowledgeBase.from_source(PATH_SOURCE_EXISTENTIAL)

    def test_existential_variables_reported(self, kb):
        pending = kb.existential_variables()
        assert [vars for _, vars in pending] == [{"C"}, {"C"}]

    def test_saturation_requires_declaration(self, kb):
        with pytest.raises(SafetyError):
            kb.ask("path: P[src => a]")

    def test_declare_identity_fixes_all_clauses(self, kb):
        rewritten = kb.declare_identity("C", depends_on=("X", "Y"))
        assert rewritten == 2
        assert kb.existential_variables() == []
        answers = kb.ask("path: P[src => a, dest => d]")
        assert answers[0]["P"] == Func("id", (Const("a"), Const("d")))

    def test_declare_identity_single_clause(self, kb):
        kb.declare_identity("C", depends_on=("X", "Y"), clause_index=3)
        assert len(kb.existential_variables()) == 1

    def test_declare_unknown_variable(self, kb):
        with pytest.raises(TransformError):
            kb.declare_identity("NOPE", depends_on=("X",))

    def test_declare_non_existential_on_specific_clause(self, kb):
        with pytest.raises(TransformError):
            kb.declare_identity("X", depends_on=("Y",), clause_index=3)


class TestStoreAndExports:
    def test_objects_merged(self):
        kb = KnowledgeBase.from_source(
            "path: p[src => a, dest => b].\npath: p[src => c, dest => d]."
        )
        objects = {repr(o) for o in kb.objects()}
        assert len(kb.objects()) == len(kb.store.all_ids())

    def test_to_fol_source(self):
        kb = KnowledgeBase.from_source(NOUN_PHRASE_SOURCE)
        text = kb.to_fol_source()
        assert "noun_phrase(X) :- proper_np(X)." in text
        assert "determiner(the), object(singular), num(the, singular)" in text

    def test_to_fol_source_optimized(self):
        kb = KnowledgeBase.from_source(NOUN_PHRASE_SOURCE)
        raw = kb.to_fol_source()
        optimized = kb.to_fol_source(optimize=True)
        assert len(optimized) < len(raw)

    def test_cache_invalidation_on_add(self):
        kb = KnowledgeBase.from_source("name: john.")
        assert kb.holds("name: john")
        kb.add_source("name: bob.")
        assert kb.holds("name: bob")
        assert kb.holds("name: bob", engine="bottomup")


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        kb = KnowledgeBase.from_source(NOUN_PHRASE_SOURCE)
        path = tmp_path / "grammar.cl"
        kb.save(str(path))
        restored = KnowledgeBase.load(str(path))
        assert restored.program == kb.program
        assert restored.ask("noun_phrase: X[num => plural]") == kb.ask(
            "noun_phrase: X[num => plural]"
        )

    def test_save_after_identity_declaration(self, tmp_path):
        kb = KnowledgeBase.from_source(PATH_SOURCE_EXISTENTIAL)
        kb.declare_identity("C", depends_on=("X", "Y"))
        path = tmp_path / "paths.cl"
        kb.save(str(path))
        restored = KnowledgeBase.load(str(path))
        # Skolemized identities persist through the round trip.
        assert restored.existential_variables() == []
        assert restored.ask("path: P[src => a]") == kb.ask("path: P[src => a]")
