"""REPL tests (driven through the stream interface, no subprocess)."""

import io

import pytest

from repro.cli import Repl


def run_lines(*lines: str) -> str:
    out = io.StringIO()
    repl = Repl(out=out)
    for line in lines:
        repl.handle(line)
    return out.getvalue()


class TestAssertAndQuery:
    def test_assert_fact_then_query(self):
        output = run_lines("name: john.", ":- name: X.")
        assert "asserted 1 clause(s)" in output
        assert "X = john" in output
        assert "(1 answer(s))" in output

    def test_ground_query_yes_no(self):
        output = run_lines("name: john.", ":- name: john.", ":- name: bob.")
        assert "yes" in output
        assert "no" in output

    def test_query_without_prefix(self):
        output = run_lines("name: john.", "name: X")
        assert "X = john" in output

    def test_rule_and_subtype(self):
        output = run_lines(
            "name: john.",
            "proper_np: X[pers => 3] :- name: X.",
            "proper_np < noun_phrase.",
            ":- noun_phrase: X.",
        )
        assert "subtype declaration" in output
        assert "X = john" in output

    def test_parse_error_reported(self):
        output = run_lines("broken [")
        assert "error:" in output

    def test_comment_and_blank_ignored(self):
        assert run_lines("", "% a comment") == ""

    def test_existential_warning(self):
        output = run_lines("path: C[src => X] :- node: X[linkto => Y].")
        assert "existential object variable" in output
        assert "'C'" in output


class TestCommands:
    def test_help(self):
        output = run_lines(":help")
        assert ":load FILE" in output

    def test_unknown_command(self):
        output = run_lines(":zap")
        assert "unknown command" in output

    def test_engine_switch(self):
        output = run_lines(":engine tabled", ":engine warp")
        assert "engine set to tabled" in output
        assert "usage: :engine" in output

    def test_objects(self):
        output = run_lines("person: john[age => 3].", ":objects")
        assert "person: john[age => 3]" in output

    def test_program_listing(self):
        output = run_lines("name: john.", ":program")
        assert "name: john." in output

    def test_fol_translation(self):
        output = run_lines("determiner: the[num => singular].", ":fol")
        assert "determiner(the), object(singular), num(the, singular)." in output

    def test_identity_declaration(self):
        output = run_lines(
            "node: a[linkto => b].",
            "path: C[src => X, dest => Y] :- node: X[linkto => Y].",
            ":existential",
            ":identity C X,Y",
            ":- path: P.",
        )
        assert "clause 1: ['C']" in output
        assert "skolemized 1 clause(s)" in output
        assert "P = id(a, b)" in output

    def test_identity_usage(self):
        assert "usage: :identity" in run_lines(":identity C")

    def test_load_missing_file(self):
        assert "cannot read" in run_lines(":load /nonexistent/zzz.cl")

    def test_load_real_file(self, tmp_path):
        source_file = tmp_path / "program.cl"
        source_file.write_text("name: john.\n")
        output = run_lines(f":load {source_file}", ":- name: X.")
        assert "X = john" in output

    def test_quit_stops(self):
        repl = Repl(out=io.StringIO())
        repl.handle(":quit")
        assert not repl.running


class TestRunLoop:
    def test_run_over_stream(self):
        out = io.StringIO()
        repl = Repl(out=out)
        repl.run(io.StringIO("name: john.\n:- name: X.\n:quit\n"))
        text = out.getvalue()
        assert "C-logic shell" in text
        assert "X = john" in text

    def test_eof_terminates(self):
        out = io.StringIO()
        Repl(out=out).run(io.StringIO(""))
        assert "C-logic shell" in out.getvalue()
