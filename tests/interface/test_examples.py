"""Integration tests: every shipped example runs and prints what its
docstring promises."""

import importlib.util
import io
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> str:
    spec = importlib.util.spec_from_file_location(name, EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        module.main()
    return buffer.getvalue()


def test_quickstart():
    output = run_example("quickstart")
    assert "id(john, mary)" in output
    assert "'C': 'bob'" in output or "C" in output
    assert "person: john[age => 40" in output


def test_noun_phrase_grammar():
    output = run_example("noun_phrase_grammar")
    assert output.count("['np(all, students)', 'np(the, students)']") == 5
    assert "common_np(np(Det, Noun)), object(3)" in output


def test_path_database():
    output = run_example("path_database")
    assert "id(a, d)  lengths => ['2', '3']" in output
    assert "id(a, d, 2)" in output and "id(a, d, 3)" in output
    assert "id(a, id(b, d))" in output


def test_family_sets():
    output = run_example("family_sets")
    assert "9 (X, Y) bindings" in output
    assert "['alice', 'bob', 'carol']" in output
    assert "-> True" in output and "-> False" in output


def test_olog_vs_clogic():
    output = run_example("olog_vs_clogic")
    assert "multiply defined on john" in output
    assert "john[name => T]" in output
    assert "multiply defined on e1" in output


def test_schema_and_negation():
    output = run_example("schema_and_negation")
    assert "['ann', 'bob', 'sam']" in output
    assert "all 4 constraints hold" in output
    assert "VIOLATION [functional(salary)]" in output


def test_university_db():
    output = run_example("university_db")
    assert "enr(ann, cse303)" in output
    assert "cse303 at depth 2" in output
    assert "['dan']" in output
    assert "['kifer', 'warren']" in output
    assert "0 violation(s)" in output
    assert "by rule 15" in output
