"""The query/trace subcommands, workload loading, and KB-level hooks."""

import io
import json
from pathlib import Path

import pytest

from repro.cli import SUBCOMMANDS, Repl, cmd_query, cmd_trace, load_workload
from repro.interface.kb import ENGINES, KnowledgeBase
from repro.obs import ExplainReport, Tracer

REPO_ROOT = Path(__file__).resolve().parents[2]

TC_SOURCE = """
edge(a, b).  edge(b, c).  edge(c, d).
tc(X, Y) :- edge(X, Y).
tc(X, Y) :- edge(X, Z), tc(Z, Y).
:- tc(a, X).
"""


@pytest.fixture
def tc_file(tmp_path):
    path = tmp_path / "tc.cl"
    path.write_text(TC_SOURCE)
    return str(path)


class TestLoadWorkload:
    def test_cl_file_yields_inline_queries(self, tc_file):
        kb, queries = load_workload(tc_file)
        assert queries == ["tc(a, X)"]
        assert len(kb.ask(queries[0])) == 3

    def test_python_workload_module(self):
        path = REPO_ROOT / "examples" / "path_database.py"
        kb, queries = load_workload(str(path))
        assert queries  # the example declares TRACE_QUERIES
        answers = kb.ask(queries[0])
        assert len(answers) == 2  # two a->d node sequences

    def test_python_module_without_trace_source_rejected(self, tmp_path):
        from repro.core.errors import CLogicError

        path = tmp_path / "plain.py"
        path.write_text("x = 1\n")
        with pytest.raises(CLogicError, match="TRACE_SOURCE"):
            load_workload(str(path))


class TestQueryCommand:
    def test_prints_answers(self, tc_file):
        out = io.StringIO()
        assert cmd_query([tc_file], out=out) == 0
        text = out.getvalue()
        assert "?- tc(a, X)" in text
        assert "(3 answer(s))" in text

    def test_explain_flag_renders_report(self, tc_file):
        out = io.StringIO()
        assert cmd_query([tc_file, "--engine", "seminaive", "--explain"], out=out) == 0
        text = out.getvalue()
        assert "EXPLAIN — seminaive" in text
        assert "join order (greedy, final round):" in text
        assert "round  instantiations  derived  new" in text

    def test_query_flag_overrides_inline(self, tc_file):
        out = io.StringIO()
        assert cmd_query([tc_file, "--query", "tc(b, X)"], out=out) == 0
        assert "(2 answer(s))" in out.getvalue()

    def test_no_queries_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "facts.cl"
        path.write_text("edge(a, b).\n")
        assert cmd_query([str(path)], out=io.StringIO()) == 1
        assert "--query" in capsys.readouterr().err

    def test_missing_file_is_an_error(self, capsys):
        assert cmd_query(["/no/such/file.cl"], out=io.StringIO()) == 1
        assert "error:" in capsys.readouterr().err


class TestTraceCommand:
    def test_trace_implies_explain_and_tree(self, tc_file):
        out = io.StringIO()
        assert cmd_trace([tc_file, "--engine", "bottomup"], out=out) == 0
        text = out.getvalue()
        assert "EXPLAIN — bottomup" in text
        assert "-- trace --" in text
        assert "bottomup.round" in text

    def test_trace_out_writes_valid_jsonl(self, tc_file, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        out = io.StringIO()
        argv = [tc_file, "--engine", "seminaive", "--trace-out", str(trace_path)]
        assert cmd_trace(argv, out=out) == 0
        lines = trace_path.read_text().splitlines()
        assert lines
        records = [json.loads(line) for line in lines]
        assert all(
            {"id", "parent", "name", "start", "duration", "attrs", "counters"}
            <= set(record)
            for record in records
        )
        assert any(record["name"] == "seminaive.round" for record in records)

    def test_acceptance_path_database_example(self):
        # The headline command: repro trace examples/path_database.py
        out = io.StringIO()
        path = str(REPO_ROOT / "examples" / "path_database.py")
        assert cmd_trace([path], out=out) == 0
        text = out.getvalue()
        assert "EXPLAIN — direct" in text
        assert "rule 1:" in text


class TestReplExplain:
    def test_explain_command(self):
        out = io.StringIO()
        repl = Repl(KnowledgeBase.from_source(TC_SOURCE), out=out)
        repl.handle(":explain tc(a, X)")
        text = out.getvalue()
        assert "(3 answer(s))" in text
        assert "EXPLAIN — direct" in text

    def test_explain_without_query_prints_usage(self):
        out = io.StringIO()
        Repl(out=out).handle(":explain")
        assert "usage: :explain QUERY" in out.getvalue()


class TestKnowledgeBaseHooks:
    def test_every_engine_accepts_a_tracer(self):
        kb = KnowledgeBase.from_source(TC_SOURCE)
        kb.sld_depth = 20
        for engine in ENGINES:
            # Recursion through the translation explodes plain SLD (the
            # §4 point, measured in E6) — give it the one-step goal.
            query = "edge(a, X)" if engine == "sld" else "tc(a, X)"
            expected = 1 if engine == "sld" else 3
            tracer = Tracer()
            answers = kb.ask(query, engine=engine, tracer=tracer)
            assert len(answers) == expected, engine
            assert list(tracer.spans()), engine  # something was recorded

    def test_fixpoint_engines_fill_reports(self):
        kb = KnowledgeBase.from_source(TC_SOURCE)
        for engine in ("direct", "bottomup", "seminaive"):
            report = ExplainReport()
            kb.ask("tc(a, X)", engine=engine, report=report)
            assert report.rounds > 0, engine
            assert report.facts_total > 0, engine
            assert report.rules, engine

    def test_subcommand_registry_names(self):
        assert set(SUBCOMMANDS) == {"repl", "query", "trace", "update"}


class TestUpdateSubcommand:
    def test_registered(self):
        assert "update" in SUBCOMMANDS

    def test_insert_then_query(self, tc_file):
        from repro.cli import cmd_update

        out = io.StringIO()
        code = cmd_update(
            [
                tc_file,
                "--insert",
                "edge(d, e)",
                "--query",
                "tc(a, X)",
                "--engine",
                "seminaive",
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "committed (version" in text
        assert "X = e" in text

    def test_retract_with_explain(self, tc_file):
        from repro.cli import cmd_update

        out = io.StringIO()
        code = cmd_update(
            [tc_file, "--retract", "edge(c, d)", "--explain"], out=out
        )
        assert code == 0
        text = out.getvalue()
        assert "maintenance — apply" in text
        assert "deleted" in text

    def test_trailing_period_optional(self, tc_file):
        from repro.cli import cmd_update

        out = io.StringIO()
        assert cmd_update([tc_file, "--insert", "edge(d, e)."], out=out) == 0

    def test_no_operations_errors(self, tc_file):
        from repro.cli import cmd_update

        assert cmd_update([tc_file], out=io.StringIO()) == 1

    def test_rule_insert_errors(self, tc_file):
        from repro.cli import EXIT_ENGINE, cmd_update

        code = cmd_update(
            [tc_file, "--insert", "p(X) :- tc(X, Y)"], out=io.StringIO()
        )
        assert code == EXIT_ENGINE

    def test_trace_prints_spans(self, tc_file):
        from repro.cli import cmd_update

        out = io.StringIO()
        code = cmd_update(
            [tc_file, "--insert", "edge(d, e)", "--trace"], out=out
        )
        assert code == 0
        assert "incremental.apply" in out.getvalue()
