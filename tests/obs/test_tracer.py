"""Span nesting, deterministic timing, and the JSONL round trip."""

import pytest

from repro.obs import Tracer, read_jsonl


class FakeClock:
    """Steps by a fixed amount per call — durations become exact."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class TestNesting:
    def test_context_managers_nest(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer") as outer:
            with tracer.span("inner", round=1) as inner:
                inner.count("facts_new", 3)
        assert tracer.roots == [outer]
        assert outer.children == [inner]
        assert inner.parent_id == outer.span_id
        assert inner.attributes == {"round": 1}
        assert inner.counters == {"facts_new": 3}

    def test_imperative_start_finish(self):
        tracer = Tracer(clock=FakeClock())
        outer = tracer.start("outer")
        inner = tracer.start("inner")
        assert tracer.current() is inner
        tracer.finish(inner)
        assert tracer.current() is outer
        tracer.finish(outer)
        assert tracer.current() is None

    def test_out_of_order_finish_raises(self):
        tracer = Tracer(clock=FakeClock())
        outer = tracer.start("outer")
        tracer.start("inner")
        with pytest.raises(RuntimeError, match="out of order"):
            tracer.finish(outer)

    def test_siblings_after_close_are_roots(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [root.name for root in tracer.roots] == ["first", "second"]

    def test_walk_is_depth_first(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
            with tracer.span("d"):
                pass
        assert [span.name for span in tracer.spans()] == ["a", "b", "c", "d"]


class TestTiming:
    def test_durations_are_deterministic_with_fake_clock(self):
        # Clock ticks: 0 (outer start), 1 (inner start), 2 (inner end),
        # 3 (outer end) — so inner took 1.0 and outer 3.0.
        tracer = Tracer(clock=FakeClock(step=1.0))
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.duration == 1.0
        assert outer.duration == 3.0
        assert inner.start == 1.0 and outer.start == 0.0

    def test_counter_accumulates(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("s") as span:
            span.count("n")
            span.count("n", 4)
        assert span.counters["n"] == 5

    def test_set_overwrites_attribute(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("s", changed=False) as span:
            span.set("changed", True)
        assert span.attributes["changed"] is True


class TestExport:
    def _sample(self) -> Tracer:
        tracer = Tracer(clock=FakeClock())
        with tracer.span("fixpoint", engine="seminaive") as run:
            run.count("rounds", 2)
            with tracer.span("round", round=1) as first:
                first.count("facts_new", 11)
            with tracer.span("round", round=2):
                pass
        return tracer

    def test_jsonl_round_trip(self):
        tracer = self._sample()
        roots = read_jsonl(tracer.to_jsonl())
        assert len(roots) == 1
        original = list(tracer.spans())
        rebuilt = list(roots[0].walk())
        assert len(rebuilt) == len(original) == 3
        for before, after in zip(original, rebuilt):
            assert after.to_record() == before.to_record()

    def test_write_jsonl_file(self, tmp_path):
        tracer = self._sample()
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(str(path))
        text = path.read_text()
        assert text.endswith("\n")
        assert len(text.splitlines()) == 3
        roots = read_jsonl(text)
        assert roots[0].name == "fixpoint"

    def test_empty_tracer_exports_empty(self, tmp_path):
        tracer = Tracer(clock=FakeClock())
        assert tracer.to_jsonl() == ""
        path = tmp_path / "empty.jsonl"
        tracer.write_jsonl(str(path))
        assert path.read_text() == ""
        assert read_jsonl("") == []

    def test_format_tree(self):
        tracer = self._sample()
        tree = tracer.format_tree()
        lines = tree.splitlines()
        assert lines[0].startswith("fixpoint [engine=seminaive] rounds=2")
        assert lines[1].startswith("  round [round=1] facts_new=11")
        # Fake clock: each round span opens and closes one tick apart.
        assert "(1000.00 ms)" in lines[1]
        without = tracer.format_tree(durations=False)
        assert "ms" not in without
