"""ExplainReport structure and its filling by the fixpoint engines."""

from repro.engine.bottomup import naive_fixpoint
from repro.engine.seminaive import seminaive_fixpoint
from repro.fol.atoms import FAtom, HornClause
from repro.fol.terms import FConst, FVar
from repro.obs import ExplainReport, IndexStats


def tc_clauses(n: int) -> list[HornClause]:
    clauses = [
        HornClause(FAtom("edge", (FConst(i), FConst(i + 1)))) for i in range(n)
    ]
    clauses.append(
        HornClause(
            FAtom("tc", (FVar("X"), FVar("Y"))),
            (FAtom("edge", (FVar("X"), FVar("Y"))),),
        )
    )
    clauses.append(
        HornClause(
            FAtom("tc", (FVar("X"), FVar("Z"))),
            (
                FAtom("edge", (FVar("X"), FVar("Y"))),
                FAtom("tc", (FVar("Y"), FVar("Z"))),
            ),
        )
    )
    return clauses


class TestIndexStats:
    def test_hit_rate(self):
        stats = IndexStats(lookups=4, indexed=3, scans=1)
        assert stats.hit_rate == 0.75
        assert IndexStats().hit_rate == 0.0

    def test_add_since_accumulates_the_delta(self):
        live = IndexStats(lookups=10, indexed=8, scans=2, candidates_returned=50)
        snapshot = live.snapshot()
        live.lookups += 5
        live.indexed += 4
        live.scans += 1
        live.candidates_returned += 20
        into = IndexStats()
        live.add_since(snapshot, into)
        assert (into.lookups, into.indexed, into.scans) == (5, 4, 1)
        assert into.candidates_returned == 20

    def test_describe(self):
        assert IndexStats().describe() == "no index lookups"
        text = IndexStats(lookups=4, indexed=3, scans=1, candidates_returned=9).describe()
        assert "75.0%" in text and "4 lookups" in text


class TestReportShape:
    def test_rule_slot_is_stable_per_key(self):
        report = ExplainReport()
        first = report.rule(0, "p :- q.")
        again = report.rule(0, "ignored on second call")
        assert first is again
        assert report.rules == [first]
        assert first.rule == "p :- q."

    def test_round_rows_and_totals(self):
        report = ExplainReport(engine="test")
        slot = report.rule(0, "p :- q.")
        slot.round(1).instantiations += 3
        slot.round(1).facts_new += 2
        slot.round(2).instantiations += 1
        assert slot.instantiations == 4
        assert slot.facts_new == 2
        assert sorted(slot.rounds) == [1, 2]

    def test_render_mentions_everything(self):
        report = ExplainReport(engine="seminaive")
        report.rounds = 2
        report.facts_total = 7
        slot = report.rule(0, "tc(X, Y) :- edge(X, Y).")
        slot.join_order = [("edge(X, Y)", 3)]
        slot.round(1).instantiations = 3
        text = report.render()
        assert "EXPLAIN — seminaive" in text
        assert "rounds: 2   facts in model: 7" in text
        assert "tc(X, Y) :- edge(X, Y)." in text
        assert "edge(X, Y) (~3)" in text
        assert "round  instantiations  derived  new" in text

    def test_never_instantiated_rule_renders(self):
        report = ExplainReport()
        report.rule(0, "dead :- no_such_fact.")
        assert "(never instantiated)" in report.render()


class TestEngineFilling:
    def test_seminaive_fills_the_report(self):
        report = ExplainReport()
        facts = seminaive_fixpoint(tc_clauses(5), report=report)
        assert report.engine == "seminaive"
        assert report.rounds >= 2
        assert report.facts_total == len(facts)
        assert report.index.lookups > 0
        # One slot per rule (extensional facts are not rules), each
        # carrying a join order and consistent totals.
        assert len(report.rules) == 2
        for slot in report.rules:
            assert slot.join_order is not None
            assert slot.facts_derived >= slot.facts_new

    def test_new_facts_attributed_to_rules_sum_to_model(self):
        # Every fact in the model beyond round 0 is some rule's
        # facts_new exactly once (fixpoint facts are derived once).
        report = ExplainReport()
        facts = naive_fixpoint(tc_clauses(4), report=report)
        derived_new = sum(slot.facts_new for slot in report.rules)
        base_facts = len(facts) - derived_new
        assert base_facts > 0  # the edge/1 extensional facts
        assert derived_new > 0

    def test_naive_and_seminaive_agree_on_facts_new_per_rule(self):
        # The E11 regression: both strategies compute the same model,
        # so each rule contributes the same number of *new* facts even
        # though naive re-derives old ones every round.
        clauses = tc_clauses(8)
        naive_report = ExplainReport()
        semi_report = ExplainReport()
        naive_facts = naive_fixpoint(clauses, report=naive_report)
        semi_facts = seminaive_fixpoint(clauses, report=semi_report)
        assert len(naive_facts) == len(semi_facts)
        naive_new = [slot.facts_new for slot in naive_report.rules]
        semi_new = [slot.facts_new for slot in semi_report.rules]
        assert naive_new == semi_new
        # ... while naive does strictly more instantiation work.
        assert sum(s.instantiations for s in naive_report.rules) > sum(
            s.instantiations for s in semi_report.rules
        )


class TestZeroProbeIndexes:
    """An index built on demand but never probed must not divide by
    zero or render nonsense rates."""

    def test_hit_rate_zero_without_probes(self):
        stats = IndexStats()
        stats.record_index_built("edge/2[1]")
        assert stats.index_hit_rate("edge/2[1]") == 0.0
        assert stats.indexes_built == 1

    def test_hit_rate_unknown_index(self):
        assert IndexStats().index_hit_rate("ghost/1[1]") == 0.0

    def test_describe_marks_never_probed(self):
        stats = IndexStats(lookups=4, indexed=3, scans=1)
        stats.record_index_built("edge/2[1]")
        lines = stats.describe_indexes()
        assert any("built, never probed" in line for line in lines)

    def test_render_survives_zero_probe_index(self):
        report = ExplainReport()
        seminaive_fixpoint(tc_clauses(3), report=report)
        report.index.record_index_built("phantom/3[2]")
        text = report.render()
        assert "phantom/3[2]: built, never probed" in text


class TestMaintenanceSection:
    def test_render_includes_maintenance(self):
        from repro.incremental import MaintenanceStats

        report = ExplainReport()
        report.engine = "incremental"
        report.maintenance = MaintenanceStats(
            operation="apply",
            strata=2,
            recursive_strata=1,
            facts_deleted=4,
            facts_overdeleted=6,
            facts_rederived=2,
        )
        text = report.render()
        assert "maintenance — apply" in text
        assert "overdeleted: 6" in text
        assert "rederived: 2" in text
        assert "1 recursive" in text

    def test_fallback_line_rendered(self):
        from repro.incremental import MaintenanceStats

        report = ExplainReport()
        report.maintenance = MaintenanceStats(
            operation="apply", fallback="rule set changed"
        )
        assert "full recompute fallback: rule set changed" in report.render()

    def test_no_maintenance_section_by_default(self):
        report = ExplainReport()
        assert "maintenance" not in report.render()
