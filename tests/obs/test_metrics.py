"""MetricsRegistry behaviour and the EvaluationStats facade bridge."""

from repro.engine.bottomup import EvaluationStats, naive_fixpoint
from repro.fol.atoms import FAtom, HornClause
from repro.fol.terms import FConst, FVar
from repro.obs import MetricsRegistry
from repro.obs.metrics import publish_dataclass


class FakeClock:
    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class TestRegistry:
    def test_counter_get_or_create(self):
        registry = MetricsRegistry()
        registry.counter("facts").add(3)
        registry.counter("facts").add(2)
        assert registry.counter("facts").value == 5
        assert len(registry) == 1

    def test_gauge_set(self):
        registry = MetricsRegistry()
        registry.gauge("store.size").set(41)
        registry.gauge("store.size").set(42)
        assert registry.gauge("store.size").value == 42

    def test_timer_with_fake_clock(self):
        registry = MetricsRegistry(clock=FakeClock(step=1.0))
        timer = registry.timer("round")
        with timer.time():
            pass
        with timer.time():
            pass
        assert timer.total == 2.0
        assert timer.count == 2
        assert timer.mean == 1.0

    def test_snapshot_is_flat(self):
        registry = MetricsRegistry(clock=FakeClock())
        registry.counter("c").add(7)
        registry.gauge("g").set(1.5)
        with registry.timer("t").time():
            pass
        assert registry.snapshot() == {
            "c": 7,
            "g": 1.5,
            "t.total_s": 1.0,
            "t.count": 1,
        }

    def test_merge_folds_counts(self):
        left = MetricsRegistry(clock=FakeClock())
        right = MetricsRegistry(clock=FakeClock())
        left.counter("c").add(1)
        right.counter("c").add(2)
        right.gauge("g").set(9)
        with right.timer("t").time():
            pass
        left.merge(right)
        snapshot = left.snapshot()
        assert snapshot["c"] == 3
        assert snapshot["g"] == 9
        assert snapshot["t.count"] == 1

    def test_iteration_lists_names(self):
        registry = MetricsRegistry()
        registry.counter("a")
        registry.gauge("b")
        assert sorted(registry) == ["a", "b"]


class TestStatsFacade:
    """EvaluationStats stays the cheap hot-loop dataclass and publishes
    into the registry at run boundaries, losslessly."""

    def _run_stats(self) -> EvaluationStats:
        clauses = [
            HornClause(FAtom("edge", (FConst(i), FConst(i + 1)))) for i in range(4)
        ]
        clauses.append(
            HornClause(
                FAtom("tc", (FVar("X"), FVar("Y"))),
                (FAtom("edge", (FVar("X"), FVar("Y"))),),
            )
        )
        clauses.append(
            HornClause(
                FAtom("tc", (FVar("X"), FVar("Z"))),
                (
                    FAtom("edge", (FVar("X"), FVar("Y"))),
                    FAtom("tc", (FVar("Y"), FVar("Z"))),
                ),
            )
        )
        stats = EvaluationStats()
        naive_fixpoint(clauses, stats=stats)
        return stats

    def test_publish_then_from_registry_round_trips(self):
        stats = self._run_stats()
        assert stats.facts_new > 0  # a meaningful run, not all zeros
        registry = MetricsRegistry()
        stats.publish(registry)
        assert EvaluationStats.from_registry(registry) == stats

    def test_published_names_carry_the_prefix(self):
        stats = self._run_stats()
        registry = MetricsRegistry()
        stats.publish(registry)
        snapshot = registry.snapshot()
        assert snapshot["fixpoint.rounds"] == stats.rounds
        assert snapshot["fixpoint.facts_new"] == stats.facts_new
        assert all(name.startswith("fixpoint.") for name in snapshot)

    def test_publish_accumulates_across_runs(self):
        registry = MetricsRegistry()
        first = self._run_stats()
        first.publish(registry)
        first.publish(registry)
        merged = EvaluationStats.from_registry(registry)
        assert merged.facts_derived == 2 * first.facts_derived

    def test_publish_dataclass_counter_filter(self):
        stats = self._run_stats()
        registry = MetricsRegistry()
        publish_dataclass(registry, stats, "fp", counters={"rounds"})
        assert list(registry) == ["fp.rounds"]
