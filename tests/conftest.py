"""Shared fixtures: the paper's example programs and queries."""

from __future__ import annotations

import pytest

from repro.lang.parser import parse_program

#: Example 3 (Section 4): objects of type noun_phrase.
NOUN_PHRASE_SOURCE = """
name: john.
name: bob.
determiner: the[num => {singular, plural}, def => definite].
determiner: a[num => singular, def => indef].
determiner: all[num => plural, def => indef].
noun: student[num => singular].
noun: students[num => plural].
proper_np: X[pers => 3, num => singular, def => definite] :- name: X.
common_np: np(Det, Noun)[pers => 3, num => N, def => D] :-
    determiner: Det[num => N, def => D],
    noun: Noun[num => N].
proper_np < noun_phrase.
common_np < noun_phrase.
"""

#: Section 2.1's path rules, already skolemized with reading 1
#: (identity determined by the node objects at both ends only).
PATH_SOURCE = """
node: a[linkto => b].
node: b[linkto => c].
node: c[linkto => d].
path: id(X, Y)[src => X, dest => Y, length => 1] :- node: X[linkto => Y].
path: id(X, Y)[src => X, dest => Y, length => L] :-
    node: X[linkto => Z],
    path: C0[src => Z, dest => Y, length => L0],
    L is L0 + 1.
"""

#: The unskolemized path rules (existential object variable C).
PATH_SOURCE_EXISTENTIAL = """
node: a[linkto => b].
node: b[linkto => c].
node: c[linkto => d].
path: C[src => X, dest => Y, length => 1] :- node: X[linkto => Y].
path: C[src => X, dest => Y, length => L] :-
    node: X[linkto => Z],
    path: C0[src => Z, dest => Y, length => L0],
    L is L0 + 1.
"""

#: Section 4's multi-valued label facts: two partial descriptions of p.
RESIDUAL_SOURCE = """
path: p[src => a, dest => b].
path: p[src => c, dest => d].
"""

#: Section 5's set-through-multi-valued-labels fact.
CHILDREN_SOURCE = """
person: john[children => {bob, bill, joe}].
"""

#: Section 2.2's O-logic inconsistency example.
JOHN_NAMES_SOURCE = """
john[name => "John"].
john[name => "John Smith"].
"""


@pytest.fixture
def noun_phrase_program():
    return parse_program(NOUN_PHRASE_SOURCE).program


@pytest.fixture
def path_program():
    return parse_program(PATH_SOURCE).program


@pytest.fixture
def path_program_existential():
    return parse_program(PATH_SOURCE_EXISTENTIAL).program


@pytest.fixture
def residual_program():
    return parse_program(RESIDUAL_SOURCE).program


@pytest.fixture
def children_program():
    return parse_program(CHILDREN_SOURCE).program


@pytest.fixture
def john_names_program():
    return parse_program(JOHN_NAMES_SOURCE).program
