"""Schema constraint tests (the layer above the logic, §2.2/§6)."""

import pytest

from repro.core.errors import ConsistencyError
from repro.core.terms import Const
from repro.engine.direct import DirectEngine
from repro.lang.parser import parse_program
from repro.schema import (
    Cardinality,
    DomainConstraint,
    FunctionalLabel,
    RequiredLabel,
    Schema,
)


def saturated(source: str):
    engine = DirectEngine(parse_program(source).program)
    return engine.saturate()


class TestFunctionalLabel:
    def test_violation_reported_not_fatal(self):
        """Unlike O-logic, a functionality violation is a *schema*
        finding — the program itself stays consistent."""
        store = saturated('john[name => "John"].\njohn[name => "John Smith"].')
        violations = FunctionalLabel("name").check(store)
        assert len(violations) == 1
        assert violations[0].subject == Const("john")
        assert "2 values" in violations[0].detail

    def test_clean_store(self):
        store = saturated("john[name => x].")
        assert FunctionalLabel("name").check(store) == []

    def test_other_labels_ignored(self):
        store = saturated("p[src => a].\np[src => b].")
        assert FunctionalLabel("dest").check(store) == []


class TestDomainConstraint:
    def test_host_and_value_typing(self):
        store = saturated(
            """
            node: a.
            node: b.
            path: p[src => a, dest => b].
            path: q[src => rogue].
            """
        )
        constraint = DomainConstraint("src", host_type="path", value_type="node")
        violations = constraint.check(store)
        assert len(violations) == 1
        assert violations[0].subject == Const("rogue")

    def test_hierarchy_respected(self):
        store = saturated(
            """
            special_node < node.
            special_node: a.
            path: p[src => a].
            """
        )
        constraint = DomainConstraint("src", host_type="path", value_type="node")
        assert constraint.check(store) == []

    def test_host_violation(self):
        store = saturated("notapath[src => a].")
        constraint = DomainConstraint("src", host_type="path")
        violations = constraint.check(store)
        assert any("host" in v.detail for v in violations)


class TestRequiredLabel:
    def test_missing_label_reported(self):
        store = saturated("person: john[age => 3].\nperson: sue.")
        violations = RequiredLabel("person", "age").check(store)
        assert [v.subject for v in violations] == [Const("sue")]

    def test_inherited_members_checked(self):
        store = saturated("student < person.\nstudent: amy.")
        violations = RequiredLabel("person", "age").check(store)
        assert [v.subject for v in violations] == [Const("amy")]


class TestCardinality:
    def test_at_most(self):
        store = saturated("person: p[children => {a, b, c}].")
        violations = Cardinality("children", "person", at_most=2).check(store)
        assert len(violations) == 1
        assert "at most 2" in violations[0].detail

    def test_at_least(self):
        store = saturated("person: p.\nperson: q[children => a].")
        violations = Cardinality("children", "person", at_least=1).check(store)
        assert [v.subject for v in violations] == [Const("p")]

    def test_within_bounds(self):
        store = saturated("person: p[children => {a, b}].")
        assert Cardinality("children", "person", 1, 3).check(store) == []


class TestSchema:
    def test_aggregates_violations(self):
        store = saturated(
            'john[name => "A"].\njohn[name => "B"].\nperson: sue.'
        )
        schema = Schema([FunctionalLabel("name"), RequiredLabel("person", "age")])
        assert len(schema.check(store)) == 2

    def test_require_raises_with_details(self):
        store = saturated('john[name => "A"].\njohn[name => "B"].')
        schema = Schema([FunctionalLabel("name")])
        with pytest.raises(ConsistencyError) as info:
            schema.require(store)
        assert "functional(name)" in str(info.value)

    def test_empty_schema_passes(self):
        store = saturated("a.")
        Schema().require(store)

    def test_add_chains(self):
        schema = Schema().add(FunctionalLabel("a")).add(FunctionalLabel("b"))
        assert len(schema) == 2

    def test_violation_str(self):
        store = saturated('j[name => "A"].\nj[name => "B"].')
        text = str(FunctionalLabel("name").check(store)[0])
        assert "functional(name)" in text and "j" in text
