"""Static-notion-of-types tests (§2.3)."""

import pytest

from repro.core.errors import SyntaxKindError
from repro.core.pretty import pretty_clause
from repro.core.terms import Const
from repro.engine.direct import DirectEngine
from repro.lang.parser import parse_program, parse_query
from repro.schema import StaticType, implied_hierarchy, membership_rule


class TestMembershipRule:
    def test_matches_paper_shape(self):
        """T(X) :- X[l1 => X1, ..., ln => Xn]."""
        rule = membership_rule(StaticType("employee", ("salary", "boss")))
        assert pretty_clause(rule) == (
            "employee: X :- X[salary => X1, boss => X2]."
        )

    def test_automatic_membership(self):
        """Every object with all the properties automatically belongs."""
        program = parse_program(
            """
            john[salary => 100, boss => mary].
            sue[salary => 50].
            """
        ).program
        program = program.extended(
            membership_rule(StaticType("employee", ("salary", "boss")))
        )
        engine = DirectEngine(program)
        members = engine.solve(parse_query(":- employee: X."))
        assert {a["X"] for a in members} == {Const("john")}

    def test_membership_tracks_updates(self):
        """Static membership is derived, so re-running the program after
        an update recomputes it — the dynamic substrate at work."""
        base = parse_program("sue[salary => 50].").program
        typed = base.extended(membership_rule(StaticType("earner", ("salary",))))
        engine = DirectEngine(typed)
        assert engine.holds(parse_query(":- earner: sue."))
        richer = typed.extended(
            parse_program("bob[salary => 10].").program.clauses[0]
        )
        engine2 = DirectEngine(richer)
        assert engine2.holds(parse_query(":- earner: bob."))

    def test_requires_a_property(self):
        with pytest.raises(SyntaxKindError):
            StaticType("anything", ())

    def test_duplicate_property_rejected(self):
        with pytest.raises(SyntaxKindError):
            StaticType("t", ("a", "a"))


class TestImpliedHierarchy:
    def test_more_properties_is_more_specific(self):
        """The hierarchy is implicitly determined by the property sets."""
        person = StaticType("person", ("name",))
        employee = StaticType("employee", ("name", "salary"))
        manager = StaticType("manager", ("name", "salary", "reports"))
        hierarchy = implied_hierarchy([person, employee, manager])
        assert hierarchy.is_subtype("employee", "person")
        assert hierarchy.is_subtype("manager", "employee")
        assert hierarchy.is_subtype("manager", "person")
        assert not hierarchy.is_subtype("person", "employee")

    def test_incomparable_property_sets(self):
        a = StaticType("a", ("x",))
        b = StaticType("b", ("y",))
        hierarchy = implied_hierarchy([a, b])
        assert not hierarchy.comparable("a", "b")

    def test_equal_property_sets_no_edge(self):
        a = StaticType("a", ("x",))
        b = StaticType("b", ("x",))
        hierarchy = implied_hierarchy([a, b])
        assert not hierarchy.is_subtype("a", "b")
        assert not hierarchy.is_subtype("b", "a")

    def test_hierarchy_consistent_with_derived_membership(self):
        """If T1 <= T2 in the implied hierarchy, every derived T1 member
        is also a derived T2 member."""
        person = StaticType("person", ("name",))
        employee = StaticType("employee", ("name", "salary"))
        program = parse_program(
            """
            john[name => j, salary => 100].
            sue[name => s].
            """
        ).program
        program = program.extended(
            membership_rule(person), membership_rule(employee)
        )
        engine = DirectEngine(program)
        people = {a["X"] for a in engine.solve(parse_query(":- person: X."))}
        employees = {a["X"] for a in engine.solve(parse_query(":- employee: X."))}
        assert employees <= people
        assert people == {Const("john"), Const("sue")}
        assert employees == {Const("john")}
