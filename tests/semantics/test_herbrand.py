"""Herbrand machinery unit tests."""

from repro.fol.atoms import FAtom
from repro.fol.terms import FApp, FConst
from repro.semantics.herbrand import herbrand_base, herbrand_universe, structure_from_atoms
from repro.semantics.satisfaction import satisfies_fatom


class TestUniverse:
    def test_depth_one_is_constants(self):
        universe = herbrand_universe(["a", "b"], [("f", 1)], depth=1)
        assert universe == [FConst("a"), FConst("b")]

    def test_depth_two_closes_once(self):
        universe = herbrand_universe(["a"], [("f", 1)], depth=2)
        assert FApp("f", (FConst("a"),)) in universe
        assert FApp("f", (FApp("f", (FConst("a"),)),)) not in universe

    def test_depth_three(self):
        universe = herbrand_universe(["a"], [("f", 1)], depth=3)
        assert FApp("f", (FApp("f", (FConst("a"),)),)) in universe

    def test_binary_functor_growth(self):
        universe = herbrand_universe(["a", "b"], [("g", 2)], depth=2)
        # 2 constants + 4 pairs
        assert len(universe) == 6

    def test_no_functors_stops(self):
        universe = herbrand_universe(["a"], [], depth=10)
        assert universe == [FConst("a")]

    def test_deterministic(self):
        one = herbrand_universe(["b", "a"], [("f", 1)], depth=2)
        two = herbrand_universe(["a", "b"], [("f", 1)], depth=2)
        assert one == two


class TestBase:
    def test_base_enumerates_atoms(self):
        universe = herbrand_universe(["a", "b"], [], depth=1)
        base = list(herbrand_base(universe, [("p", 1), ("src", 2)]))
        assert FAtom("p", (FConst("a"),)) in base
        assert FAtom("src", (FConst("a"), FConst("b"))) in base
        assert len(base) == 2 + 4


class TestStructureFromAtoms:
    def test_atoms_hold(self):
        atoms = [
            FAtom("node", (FConst("a"),)),
            FAtom("src", (FConst("p"), FConst("a"))),
            FAtom("edge", (FConst("a"), FConst("b"))),
        ]
        structure = structure_from_atoms(atoms, type_symbols={"node"}, labels={"src"})
        for atom in atoms:
            assert satisfies_fatom(atom, structure, {})

    def test_absent_atoms_fail(self):
        atoms = [FAtom("node", (FConst("a"),))]
        structure = structure_from_atoms(
            atoms, type_symbols={"node"}, labels=set(), extra_domain=[FConst("b")]
        )
        assert not satisfies_fatom(FAtom("node", (FConst("b"),)), structure, {})

    def test_function_terms_enter_domain(self):
        atoms = [FAtom("path", (FApp("id", (FConst("a"), FConst("b"))),))]
        structure = structure_from_atoms(atoms, type_symbols={"path"}, labels=set())
        assert FConst("a") in structure.domain
        assert FApp("id", (FConst("a"), FConst("b"))) in structure.domain
        # Free interpretation: id(a, b) denotes itself.
        assert structure.apply_function(
            "id", (FConst("a"), FConst("b"))
        ) == FApp("id", (FConst("a"), FConst("b")))

    def test_empty_atom_set_has_nonempty_domain(self):
        structure = structure_from_atoms([], set(), set())
        assert len(structure.domain) == 1
