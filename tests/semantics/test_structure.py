"""Semantic-structure unit tests (Section 3.2)."""

import pytest

from repro.core.errors import SemanticsError
from repro.core.terms import OBJECT
from repro.core.types import TypeHierarchy


from repro.semantics.structure import Structure


def small_structure() -> Structure:
    return Structure(
        domain=frozenset({0, 1, 2}),
        constants={"a": 0, "b": 1},
        functions={("f", 1): {(0,): 1, (1,): 2, (2,): 0}},
        predicates={("p", 1): {(0,)}},
        labels={"src": {(0, 1)}},
        types={"node": {0, 1}},
    )


class TestConstruction:
    def test_empty_domain_rejected(self):
        with pytest.raises(SemanticsError):
            Structure(frozenset())

    def test_object_defaults_to_domain(self):
        s = Structure(frozenset({1, 2}))
        assert s.in_type(OBJECT, 1) and s.in_type(OBJECT, 2)

    def test_validate_accepts_wellformed(self):
        small_structure().validate()

    def test_validate_rejects_partial_function(self):
        s = Structure(
            frozenset({0, 1}), functions={("f", 1): {(0,): 1}}  # missing (1,)
        )
        with pytest.raises(SemanticsError):
            s.validate()

    def test_validate_rejects_out_of_domain_constant(self):
        s = Structure(frozenset({0}), constants={"a": 7})
        with pytest.raises(SemanticsError):
            s.validate()

    def test_validate_rejects_bad_label_pair(self):
        s = Structure(frozenset({0}), labels={"l": {(0, 9)}})
        with pytest.raises(SemanticsError):
            s.validate()


class TestLookups:
    def test_constant(self):
        assert small_structure().constant("a") == 0

    def test_unknown_constant(self):
        with pytest.raises(SemanticsError):
            small_structure().constant("zzz")

    def test_apply_function(self):
        assert small_structure().apply_function("f", (0,)) == 1

    def test_unknown_function(self):
        with pytest.raises(SemanticsError):
            small_structure().apply_function("g", (0,))

    def test_holds(self):
        s = small_structure()
        assert s.holds_predicate("p", (0,))
        assert not s.holds_predicate("p", (1,))
        assert s.holds_label("src", 0, 1)
        assert s.in_type("node", 0)
        assert not s.in_type("node", 2)
        assert not s.in_type("ghost_type", 0)


class TestHierarchy:
    def test_respects_hierarchy(self):
        h = TypeHierarchy()
        h.declare("student", "person")
        good = Structure(
            frozenset({0, 1}), types={"student": {0}, "person": {0, 1}}
        )
        bad = Structure(frozenset({0, 1}), types={"student": {0}, "person": {1}})
        assert good.respects_hierarchy(h)
        assert not bad.respects_hierarchy(h)

    def test_enforce_hierarchy_closes_upward(self):
        h = TypeHierarchy()
        h.declare("student", "person")
        s = Structure(frozenset({0, 1}), types={"student": {0}})
        closed = s.enforce_hierarchy(h)
        assert closed.in_type("person", 0)
        assert closed.respects_hierarchy(h)

    def test_object_always_respected(self):
        h = TypeHierarchy()
        h.add_symbol("t")
        s = Structure(frozenset({0}), types={"t": {0}})
        assert s.respects_hierarchy(h)


def test_assignments_enumeration():
    s = Structure(frozenset({0, 1}))
    assignments = list(s.assignments({"X", "Y"}))
    assert len(assignments) == 4
    assert {"X": 0, "Y": 1} in assignments
