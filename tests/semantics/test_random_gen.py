"""The seeded random generator itself is load-bearing (E10 rests on it):
check that it produces well-formed structures and in-signature syntax."""

import random

import pytest

from repro.core.formulas import PredAtom, TermAtom
from repro.core.terms import labels_of, types_of, variables_of
from repro.semantics.random_gen import (
    Signature,
    random_assignment,
    random_atom,
    random_structure,
    random_term,
)


@pytest.fixture(scope="module")
def signature():
    return Signature()


class TestRandomStructure:
    def test_wellformed(self, signature):
        rng = random.Random(3)
        for __ in range(10):
            structure = random_structure(rng, signature)
            structure.validate()

    def test_respects_hierarchy(self, signature):
        rng = random.Random(4)
        hierarchy = signature.hierarchy()
        for __ in range(10):
            structure = random_structure(rng, signature)
            assert structure.respects_hierarchy(hierarchy)

    def test_deterministic_under_seed(self, signature):
        one = random_structure(random.Random(11), signature)
        two = random_structure(random.Random(11), signature)
        assert one.constants == two.constants
        assert one.labels == two.labels
        assert one.types == two.types

    def test_domain_size(self, signature):
        structure = random_structure(random.Random(1), signature, domain_size=6)
        assert len(structure.domain) == 6


class TestRandomSyntax:
    def test_terms_stay_in_signature(self, signature):
        rng = random.Random(5)
        for __ in range(50):
            term = random_term(rng, signature)
            assert types_of(term) <= set(signature.types)
            assert labels_of(term) <= set(signature.labels)
            assert variables_of(term) <= set(signature.variables)

    def test_atoms_are_atoms(self, signature):
        rng = random.Random(6)
        kinds = set()
        for __ in range(60):
            atom = random_atom(rng, signature)
            assert isinstance(atom, (TermAtom, PredAtom))
            kinds.add(type(atom).__name__)
        assert kinds == {"TermAtom", "PredAtom"}  # both shapes exercised

    def test_assignment_covers_requested_variables(self, signature):
        rng = random.Random(7)
        structure = random_structure(rng, signature)
        assignment = random_assignment(rng, structure, {"X", "Y"})
        assert set(assignment) == {"X", "Y"}
        assert all(value in structure.domain for value in assignment.values())
