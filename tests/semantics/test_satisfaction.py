"""Satisfaction-relation unit tests (the defining clauses of Section 3.2)."""

import pytest

from repro.core.errors import SemanticsError
from repro.core.formulas import And, Exists, ForAll, Implies, Not, Or, PredAtom, TermAtom
from repro.core.terms import Collection, Const, Func, LabelSpec, LTerm, Var
from repro.lang.parser import parse_term
from repro.semantics.satisfaction import (
    denote_fterm,
    denote_term,
    satisfies,
    satisfies_atom,
    satisfies_fatom,
    satisfies_term,
)
from repro.semantics.structure import Structure
from repro.fol.atoms import FAtom
from repro.fol.terms import FConst, FVar


@pytest.fixture
def structure():
    return Structure(
        domain=frozenset({0, 1, 2}),
        constants={"a": 0, "b": 1, "c": 2},
        functions={("f", 1): {(0,): 1, (1,): 2, (2,): 0}},
        predicates={("edge", 2): {(0, 1)}},
        labels={"src": {(0, 1), (0, 2)}, "dest": {(1, 2)}},
        types={"node": {0, 1}, "path": {0}},
    )


class TestDenotation:
    def test_variable(self, structure):
        assert denote_term(Var("X"), structure, {"X": 2}) == 2

    def test_unassigned_variable(self, structure):
        with pytest.raises(SemanticsError):
            denote_term(Var("X"), structure, {})

    def test_constant(self, structure):
        assert denote_term(Const("b"), structure, {}) == 1

    def test_function(self, structure):
        assert denote_term(Func("f", (Const("a"),)), structure, {}) == 1

    def test_labels_do_not_affect_denotation(self, structure):
        """s_M(t[l1 => e1, ...]) = s_M(t)."""
        labelled = parse_term("node: a[src => b]")
        assert denote_term(labelled, structure, {}) == denote_term(
            Const("a"), structure, {}
        )

    def test_fol_denotation_agrees(self, structure):
        assert denote_fterm(FConst("a"), structure, {}) == 0
        assert denote_fterm(FVar("X"), structure, {"X": 1}) == 1


class TestTermSatisfaction:
    def test_typed_variable(self, structure):
        assert satisfies_term(Var("X", "node"), structure, {"X": 0})
        assert not satisfies_term(Var("X", "node"), structure, {"X": 2})

    def test_typed_constant(self, structure):
        assert satisfies_term(Const("a", "path"), structure, {})
        assert not satisfies_term(Const("c", "path"), structure, {})

    def test_object_type_is_domain(self, structure):
        assert satisfies_term(Var("X"), structure, {"X": 2})

    def test_function_term_checks_type_and_args(self, structure):
        # f(a) = 1, which is a node; argument a must satisfy its own type.
        assert satisfies_term(Func("f", (Const("a"),), "node"), structure, {})
        # f(b) = 2, not a node.
        assert not satisfies_term(Func("f", (Const("b"),), "node"), structure, {})
        # argument fails its own annotation: c is not a node.
        assert not satisfies_term(
            Func("f", (Const("c", "node"),), "node"), structure, {}
        )

    def test_labelled_term(self, structure):
        assert satisfies_term(parse_term("path: a[src => b]"), structure, {})
        assert not satisfies_term(parse_term("path: a[dest => b]"), structure, {})

    def test_multi_valued_label(self, structure):
        assert satisfies_term(parse_term("path: a[src => {b, c}]"), structure, {})

    def test_collection_needs_every_member(self, structure):
        # (a, 0) is not in src.
        assert not satisfies_term(parse_term("path: a[src => {b, a}]"), structure, {})

    def test_label_value_must_satisfy_own_assertion(self, structure):
        # b denotes 1 which IS a node; c denotes 2 which is NOT.
        assert satisfies_term(parse_term("path: a[src => node: b]"), structure, {})
        assert not satisfies_term(parse_term("path: a[src => node: c]"), structure, {})


class TestAtomSatisfaction:
    def test_predicate_atom(self, structure):
        assert satisfies_atom(
            PredAtom("edge", (Const("a"), Const("b"))), structure, {}
        )
        assert not satisfies_atom(
            PredAtom("edge", (Const("b"), Const("a"))), structure, {}
        )

    def test_predicate_args_must_satisfy_types(self, structure):
        # edge(a, b) holds, but path: b fails (1 not in path).
        assert not satisfies_atom(
            PredAtom("edge", (Const("a"), Const("b", "path"))), structure, {}
        )

    def test_fol_atom_dispatch(self, structure):
        assert satisfies_fatom(FAtom("node", (FConst("a"),)), structure, {})
        assert satisfies_fatom(FAtom("src", (FConst("a"), FConst("b"))), structure, {})
        assert satisfies_fatom(FAtom("edge", (FConst("a"), FConst("b"))), structure, {})
        assert not satisfies_fatom(FAtom("ghost", (FConst("a"),)), structure, {})


class TestFormulaSatisfaction:
    def test_connectives(self, structure):
        a = TermAtom(Const("a", "node"))
        c = TermAtom(Const("c", "node"))
        assert satisfies(And(a, Not(c)), structure, {})
        assert satisfies(Or(c, a), structure, {})
        assert satisfies(Implies(c, a), structure, {})
        assert not satisfies(And(a, c), structure, {})

    def test_exists(self, structure):
        formula = Exists("X", TermAtom(Var("X", "path")))
        assert satisfies(formula, structure, {})

    def test_forall(self, structure):
        everything_object = ForAll("X", TermAtom(Var("X")))
        assert satisfies(everything_object, structure, {})
        everything_node = ForAll("X", TermAtom(Var("X", "node")))
        assert not satisfies(everything_node, structure, {})

    def test_quantifier_shadows_assignment(self, structure):
        formula = Exists("X", TermAtom(Var("X", "path")))
        assert satisfies(formula, structure, {"X": 2})
