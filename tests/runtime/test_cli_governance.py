"""The CLI side of resource governance: --deadline/--budget flags,
partial-result output, strict-mode exit codes, and the per-family
error exit codes at the command boundary."""

import io

import pytest

from repro.cli import (
    EXIT_ENGINE,
    EXIT_RESOURCE,
    EXIT_SEMANTIC,
    EXIT_STORE,
    EXIT_SYNTAX,
    cmd_query,
    cmd_update,
    error_exit_code,
    main,
)
from repro.core.errors import (
    BudgetExceeded,
    CLogicError,
    ConsistencyError,
    DeadlineExceeded,
    EngineError,
    LexError,
    ParseError,
    SafetyError,
    SemanticsError,
    StoreError,
    TransformError,
    TypeOrderError,
    UnsupportedFeatureError,
)

NAT_SOURCE = """
nat: zero.
nat: s(X) :- nat: X.
:- nat: s(zero).
"""

TC_SOURCE = """
edge(a, b).  edge(b, c).
tc(X, Y) :- edge(X, Y).
tc(X, Y) :- edge(X, Z), tc(Z, Y).
:- tc(a, X).
"""


@pytest.fixture
def nat_file(tmp_path):
    path = tmp_path / "nat.cl"
    path.write_text(NAT_SOURCE)
    return str(path)


@pytest.fixture
def tc_file(tmp_path):
    path = tmp_path / "tc.cl"
    path.write_text(TC_SOURCE)
    return str(path)


class TestExitCodeFamilies:
    def test_family_mapping(self):
        cases = [
            (LexError("bad char", 1, 1), EXIT_SYNTAX),
            (ParseError("bad token"), EXIT_SYNTAX),
            (TypeOrderError("cycle"), EXIT_SEMANTIC),
            (SemanticsError("bad structure"), EXIT_SEMANTIC),
            (TransformError("bad clause"), EXIT_SEMANTIC),
            (ConsistencyError("label clash"), EXIT_SEMANTIC),
            (UnsupportedFeatureError("sets"), EXIT_SEMANTIC),
            (EngineError("broken"), EXIT_ENGINE),
            (SafetyError("unsafe"), EXIT_ENGINE),
            (DeadlineExceeded("late"), EXIT_RESOURCE),
            (BudgetExceeded("spent"), EXIT_RESOURCE),
            (StoreError("non-ground"), EXIT_STORE),
            (CLogicError("other"), 1),
        ]
        for error, expected in cases:
            assert error_exit_code(error) == expected, type(error).__name__

    def test_resource_beats_engine(self):
        # ResourceExhausted IS an EngineError; the more specific family
        # must win.
        assert error_exit_code(BudgetExceeded("x")) == EXIT_RESOURCE

    def test_main_boundary_reports_family_code(self, tmp_path, capsys):
        bad = tmp_path / "bad.cl"
        bad.write_text("p(a \x01 b).\n")
        code = main(["query", str(bad), "--query", "p(X)"])
        assert code == EXIT_SYNTAX
        err = capsys.readouterr().err
        assert err.startswith("error [LexError]:")
        assert err.count("\n") == 1  # one diagnostic line, no traceback


class TestGovernedQueryCommand:
    def test_deadline_prints_incomplete_marker(self, nat_file):
        out = io.StringIO()
        code = cmd_query(
            [nat_file, "--engine", "seminaive", "--deadline", "0.2"], out=out
        )
        assert code == 0  # degraded, not failed
        text = out.getvalue()
        assert "INCOMPLETE — deadline limit" in text

    def test_budget_with_explain_renders_governance_section(self, nat_file):
        out = io.StringIO()
        code = cmd_query(
            [
                nat_file,
                "--engine",
                "seminaive",
                "--budget",
                "40",
                "--explain",
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "INCOMPLETE — budget limit" in text
        assert "governance" in text
        assert "INTERRUPTED by budget limit" in text

    def test_strict_limits_exit_resource(self, nat_file, capsys):
        code = cmd_query(
            [
                nat_file,
                "--engine",
                "seminaive",
                "--budget",
                "40",
                "--strict-limits",
            ],
            out=io.StringIO(),
        )
        assert code == EXIT_RESOURCE
        assert "error [BudgetExceeded]:" in capsys.readouterr().err

    def test_generous_limits_complete_normally(self, tc_file):
        out = io.StringIO()
        code = cmd_query([tc_file, "--deadline", "60"], out=out)
        assert code == 0
        text = out.getvalue()
        assert "(2 answer(s))" in text
        assert "INCOMPLETE" not in text


class TestGovernedUpdateCommand:
    def test_budget_trip_reports_rollback(self, nat_file, capsys):
        out = io.StringIO()
        code = cmd_update(
            [nat_file, "--insert", "nat: one", "--budget", "60"], out=out
        )
        assert code == EXIT_RESOURCE
        text = out.getvalue()
        assert "NOT committed" in text
        assert "rolled back" in text

    def test_generous_budget_commits(self, tc_file):
        out = io.StringIO()
        code = cmd_update(
            [tc_file, "--insert", "edge(c, d)", "--budget", "1000000"], out=out
        )
        assert code == 0
        assert "committed (version" in out.getvalue()
