"""Every engine honors the same governor: deadline/budget/cap trips
degrade to sound partial results, strict mode raises, transactions
roll back — and a non-terminating program comes back within twice the
configured deadline on all five engines."""

import time

import pytest

from repro.core.errors import ResourceExhausted
from repro.engine.negation import stratified_fixpoint
from repro.interface.kb import ENGINES, KnowledgeBase, QueryResult
from repro.lang.parser import parse_program
from repro.runtime import Governor, PartialResult
from repro.transform.clauses import program_to_fol

# Bottom-up divergent: the least model is all of s^n(zero).
NAT_SOURCE = """
nat: zero.
nat: s(X) :- nat: X.
"""

# Terminating workload for complete-run and soundness checks.
TC_SOURCE = """
edge(a, b).  edge(b, c).  edge(c, d).
tc(X, Y) :- edge(X, Y).
tc(X, Y) :- edge(X, Z), tc(Z, Y).
"""

# The fixpoint engines (direct, bottomup, seminaive) saturate the model
# regardless of the query, so a ground query interrupts mid-saturation
# with cheap answer extraction.  The goal-directed engines (sld, tabled)
# answer a ground query in a handful of steps, so they get the variable
# query, which has infinitely many answers.
DIVERGENT_QUERY = {
    "direct": "nat: s(zero)",
    "bottomup": "nat: s(zero)",
    "seminaive": "nat: s(zero)",
    "sld": "nat: X",
    "tabled": "nat: X",
}


def nat_kb():
    kb = KnowledgeBase.from_source(NAT_SOURCE)
    kb.sld_depth = 10**9  # don't let SLD's own depth ceiling terminate it
    return kb


class TestCompleteRuns:
    def test_generous_limits_leave_answers_untouched(self):
        # Plain SLD explodes on the recursive translation (the §4
        # point), so it gets a flat program; the rest run the recursive
        # one.
        flat = KnowledgeBase.from_source("p(a). p(b). q(X) :- p(X).")
        flat.sld_depth = 12
        kb = KnowledgeBase.from_source(TC_SOURCE)
        for engine in ENGINES:
            base = flat if engine == "sld" else kb
            query = "q(X)" if engine == "sld" else "tc(a, X)"
            expected = base.ask(query, engine=engine)
            result = base.query(
                query, engine=engine, deadline=60.0, budget=10**9
            )
            assert isinstance(result, QueryResult)
            assert result.complete, engine
            assert not result.incomplete
            assert list(result) == expected, engine
            assert result.steps > 0, engine  # the governor really ticked

    def test_unlimited_query_matches_ask(self):
        kb = KnowledgeBase.from_source(TC_SOURCE)
        result = kb.query("tc(a, X)")
        assert result.complete
        assert len(result) == 3
        assert bool(result)
        assert result[0] is result.answers[0]


class TestBudgetTrips:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_small_budget_degrades_to_partial(self, engine):
        result = nat_kb().query(
            DIVERGENT_QUERY[engine], engine=engine, budget=25
        )
        assert result.incomplete, engine
        assert result.limit == "budget", engine
        assert "budget" in result.reason
        assert result.steps >= 25

    @pytest.mark.parametrize("engine", ENGINES)
    def test_strict_mode_raises(self, engine):
        with pytest.raises(ResourceExhausted):
            nat_kb().query(
                DIVERGENT_QUERY[engine], engine=engine, budget=25, strict=True
            )

    def test_partial_answers_are_sound(self):
        # Soundness under interruption: every answer in a partial result
        # is an answer of the full model (some may be missing).
        kb = KnowledgeBase.from_source(TC_SOURCE)
        full = {repr(answer) for answer in kb.ask("tc(X, Y)", engine="seminaive")}
        for budget in (1, 5, 20, 100):
            result = kb.query("tc(X, Y)", engine="seminaive", budget=budget)
            assert {repr(answer) for answer in result} <= full


class TestOtherCaps:
    def test_fact_cap_interrupts_saturation(self):
        result = nat_kb().query("nat: s(zero)", engine="seminaive", max_facts=10)
        assert result.incomplete
        assert result.limit == "facts"

    def test_depth_cap_interrupts_sld(self):
        result = nat_kb().query("nat: X", engine="sld", max_depth=5)
        assert result.incomplete
        assert result.limit == "depth"

    def test_cancellation_via_explicit_governor(self):
        from repro.engine.seminaive import seminaive_fixpoint

        governor = Governor()
        governor.cancel("shutting down")
        clauses = program_to_fol(parse_program(NAT_SOURCE).program)
        outcome = seminaive_fixpoint(clauses, governor=governor)
        assert isinstance(outcome, PartialResult)
        assert outcome.incomplete
        assert outcome.limit == "cancelled"


class TestDeadlineSmoke:
    """The acceptance bound: a 200ms deadline on a non-terminating
    program returns a PartialResult within 2x the deadline."""

    DEADLINE = 0.2

    @pytest.mark.parametrize("engine", ENGINES)
    def test_partial_within_twice_the_deadline(self, engine):
        kb = nat_kb()
        begin = time.monotonic()
        result = kb.query(
            DIVERGENT_QUERY[engine], engine=engine, deadline=self.DEADLINE
        )
        wall = time.monotonic() - begin
        assert result.incomplete, engine
        assert wall < 2 * self.DEADLINE, (engine, wall)
        # The interruption reason lands in the result, never a hang.
        assert result.limit, engine
        assert result.reason, engine


class TestGovernedNegation:
    def test_stratified_fixpoint_degrades(self):
        source = """
        node: a[linkto => b].
        node: b[linkto => c].
        node: c.
        haslink(X) :- node: X[linkto => Y].
        sink(X) :- node: X, \\+ haslink(X).
        """
        clauses = program_to_fol(parse_program(source).program)
        outcome = stratified_fixpoint(clauses, governor=Governor(budget=2))
        assert isinstance(outcome, PartialResult)
        assert outcome.incomplete
        assert outcome.limit == "budget"

    def test_stratified_fixpoint_completes_under_generous_governor(self):
        source = """
        node: a[linkto => b].
        node: b.
        haslink(X) :- node: X[linkto => Y].
        sink(X) :- node: X, \\+ haslink(X).
        """
        clauses = program_to_fol(parse_program(source).program)
        governed = stratified_fixpoint(clauses, governor=Governor(budget=10**6))
        ungoverned = stratified_fixpoint(clauses)
        if isinstance(governed, PartialResult):
            assert governed.complete
            governed = governed.value
        assert governed.snapshot() == ungoverned.snapshot()


class TestCacheIsolation:
    def test_partial_evaluation_never_poisons_the_cache(self):
        kb = KnowledgeBase.from_source(TC_SOURCE)
        partial = kb.query("tc(a, X)", engine="seminaive", budget=1)
        assert partial.incomplete
        assert len(partial) < 3
        # The ungoverned path must still see the full model.
        assert len(kb.ask("tc(a, X)", engine="seminaive")) == 3

    def test_warm_cache_does_not_serve_governed_queries(self):
        kb = KnowledgeBase.from_source(TC_SOURCE)
        assert len(kb.ask("tc(a, X)", engine="seminaive")) == 3  # warm it
        # A fresh governed run with a starvation budget cannot have
        # re-derived the model; if it served the cache it would claim
        # completeness with 3 answers at ~0 steps.
        result = kb.query("tc(a, X)", engine="seminaive", budget=1)
        assert result.incomplete


class TestGovernedTransactions:
    def test_budget_trip_rolls_back_and_reports(self):
        kb = KnowledgeBase.from_source(NAT_SOURCE)
        version = kb.version
        program_size = len(kb.program)
        txn = kb.transaction()
        txn.insert("nat: one.")
        stats = txn.commit(governor=Governor(budget=50))
        assert isinstance(stats, PartialResult)
        assert stats.incomplete
        assert kb.version == version  # nothing committed
        assert len(kb.program) == program_size  # fact buffer discarded

    def test_strict_budget_trip_raises_and_rolls_back(self):
        kb = KnowledgeBase.from_source(NAT_SOURCE)
        version = kb.version
        txn = kb.transaction()
        txn.insert("nat: one.")
        with pytest.raises(ResourceExhausted):
            txn.commit(governor=Governor(budget=50, strict=True))
        assert kb.version == version

    def test_generous_governor_commits_normally(self):
        kb = KnowledgeBase.from_source(TC_SOURCE)
        version = kb.version
        txn = kb.transaction()
        txn.insert("edge(d, e).")
        stats = txn.commit(governor=Governor(budget=10**9, deadline=60.0))
        assert not isinstance(stats, PartialResult)
        assert kb.version == version + 1
        assert len(kb.ask("tc(a, X)", engine="seminaive")) == 4

    def test_update_deadline_smoke(self):
        # The transactional analogue of the 2x-deadline bound.
        kb = KnowledgeBase.from_source(NAT_SOURCE)
        txn = kb.transaction()
        txn.insert("nat: one.")
        begin = time.monotonic()
        stats = txn.commit(governor=Governor(deadline=0.2))
        wall = time.monotonic() - begin
        assert isinstance(stats, PartialResult)
        assert wall < 0.4, wall
        assert kb.version == 0


class TestExplainGovernance:
    def test_interrupted_report_names_the_limit(self):
        from repro.obs import ExplainReport

        kb = nat_kb()
        report = ExplainReport()
        result = kb.query(
            "nat: s(zero)", engine="seminaive", budget=30, report=report
        )
        assert result.incomplete
        assert report.governance is not None
        assert report.governance.interrupted == "budget"
        rendered = report.render()
        assert "governance" in rendered
        assert "INTERRUPTED by budget limit" in rendered

    def test_complete_report_says_within_limits(self):
        from repro.obs import ExplainReport

        kb = KnowledgeBase.from_source(TC_SOURCE)
        report = ExplainReport()
        result = kb.query(
            "tc(a, X)", engine="seminaive", deadline=60.0, report=report
        )
        assert result.complete
        assert "completed within limits" in report.render()
