"""Unit tests for the resource governor: limits, cancellation, the
degrade policy, and partial-result plumbing — all with an injected
clock, so nothing here depends on wall time."""

import pytest

from repro.core.errors import (
    BudgetExceeded,
    DeadlineExceeded,
    DepthExceeded,
    EngineError,
    EvaluationCancelled,
    FactLimitExceeded,
    ResourceExhausted,
)
from repro.runtime.governor import (
    GovernanceSummary,
    Governor,
    PartialResult,
    as_resource_error,
    degrade,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestLimits:
    def test_unlimited_governor_never_trips(self):
        governor = Governor()
        for _ in range(10_000):
            governor.tick()
        governor.check_facts(10**9)
        governor.check_depth(10**9)
        assert governor.interrupted is None

    def test_deadline_trips_after_clock_passes(self):
        clock = FakeClock()
        governor = Governor(deadline=1.0, clock=clock).start()
        governor.tick()
        clock.advance(0.999)
        governor.tick()
        clock.advance(0.002)
        with pytest.raises(DeadlineExceeded):
            governor.tick()
        assert governor.interrupted is not None
        assert governor.interrupted.limit == "deadline"

    def test_first_tick_arms_the_clock_lazily(self):
        clock = FakeClock()
        governor = Governor(deadline=0.5, clock=clock)
        clock.advance(100.0)  # before start: irrelevant
        governor.tick()  # arms here
        clock.advance(0.4)
        governor.tick()
        clock.advance(0.2)
        with pytest.raises(DeadlineExceeded):
            governor.tick()

    def test_start_is_idempotent_first_caller_wins(self):
        clock = FakeClock()
        governor = Governor(deadline=1.0, clock=clock).start()
        clock.advance(0.8)
        governor.start()  # must NOT reset the deadline
        clock.advance(0.3)
        with pytest.raises(DeadlineExceeded):
            governor.tick()

    def test_budget_counts_steps(self):
        governor = Governor(budget=5)
        for _ in range(5):
            governor.tick()
        with pytest.raises(BudgetExceeded):
            governor.tick()

    def test_budget_bulk_steps(self):
        governor = Governor(budget=10)
        with pytest.raises(BudgetExceeded):
            governor.tick(steps=11)
        assert governor.steps == 11

    def test_fact_cap(self):
        governor = Governor(max_facts=100)
        governor.check_facts(100)
        with pytest.raises(FactLimitExceeded):
            governor.check_facts(101)

    def test_depth_cap(self):
        governor = Governor(max_depth=7)
        governor.check_depth(7)
        with pytest.raises(DepthExceeded):
            governor.check_depth(8)

    def test_cancellation_trips_next_tick(self):
        governor = Governor()
        governor.tick()
        governor.cancel("operator said stop")
        assert governor.cancelled
        with pytest.raises(EvaluationCancelled, match="operator said stop"):
            governor.tick()

    def test_violation_carries_elapsed_and_steps(self):
        clock = FakeClock()
        governor = Governor(budget=2, clock=clock).start()
        clock.advance(1.5)
        governor.tick()
        governor.tick()
        with pytest.raises(BudgetExceeded) as info:
            governor.tick()
        assert info.value.steps == 3
        assert info.value.elapsed == pytest.approx(1.5)

    def test_limits_are_sticky(self):
        governor = Governor(budget=1)
        governor.tick()
        with pytest.raises(BudgetExceeded):
            governor.tick()
        # Once tripped, every further tick re-raises: an engine that
        # swallowed the first trip cannot keep burning resources.
        with pytest.raises(BudgetExceeded):
            governor.tick()

    def test_resource_errors_are_engine_errors(self):
        # Backward compatibility: code catching EngineError for the old
        # ad-hoc limit raises still catches every governed limit.
        for exc_type in (
            ResourceExhausted,
            DeadlineExceeded,
            BudgetExceeded,
            DepthExceeded,
            FactLimitExceeded,
            EvaluationCancelled,
        ):
            assert issubclass(exc_type, EngineError)


class TestSummary:
    def test_summary_of_a_clean_run(self):
        clock = FakeClock()
        governor = Governor(deadline=2.0, budget=100, clock=clock).start()
        governor.tick(steps=7)
        clock.advance(0.25)
        summary = governor.summary()
        assert isinstance(summary, GovernanceSummary)
        assert summary.interrupted == ""
        assert summary.steps == 7
        assert summary.elapsed == pytest.approx(0.25)
        assert "deadline: 2.0s" in summary.describe()

    def test_summary_of_an_interrupted_run(self):
        governor = Governor(budget=1)
        governor.tick()
        with pytest.raises(BudgetExceeded):
            governor.tick()
        summary = governor.summary()
        assert summary.interrupted == "budget"
        assert "budget" in summary.reason


class TestDegrade:
    def test_no_governor_reraises(self):
        violation = BudgetExceeded("out of rounds")
        with pytest.raises(BudgetExceeded):
            degrade(None, violation, value=[])

    def test_strict_governor_reraises(self):
        governor = Governor(budget=1, strict=True)
        with pytest.raises(BudgetExceeded):
            degrade(governor, BudgetExceeded("x"), value=[])

    def test_nonstrict_governor_returns_partial(self):
        governor = Governor(budget=1)
        partial = degrade(governor, BudgetExceeded("x"), value=[1, 2])
        assert isinstance(partial, PartialResult)
        assert partial.incomplete
        assert partial.limit == "budget"
        assert partial.value == [1, 2]

    def test_engine_enforced_limit_recorded_on_summary(self):
        # A max_rounds overrun the engine raised itself (not via tick)
        # must still show up as the interruption in the summary.
        governor = Governor(deadline=100.0)
        degrade(governor, BudgetExceeded("no fixpoint within 3 rounds"), value=[])
        assert governor.summary().interrupted == "budget"

    def test_degrade_stamps_report_governance(self):
        class Report:
            governance = None

        report = Report()
        governor = Governor(budget=1)
        partial = degrade(governor, BudgetExceeded("x"), value=[], report=report)
        assert report.governance is not None
        assert report.governance.interrupted == "budget"
        assert partial.report is report

    def test_unwrap_reraises_the_cause(self):
        governor = Governor(budget=1)
        partial = degrade(governor, BudgetExceeded("the cause"), value=[])
        with pytest.raises(BudgetExceeded, match="the cause"):
            partial.unwrap()

    def test_unwrap_of_complete_result_returns_value(self):
        assert PartialResult.done("payload").unwrap() == "payload"

    def test_as_resource_error_passthrough_and_conversion(self):
        original = DeadlineExceeded("late")
        assert as_resource_error(original) is original
        converted = as_resource_error(RecursionError())
        assert isinstance(converted, DepthExceeded)
