"""Crash the commit path on purpose at every registered failure point
and prove the atomicity promise: the store comes back bit-identical to
its pre-transaction snapshot, and the maintained model still matches a
from-scratch recompute."""

import pytest

from repro.core.terms import Const
from repro.db.updates import UpdatableStore
from repro.interface.kb import KnowledgeBase
from repro.lang.parser import parse_atom, parse_term
from repro.runtime.faults import (
    FaultInjector,
    InjectedFault,
    inject_faults,
    known_failure_points,
)

ALL_POINTS = (
    "store.begin_journal",
    "store.commit_journal",
    "store.add_type",
    "store.add_label",
    "store.add_pred",
    "store.assert_clustered",
    "factbase.remove_batch",
    "updates.remove_from_type",
    "updates.remove_label",
    "updates.remove_object",
    "incremental.apply.begin",
    "incremental.apply.propagate",
    "incremental.apply.expand",
    "incremental.apply.finish",
    "kb.commit.begin",
    "kb.commit.rematerialize",
    "kb.commit.apply",
    "kb.commit.swap",
    "kb.commit.version",
)


class TestHarness:
    def test_every_point_is_registered(self):
        assert set(ALL_POINTS) <= set(known_failure_points())

    def test_nested_injection_rejected(self):
        with inject_faults():
            with pytest.raises(RuntimeError, match="already active"):
                with inject_faults():
                    pass

    def test_plan_requires_positive_hit(self):
        with pytest.raises(ValueError):
            FaultInjector({"store.add_type": 0})

    def test_empty_plan_counts_without_perturbing(self):
        db = UpdatableStore()
        with inject_faults() as counter:
            db.insert(parse_term("person: ann"))
        assert counter.count("store.add_type") >= 1
        assert counter.fired is None
        assert db.store.has_type(Const("ann"), "person")

    def test_injected_fault_is_not_a_clogic_error(self):
        # Library error handling must never be able to swallow a crash.
        from repro.core.errors import CLogicError

        assert not issubclass(InjectedFault, CLogicError)
        assert issubclass(InjectedFault, RuntimeError)

    def test_fault_fires_at_the_requested_hit(self):
        db = UpdatableStore()
        with inject_faults({"store.add_type": 2}) as injector:
            db.insert(parse_term("person: ann"))  # hit 1 — survives
            with pytest.raises(InjectedFault) as info:
                db.insert(parse_term("person: bob"))  # hit 2 — crash
        assert info.value.point == "store.add_type"
        assert info.value.hit == 2
        assert injector.fired is info.value


# ----------------------------------------------------------------------
# Store layer: every mutator crash under the undo journal rolls back to
# a bit-identical snapshot.
# ----------------------------------------------------------------------


def fresh_store() -> UpdatableStore:
    db = UpdatableStore()
    db.insert(parse_term("person: john[children => {bob, bill}]"))
    db.insert(parse_term("person: mary[spouse => john]"))
    db.store.assert_atom(parse_atom("edge(a, b)"))
    return db


def store_scenario(db: UpdatableStore) -> None:
    """One transaction touching every store-layer mutator family."""
    with db.transaction():
        db.insert(parse_term("person: ann[children => {joe}]"))
        db.store.assert_atom(parse_atom("edge(b, c)"))
        db.remove_label(Const("john"), "children", Const("bob"))
        db.remove_from_type(Const("mary"), "person")
        db.remove_object(Const("john"))


STORE_POINTS = (
    "store.begin_journal",
    "store.commit_journal",
    "store.add_type",
    "store.add_label",
    "store.add_pred",
    "store.assert_clustered",
    "updates.remove_from_type",
    "updates.remove_label",
    "updates.remove_object",
)


class TestStoreRollback:
    def test_scenario_reaches_every_store_point(self):
        db = fresh_store()  # setup outside: count the scenario alone
        with inject_faults() as counter:
            store_scenario(db)
        for point in STORE_POINTS:
            assert counter.count(point) >= 1, point

    @pytest.mark.parametrize("point", STORE_POINTS)
    def test_first_hit_crash_rolls_back_bit_identical(self, point):
        db = fresh_store()
        before = db.store.snapshot_state()
        with inject_faults({point: 1}):
            with pytest.raises(InjectedFault):
                store_scenario(db)
        assert db.store.snapshot_state() == before
        assert db.store._journal is None  # the journal was closed

    def test_every_hit_of_every_point_rolls_back(self):
        # Exhaustive: crash at hit 1, 2, ..., n of each point the
        # scenario reaches — deterministic, so n is stable.  Build the
        # store outside the injector so counts cover the scenario alone,
        # matching what each trial below replays.
        db = fresh_store()
        with inject_faults() as counter:
            store_scenario(db)
        schedule = [
            (point, hit)
            for point in STORE_POINTS
            for hit in range(1, counter.count(point) + 1)
        ]
        assert schedule
        for point, hit in schedule:
            db = fresh_store()
            before = db.store.snapshot_state()
            with inject_faults({point: hit}):
                with pytest.raises(InjectedFault):
                    store_scenario(db)
            assert db.store.snapshot_state() == before, (point, hit)

    def test_late_hit_after_scenario_commits_cleanly(self):
        # A plan targeting a hit the scenario never reaches must not
        # perturb it at all.
        db = fresh_store()
        with inject_faults({"store.add_type": 999}):
            store_scenario(db)
        assert not db.store.has_type(Const("john"), "person")
        assert db.store.has_type(Const("ann"), "person")

    def test_commit_journal_crash_restores_pre_transaction_state(self):
        # The hardened StoreTransaction.commit: a crash inside the
        # commit itself (after all mutations succeeded) still rolls
        # back, because the journal is only discarded on success.
        db = fresh_store()
        before = db.store.snapshot_state()
        with inject_faults({"store.commit_journal": 1}):
            with pytest.raises(InjectedFault):
                with db.transaction():
                    db.insert(parse_term("person: ann"))
        assert db.store.snapshot_state() == before


# ----------------------------------------------------------------------
# KB layer: a crash anywhere inside Transaction.commit leaves the
# knowledge base (program, version, caches, maintained model) exactly
# as it was, and later queries agree with a from-scratch recompute.
# ----------------------------------------------------------------------

KB_SOURCE = """
edge(a, b).  edge(b, c).  edge(c, d).
tc(X, Y) :- edge(X, Y).
tc(X, Y) :- edge(X, Z), tc(Z, Y).
"""

KB_POINTS = (
    "kb.commit.begin",
    "kb.commit.apply",
    "kb.commit.swap",
    "kb.commit.version",
    "incremental.apply.begin",
    "incremental.apply.propagate",
    "incremental.apply.expand",
    "incremental.apply.finish",
    "factbase.remove_batch",
)


def kb_state(kb: KnowledgeBase):
    return (
        kb.version,
        sorted(repr(clause) for clause in kb.program.clauses),
        sorted(repr(answer) for answer in kb.ask("tc(X, Y)", engine="seminaive")),
    )


def kb_commit_scenario(kb: KnowledgeBase) -> None:
    txn = kb.transaction()
    txn.insert("edge(d, e).")
    txn.retract("edge(a, b).")
    txn.commit()


class TestKBRollback:
    def test_scenario_reaches_every_kb_point(self):
        kb = KnowledgeBase.from_source(KB_SOURCE)
        with inject_faults() as counter:
            kb_commit_scenario(kb)
        for point in KB_POINTS:
            assert counter.count(point) >= 1, point

    @pytest.mark.parametrize("point", KB_POINTS)
    def test_first_hit_crash_rolls_back(self, point):
        kb = KnowledgeBase.from_source(KB_SOURCE)
        before = kb_state(kb)
        with inject_faults({point: 1}):
            with pytest.raises(InjectedFault):
                kb_commit_scenario(kb)
        assert kb_state(kb) == before, point
        # Maintained model still agrees with a from-scratch recompute.
        recomputed = KnowledgeBase(kb.program)
        assert kb.ask("tc(X, Y)") == recomputed.ask("tc(X, Y)")
        # And the KB is not wedged: the same update applies cleanly now.
        kb_commit_scenario(kb)
        assert kb.version == 1
        assert kb.ask("tc(X, Y)") == KnowledgeBase(kb.program).ask("tc(X, Y)")

    def test_every_hit_of_every_point_rolls_back(self):
        discovery = KnowledgeBase.from_source(KB_SOURCE)
        with inject_faults() as counter:
            kb_commit_scenario(discovery)
        schedule = [
            (point, hit)
            for point in KB_POINTS
            for hit in range(1, counter.count(point) + 1)
        ]
        assert schedule
        for point, hit in schedule:
            kb = KnowledgeBase.from_source(KB_SOURCE)
            before = kb_state(kb)
            with inject_faults({point: hit}):
                with pytest.raises(InjectedFault):
                    kb_commit_scenario(kb)
            assert kb_state(kb) == before, (point, hit)

    def test_rematerialize_crash_rolls_back(self):
        # Inserting a fact of a brand-new type symbol forces the
        # re-materialize path instead of incremental apply.
        kb = KnowledgeBase.from_source(KB_SOURCE)
        before = kb_state(kb)
        with inject_faults({"kb.commit.rematerialize": 1}) as counter:
            with pytest.raises(InjectedFault):
                txn = kb.transaction()
                txn.insert("widget: w1.")
                txn.commit()
        assert counter.count("kb.commit.rematerialize") == 1
        assert kb_state(kb) == before

    def test_context_manager_commit_rolls_back_too(self):
        kb = KnowledgeBase.from_source(KB_SOURCE)
        before = kb_state(kb)
        with inject_faults({"kb.commit.swap": 1}):
            with pytest.raises(InjectedFault):
                with kb.transaction() as txn:
                    txn.insert("edge(d, e).")
        assert kb_state(kb) == before
