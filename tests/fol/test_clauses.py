"""FOL atom / clause unit tests, including generalized-clause splitting."""

import pytest

from repro.core.errors import SyntaxKindError
from repro.fol.atoms import (
    FAtom,
    FBuiltin,
    FOLProgram,
    GeneralizedClause,
    HornClause,
    atom_is_ground,
    atom_variables,
    rename_clause,
    rename_generalized,
    substitute_fatom,
)
from repro.fol.pretty import pretty_fatom, pretty_generalized, pretty_horn
from repro.fol.terms import FApp, FConst, FVar


def atom(pred, *args):
    return FAtom(pred, tuple(args))


class TestAtoms:
    def test_signature(self):
        assert atom("src", FVar("X"), FConst("a")).signature == ("src", 2)

    def test_zero_arity_rejected(self):
        with pytest.raises(SyntaxKindError):
            FAtom("p", ())

    def test_variables_and_groundness(self):
        a = atom("p", FVar("X"), FConst("a"))
        assert atom_variables(a) == {"X"}
        assert not atom_is_ground(a)
        assert atom_is_ground(atom("p", FConst("a")))

    def test_substitute(self):
        a = atom("p", FVar("X"))
        assert substitute_fatom(a, {"X": FConst("a")}) == atom("p", FConst("a"))

    def test_builtin_arity(self):
        with pytest.raises(SyntaxKindError):
            FBuiltin("is", (FVar("X"),))


class TestClauses:
    def test_horn_fact(self):
        clause = HornClause(atom("name", FConst("john")))
        assert clause.is_fact

    def test_generalized_requires_heads(self):
        with pytest.raises(SyntaxKindError):
            GeneralizedClause((), (atom("p", FVar("X")),))

    def test_split_shares_body(self):
        gen = GeneralizedClause(
            (atom("a", FVar("X")), atom("b", FVar("X"))),
            (atom("c", FVar("X")),),
        )
        horns = gen.split()
        assert len(horns) == 2
        assert all(h.body == gen.body for h in horns)
        assert [h.head.pred for h in horns] == ["a", "b"]

    def test_split_of_fact(self):
        gen = GeneralizedClause((atom("a", FConst("x")), atom("b", FConst("x"))))
        assert all(h.is_fact for h in gen.split())

    def test_variables(self):
        gen = GeneralizedClause((atom("a", FVar("X")),), (atom("b", FVar("Y")),))
        assert gen.variables() == {"X", "Y"}

    def test_rename_clause_standardizes_apart(self):
        clause = HornClause(atom("p", FVar("X")), (atom("q", FVar("X")),))
        renamed = rename_clause(clause, "_7")
        assert renamed.head.args[0] == FVar("X_7")
        assert renamed.body[0].args[0] == FVar("X_7")

    def test_rename_generalized(self):
        gen = GeneralizedClause((atom("a", FVar("X")),), (atom("b", FVar("X")),))
        renamed = rename_generalized(gen, "_z")
        assert renamed.heads[0].args[0] == FVar("X_z")


class TestProgram:
    def test_partitions(self):
        program = FOLProgram(
            (
                HornClause(atom("p", FConst("a"))),
                HornClause(atom("q", FVar("X")), (atom("p", FVar("X")),)),
            )
        )
        assert len(list(program.facts())) == 1
        assert len(list(program.rules())) == 1
        assert program.predicates() == {("p", 1), ("q", 1)}


class TestPretty:
    def test_atom(self):
        assert pretty_fatom(atom("num", FConst("the"), FConst("plural"))) == (
            "num(the, plural)"
        )

    def test_builtin(self):
        b = FBuiltin("is", (FVar("L"), FApp("+", (FVar("L0"), FConst(1)))))
        assert pretty_fatom(b) == "L is (L0 + 1)"

    def test_horn(self):
        clause = HornClause(atom("object", FVar("X")), (atom("path", FVar("X")),))
        assert pretty_horn(clause) == "object(X) :- path(X)."

    def test_generalized(self):
        gen = GeneralizedClause(
            (atom("a", FVar("X")), atom("b", FVar("X"))), (atom("c", FVar("X")),)
        )
        assert pretty_generalized(gen) == "a(X), b(X) :- c(X)."

    def test_quoted_constant(self):
        assert pretty_fatom(atom("name", FConst("John Smith"))) == 'name("John Smith")'
