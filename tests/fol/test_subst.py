"""Substitution algebra unit tests."""

import pytest

from repro.core.errors import SyntaxKindError
from repro.fol.subst import Substitution
from repro.fol.terms import FApp, FConst, FVar


class TestBasics:
    def test_empty(self):
        empty = Substitution.empty()
        assert len(empty) == 0
        assert empty.apply(FVar("X")) == FVar("X")

    def test_identity_bindings_dropped(self):
        subst = Substitution({"X": FVar("X"), "Y": FConst("a")})
        assert set(subst) == {"Y"}

    def test_apply(self):
        subst = Substitution({"X": FConst("a")})
        assert subst.apply(FApp("f", (FVar("X"), FVar("Y")))) == FApp(
            "f", (FConst("a"), FVar("Y"))
        )

    def test_mapping_protocol(self):
        subst = Substitution({"X": FConst("a")})
        assert subst["X"] == FConst("a")
        assert "X" in subst
        assert dict(subst) == {"X": FConst("a")}

    def test_equality_and_hash(self):
        assert Substitution({"X": FConst("a")}) == Substitution({"X": FConst("a")})
        assert hash(Substitution()) == hash(Substitution.empty())


class TestCompose:
    def test_composition_order(self):
        first = Substitution({"X": FVar("Y")})
        second = Substitution({"Y": FConst("a")})
        composed = first.compose(second)
        term = FApp("f", (FVar("X"), FVar("Y")))
        assert composed.apply(term) == second.apply(first.apply(term))

    def test_second_bindings_added(self):
        first = Substitution({"X": FConst("a")})
        second = Substitution({"Y": FConst("b")})
        composed = first.compose(second)
        assert composed["X"] == FConst("a") and composed["Y"] == FConst("b")

    def test_first_wins_on_same_variable(self):
        first = Substitution({"X": FConst("a")})
        second = Substitution({"X": FConst("b")})
        assert first.compose(second)["X"] == FConst("a")

    def test_bind(self):
        subst = Substitution({"X": FVar("Y")}).bind("Y", FConst("a"))
        assert subst.apply(FVar("X")) == FConst("a")

    def test_bind_existing_rejected(self):
        with pytest.raises(SyntaxKindError):
            Substitution({"X": FConst("a")}).bind("X", FConst("b"))


class TestPredicates:
    def test_restrict(self):
        subst = Substitution({"X": FConst("a"), "Y": FConst("b")})
        assert set(subst.restrict({"X"})) == {"X"}

    def test_is_idempotent(self):
        assert Substitution({"X": FConst("a")}).is_idempotent()
        assert not Substitution({"X": FApp("f", (FVar("X"),))}).is_idempotent()

    def test_is_renaming(self):
        assert Substitution({"X": FVar("Y")}).is_renaming()
        assert not Substitution({"X": FVar("Z"), "Y": FVar("Z")}).is_renaming()
        assert not Substitution({"X": FConst("a")}).is_renaming()


class TestFastPaths:
    def test_raw_view(self):
        subst = Substitution({"X": FConst("a")})
        assert dict(subst.raw) == {"X": FConst("a")}

    def test_extended_disjoint(self):
        subst = Substitution({"X": FConst("a")})
        extended = subst.extended({"Y": FConst("b")})
        assert extended["X"] == FConst("a") and extended["Y"] == FConst("b")
        # the original is untouched
        assert "Y" not in subst

    def test_extended_empty_returns_self(self):
        subst = Substitution({"X": FConst("a")})
        assert subst.extended({}) is subst
