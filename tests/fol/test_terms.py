"""FOL term unit tests."""

import pytest

from repro.core.errors import SyntaxKindError
from repro.fol.terms import (
    FApp,
    FConst,
    FVar,
    fterm_is_ground,
    fterm_size,
    fterm_variables,
    rename_fterm,
    substitute_fterm,
    walk_fterm,
)


class TestConstruction:
    def test_var(self):
        assert FVar("X").name == "X"

    def test_const_kinds(self):
        assert FConst("a").value == "a"
        assert FConst(3).value == 3
        with pytest.raises(SyntaxKindError):
            FConst(True)

    def test_app_requires_args(self):
        with pytest.raises(SyntaxKindError):
            FApp("f", ())

    def test_app_args_must_be_terms(self):
        with pytest.raises(SyntaxKindError):
            FApp("f", ("x",))

    def test_equality_and_hash(self):
        assert FApp("f", (FVar("X"),)) == FApp("f", (FVar("X"),))
        assert hash(FConst(1)) == hash(FConst(1))
        assert FConst(1) != FConst("1")


class TestOperations:
    def test_variables(self):
        t = FApp("f", (FVar("X"), FApp("g", (FVar("Y"), FConst("a")))))
        assert fterm_variables(t) == {"X", "Y"}

    def test_is_ground(self):
        assert fterm_is_ground(FApp("f", (FConst("a"),)))
        assert not fterm_is_ground(FApp("f", (FVar("X"),)))

    def test_substitute(self):
        t = FApp("f", (FVar("X"), FVar("Y")))
        out = substitute_fterm(t, {"X": FConst("a")})
        assert out == FApp("f", (FConst("a"), FVar("Y")))

    def test_substitute_identity_fast_path(self):
        t = FApp("f", (FConst("a"),))
        assert substitute_fterm(t, {"Z": FConst("q")}) is t

    def test_rename(self):
        t = FApp("f", (FVar("X"), FConst("a")))
        assert rename_fterm(t, "_1") == FApp("f", (FVar("X_1"), FConst("a")))

    def test_size(self):
        assert fterm_size(FConst("a")) == 1
        assert fterm_size(FApp("f", (FConst("a"), FVar("X")))) == 3

    def test_walk_preorder(self):
        t = FApp("f", (FConst("a"), FVar("X")))
        nodes = list(walk_fterm(t))
        assert nodes[0] == t
        assert FConst("a") in nodes and FVar("X") in nodes
