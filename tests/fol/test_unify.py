"""Unification and matching unit tests."""

from repro.fol.atoms import FAtom
from repro.fol.subst import Substitution
from repro.fol.terms import FApp, FConst, FVar
from repro.fol.unify import match, match_atom, unify, unify_atoms, unify_terms


class TestUnify:
    def test_identical_constants(self):
        assert unify(FConst("a"), FConst("a")) == Substitution.empty()

    def test_clashing_constants(self):
        assert unify(FConst("a"), FConst("b")) is None

    def test_int_vs_str_constant_clash(self):
        assert unify(FConst(1), FConst("1")) is None

    def test_variable_binds(self):
        subst = unify(FVar("X"), FConst("a"))
        assert subst["X"] == FConst("a")

    def test_symmetric(self):
        assert unify(FConst("a"), FVar("X"))["X"] == FConst("a")

    def test_variable_variable(self):
        subst = unify(FVar("X"), FVar("Y"))
        assert subst.apply(FVar("X")) == subst.apply(FVar("Y"))

    def test_same_variable_both_sides(self):
        assert unify(FVar("X"), FVar("X")) == Substitution.empty()

    def test_nested_structures(self):
        left = FApp("f", (FVar("X"), FApp("g", (FVar("X"),))))
        right = FApp("f", (FConst("a"), FVar("Y")))
        subst = unify(left, right)
        assert subst["X"] == FConst("a")
        assert subst["Y"] == FApp("g", (FConst("a"),))

    def test_functor_clash(self):
        assert unify(FApp("f", (FVar("X"),)), FApp("g", (FVar("X"),))) is None

    def test_arity_clash(self):
        assert unify(
            FApp("f", (FVar("X"),)), FApp("f", (FVar("X"), FVar("Y")))
        ) is None

    def test_occurs_check(self):
        assert unify(FVar("X"), FApp("f", (FVar("X"),))) is None

    def test_occurs_check_indirect(self):
        # X = f(Y), then Y = X would be cyclic: X resolves to f(Y) and
        # unifying Y with f(Y) must fail the occurs check.
        subst = unify(FVar("X"), FApp("f", (FVar("Y"),)))
        assert subst is not None
        assert unify(FVar("Y"), FVar("X"), subst) is None

    def test_result_is_idempotent(self):
        left = FApp("f", (FVar("X"), FVar("Y"), FVar("X")))
        right = FApp("f", (FVar("Y"), FApp("g", (FVar("Z"),)), FVar("X")))
        subst = unify(left, right)
        assert subst is not None and subst.is_idempotent()

    def test_mgu_applies_equal(self):
        left = FApp("f", (FVar("X"), FApp("g", (FVar("X"),))))
        right = FApp("f", (FVar("Y"), FVar("Z")))
        subst = unify(left, right)
        assert subst.apply(left) == subst.apply(right)

    def test_under_initial_substitution(self):
        initial = Substitution({"X": FConst("a")})
        assert unify(FVar("X"), FConst("b"), initial) is None
        assert unify(FVar("X"), FConst("a"), initial) is not None

    def test_unify_terms_sequences(self):
        subst = unify_terms([FVar("X"), FConst("b")], [FConst("a"), FConst("b")])
        assert subst["X"] == FConst("a")
        assert unify_terms([FVar("X")], [FConst("a"), FConst("b")]) is None


class TestUnifyAtoms:
    def test_same_predicate(self):
        left = FAtom("src", (FVar("X"), FConst("a")))
        right = FAtom("src", (FConst("p1"), FConst("a")))
        subst = unify_atoms(left, right)
        assert subst["X"] == FConst("p1")

    def test_predicate_mismatch(self):
        assert unify_atoms(FAtom("p", (FVar("X"),)), FAtom("q", (FVar("X"),))) is None

    def test_arity_mismatch(self):
        assert unify_atoms(
            FAtom("p", (FVar("X"),)), FAtom("p", (FVar("X"), FVar("Y")))
        ) is None


class TestMatch:
    def test_one_way_only(self):
        """Instance variables are treated as constants."""
        assert match(FConst("a"), FVar("X")) is None

    def test_pattern_variable_binds(self):
        subst = match(FVar("X"), FApp("f", (FConst("a"),)))
        assert subst["X"] == FApp("f", (FConst("a"),))

    def test_repeated_variable_consistency(self):
        pattern = FApp("f", (FVar("X"), FVar("X")))
        assert match(pattern, FApp("f", (FConst("a"), FConst("a")))) is not None
        assert match(pattern, FApp("f", (FConst("a"), FConst("b")))) is None

    def test_match_atom(self):
        pattern = FAtom("num", (FVar("D"), FConst("plural")))
        instance = FAtom("num", (FConst("all"), FConst("plural")))
        subst = match_atom(pattern, instance)
        assert subst["D"] == FConst("all")

    def test_match_atom_respects_initial(self):
        initial = Substitution({"D": FConst("the")})
        pattern = FAtom("num", (FVar("D"),))
        instance = FAtom("num", (FConst("all"),))
        assert match_atom(pattern, instance, initial) is None
