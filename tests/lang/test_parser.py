"""Parser unit tests, including Example 1's terms and non-terms."""

import pytest

from repro.core.clauses import BuiltinAtom
from repro.core.errors import ParseError
from repro.core.formulas import PredAtom, TermAtom
from repro.core.terms import Collection, Const, Func, LabelSpec, LTerm, OBJECT, Var
from repro.lang.parser import (
    parse_atom,
    parse_clause,
    parse_program,
    parse_query,
    parse_term,
)


class TestExample1:
    """Section 3.1, Example 1: four terms and three non-terms."""

    def test_term_bare_variable(self):
        assert parse_term("X") == Var("X")

    def test_term_path_function_with_label(self):
        t = parse_term("path: g(X, Y)[length => 10]")
        assert t == LTerm(
            Func("g", (Var("X"), Var("Y")), "path"),
            (LabelSpec("length", Const(10)),),
        )

    def test_term_person_collection(self):
        t = parse_term("person: john[children => {person: bob, person: bill}]")
        assert t == LTerm(
            Const("john", "person"),
            (
                LabelSpec(
                    "children",
                    Collection((Const("bob", "person"), Const("bill", "person"))),
                ),
            ),
        )

    def test_term_repeated_label(self):
        t = parse_term(
            "instructor: david[course => courseid: cse538, course => courseid: cse505]"
        )
        assert [s.label for s in t.specs] == ["course", "course"]

    def test_nonterm_double_label_block(self):
        with pytest.raises(ParseError):
            parse_term("student: id[name => joe][age => 20]")

    def test_nonterm_label_spec_as_function_argument(self):
        with pytest.raises(ParseError):
            parse_term("part: f(part_id => 123)")

    def test_nonterm_mismatched_brackets(self):
        with pytest.raises(ParseError):
            parse_term("student: id(name => joe][age => 20]")


class TestTerms:
    def test_default_type_is_object(self):
        assert parse_term("john").type == OBJECT

    def test_typed_constant(self):
        assert parse_term("name: john") == Const("john", "name")

    def test_number(self):
        assert parse_term("28") == Const(28)

    def test_negative_number(self):
        assert parse_term("-3") == Const(-3)

    def test_string_constant(self):
        assert parse_term('"John Smith"') == Const("John Smith")

    def test_nested_function(self):
        t = parse_term("np(Det, noun: student)")
        assert t == Func("np", (Var("Det"), Const("student", "noun")))

    def test_labelled_value_term(self):
        t = parse_term("p[child => q[age => 3]]")
        inner = t.specs[0].value
        assert isinstance(inner, LTerm)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_term("a b")

    def test_empty_collection_rejected(self):
        with pytest.raises(ParseError):
            parse_term("p[l => {}]")

    def test_missing_arrow_rejected(self):
        with pytest.raises(ParseError):
            parse_term("p[l : a]")


class TestAtoms:
    def test_bare_function_is_predicate(self):
        """The documented convention: name(args) at atom position is a
        predicate atom unless labelled or type-prefixed."""
        atom = parse_atom("num(the, singular)")
        assert atom == PredAtom("num", (Const("the"), Const("singular")))

    def test_type_prefix_forces_term_reading(self):
        atom = parse_atom("object: num(the, singular)")
        assert isinstance(atom, TermAtom)
        assert atom.term == Func("num", (Const("the"), Const("singular")))

    def test_labels_force_term_reading(self):
        atom = parse_atom("np(Det, Noun)[pers => 3]")
        assert isinstance(atom, TermAtom)

    def test_is_builtin(self):
        atom = parse_atom("L is L0 + 1")
        assert atom == BuiltinAtom("is", (Var("L"), Func("+", (Var("L0"), Const(1)))))

    def test_comparison_builtin(self):
        atom = parse_atom("X < Y + 2")
        assert atom == BuiltinAtom("<", (Var("X"), Func("+", (Var("Y"), Const(2)))))

    def test_arith_continuation_on_lhs(self):
        atom = parse_atom("L0 + 1 < N")
        assert atom.op == "<"
        assert atom.args[0] == Func("+", (Var("L0"), Const(1)))

    def test_unify_builtin(self):
        atom = parse_atom("X = f(Y)")
        assert atom == BuiltinAtom("=", (Var("X"), Func("f", (Var("Y"),))))

    def test_arith_precedence(self):
        atom = parse_atom("X is 1 + 2 * 3")
        assert atom.args[1] == Func("+", (Const(1), Func("*", (Const(2), Const(3)))))

    def test_arith_parentheses(self):
        atom = parse_atom("X is (1 + 2) * 3")
        assert atom.args[1] == Func("*", (Func("+", (Const(1), Const(2))), Const(3)))

    def test_mod_and_intdiv(self):
        atom = parse_atom("X is 7 mod 2 + 9 // 4")
        assert atom.args[1] == Func(
            "+", (Func("mod", (Const(7), Const(2))), Func("//", (Const(9), Const(4))))
        )

    def test_unary_minus_factor(self):
        atom = parse_atom("X is -Y + 1")
        assert atom.args[1] == Func("+", (Func("-", (Const(0), Var("Y"))), Const(1)))


class TestClausesAndPrograms:
    def test_fact(self):
        clause = parse_clause("name: john.")
        assert clause.is_fact

    def test_rule(self):
        clause = parse_clause("proper_np: X[pers => 3] :- name: X.")
        assert len(clause.body) == 1

    def test_missing_dot(self):
        with pytest.raises(ParseError):
            parse_clause("name: john")

    def test_builtin_head_rejected(self):
        with pytest.raises(ParseError):
            parse_clause("X is 1 :- p(X).")

    def test_query_with_both_prefixes(self):
        assert parse_query(":- p(X).") == parse_query("?- p(X).")

    def test_query_prefix_and_dot_optional(self):
        assert parse_query("p(X)") == parse_query(":- p(X).")

    def test_subtype_declarations(self):
        unit = parse_program("proper_np < noun_phrase.\ncommon_np < noun_phrase.")
        assert len(unit.program.subtypes) == 2

    def test_comparison_in_body_not_confused_with_subtype(self):
        unit = parse_program("small(X) :- size(X, S), S < 10.")
        assert not unit.program.subtypes
        clause = unit.program.clauses[0]
        assert isinstance(clause.body[1], BuiltinAtom)

    def test_inline_queries_collected(self):
        unit = parse_program("name: john.\n:- name: X.\n")
        assert len(unit.queries) == 1
        assert len(unit.program.clauses) == 1

    def test_noun_phrase_program_shape(self, noun_phrase_program):
        assert len(noun_phrase_program.clauses) == 9
        assert len(noun_phrase_program.subtypes) == 2

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as info:
            parse_program("name: john.\nbroken [")
        assert info.value.line == 2


class TestNegation:
    def test_naf_predicate(self):
        from repro.core.clauses import NegatedAtom

        clause = parse_clause("q(X) :- p(X), \\+ r(X).")
        assert isinstance(clause.body[1], NegatedAtom)
        assert clause.body[1].atom == PredAtom("r", (Var("X"),))

    def test_naf_description(self):
        from repro.core.clauses import NegatedAtom

        clause = parse_clause("lonely(X) :- node: X, \\+ node: X[linkto => Y].")
        negated = clause.body[1]
        assert isinstance(negated, NegatedAtom)
        assert isinstance(negated.atom, TermAtom)

    def test_naf_cannot_head(self):
        with pytest.raises(ParseError):
            parse_clause("\\+ p(X) :- q(X).")

    def test_naf_in_query(self):
        from repro.core.clauses import NegatedAtom

        q = parse_query(":- p(X), \\+ q(X).")
        assert isinstance(q.body[1], NegatedAtom)
