"""Lexer unit tests."""

import pytest

from repro.core.errors import LexError
from repro.lang.lexer import Token, tokenize


def kinds(source: str) -> list[str]:
    return [t.kind for t in tokenize(source)][:-1]  # drop EOF


def texts(source: str) -> list[str]:
    return [t.text for t in tokenize(source)][:-1]


class TestBasics:
    def test_empty_source(self):
        tokens = tokenize("")
        assert len(tokens) == 1 and tokens[0].kind == "EOF"

    def test_identifiers_vs_variables(self):
        assert kinds("john X _tmp Path") == ["IDENT", "VARIABLE", "VARIABLE", "VARIABLE"]

    def test_keywords(self):
        assert kinds("is mod island") == ["IS", "MOD", "IDENT"]

    def test_numbers(self):
        tokens = tokenize("123 0")
        assert tokens[0].kind == "NUMBER" and tokens[0].text == "123"

    def test_punctuation(self):
        assert kinds("a: b[c => d].") == [
            "IDENT",
            "COLON",
            "IDENT",
            "LBRACKET",
            "IDENT",
            "ARROW",
            "IDENT",
            "RBRACKET",
            "DOT",
        ]

    def test_rule_arrow(self):
        assert kinds(":- ?-") == ["IMPLIED_BY", "QUERY"]

    def test_comparison_operators(self):
        assert kinds("=< >= =:= =\\= < > =") == [
            "LE",
            "GE",
            "ARITH_EQ",
            "ARITH_NE",
            "LT",
            "GT",
            "EQ",
        ]

    def test_arithmetic_operators(self):
        assert kinds("+ - * //") == ["PLUS", "MINUS", "STAR", "INTDIV"]

    def test_braces(self):
        assert kinds("{a, b}") == ["LBRACE", "IDENT", "COMMA", "IDENT", "RBRACE"]


class TestStrings:
    def test_simple_string(self):
        token = tokenize('"John Smith"')[0]
        assert token.kind == "STRING" and token.text == "John Smith"

    def test_escaped_quote(self):
        token = tokenize(r'"say \"hi\""')[0]
        assert token.text == 'say "hi"'

    def test_escaped_backslash(self):
        token = tokenize(r'"a\\b"')[0]
        assert token.text == "a\\b"

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_newline_in_string(self):
        with pytest.raises(LexError):
            tokenize('"line\nbreak"')

    def test_unknown_escape(self):
        with pytest.raises(LexError):
            tokenize(r'"\n"')


class TestCommentsAndPositions:
    def test_comment_to_end_of_line(self):
        assert kinds("a. % comment here\nb.") == ["IDENT", "DOT", "IDENT", "DOT"]

    def test_line_tracking(self):
        tokens = tokenize("a.\nb.")
        assert tokens[0].line == 1
        assert tokens[2].line == 2

    def test_column_tracking(self):
        tokens = tokenize("ab cd")
        assert tokens[0].column == 1
        assert tokens[1].column == 4

    def test_unexpected_character(self):
        with pytest.raises(LexError) as info:
            tokenize("a @ b")
        assert info.value.line == 1


def test_token_repr():
    assert "IDENT" in repr(Token("IDENT", "john", 1, 1))
