"""Section 3.2's semantic contrast, as executable tests.

"From the following two facts in which p is a constant denoting an
object:

    p[src => a, dest => b].
    p[src => c, dest => d].

we can infer p[src => a, dest => d] or p[src => c, dest => b].
However, given

    p(a, b).  p(c, d).

in which p is a binary predicate, we cannot infer either p(a, d) or
p(c, b).  The difference is that labels of a term are independent,
while arguments in a tuple of a predicate are associated together."
"""

import pytest

from repro.engine.direct import DirectEngine
from repro.lang.parser import parse_program, parse_query

TERM_FACTS = """
p[src => a, dest => b].
p[src => c, dest => d].
"""

PREDICATE_FACTS = """
p(a, b).
p(c, d).
"""


@pytest.fixture
def term_engine():
    return DirectEngine(parse_program(TERM_FACTS).program)


@pytest.fixture
def predicate_engine():
    return DirectEngine(parse_program(PREDICATE_FACTS).program)


class TestLabelsAreIndependent:
    @pytest.mark.parametrize(
        "query",
        [
            ":- p[src => a, dest => b].",   # as asserted
            ":- p[src => c, dest => d].",   # as asserted
            ":- p[src => a, dest => d].",   # the recombination the paper infers
            ":- p[src => c, dest => b].",   # the other recombination
        ],
    )
    def test_all_recombinations_hold(self, term_engine, query):
        assert term_engine.holds(parse_query(query))

    def test_under_fol_translation_too(self):
        from repro.engine.bottomup import answer_query_bottomup, naive_fixpoint
        from repro.transform.clauses import program_to_fol, query_to_fol

        facts = naive_fixpoint(program_to_fol(parse_program(TERM_FACTS).program))
        goals = query_to_fol(parse_query(":- p[src => a, dest => d]."))
        assert any(True for _ in answer_query_bottomup(goals, facts))


class TestPredicateArgumentsAreAssociated:
    @pytest.mark.parametrize(
        "query, expected",
        [
            (":- p(a, b).", True),
            (":- p(c, d).", True),
            (":- p(a, d).", False),  # NOT inferable
            (":- p(c, b).", False),  # NOT inferable
        ],
    )
    def test_no_cross_tuple_inference(self, predicate_engine, query, expected):
        assert predicate_engine.holds(parse_query(query)) is expected

    def test_open_queries_differ_in_count(self, term_engine, predicate_engine):
        """The term version has 2x2 (src, dest) combinations; the
        predicate version only its 2 tuples."""
        term_answers = term_engine.solve(
            parse_query(":- p[src => S, dest => D].")
        )
        predicate_answers = predicate_engine.solve(parse_query(":- p(S, D)."))
        assert len(term_answers) == 4
        assert len(predicate_answers) == 2
