"""Stratified negation — the extension Section 4 defers.

Covers stratification, the stratified fixpoint, the Lloyd–Topor
translation of negated complex descriptions, the direct engine's
C-level stratified saturation, and cross-engine agreement.
"""

import pytest

from repro.core.errors import EngineError, SafetyError, UnsupportedFeatureError
from repro.engine.bottomup import answer_query_bottomup, naive_fixpoint
from repro.engine.direct import DirectEngine
from repro.engine.negation import (
    NegClause,
    StratificationError,
    stratified_fixpoint,
    stratify,
)
from repro.engine.seminaive import seminaive_fixpoint
from repro.fol.atoms import FAtom, HornClause, NegAtom
from repro.fol.terms import FConst, FVar
from repro.lang.parser import parse_program, parse_query
from repro.transform.clauses import program_to_fol, program_to_generalized, query_to_fol


def atom(pred, *args):
    return FAtom(pred, tuple(args))


SINK_SOURCE = """
node: a[linkto => b].
node: b[linkto => c].
node: c.
haslink(X) :- node: X[linkto => Y].
sink(X) :- node: X, \\+ haslink(X).
"""

LONELY_SOURCE = """
node: a[linkto => b].
node: b.
lonely(X) :- node: X, \\+ node: X[linkto => Y].
"""


class TestStratify:
    def test_positive_program_single_stratum(self):
        clauses = [
            HornClause(atom("p", FConst("a"))),
            HornClause(atom("q", FVar("X")), (atom("p", FVar("X")),)),
        ]
        assert len(stratify(clauses)) == 1

    def test_negation_creates_second_stratum(self):
        clauses = [
            HornClause(atom("p", FConst("a"))),
            NegClause(
                (atom("q", FVar("X")),),
                (atom("p", FVar("X")), NegAtom(atom("r", FVar("X")))),
            ),
            HornClause(atom("r", FConst("b"))),
        ]
        strata = stratify(clauses)
        assert len(strata) == 2
        level1_heads = {c.heads[0].pred for c in strata[1]}
        assert level1_heads == {"q"}

    def test_cycle_through_negation_rejected(self):
        clauses = [
            NegClause((atom("p", FVar("X")),), (atom("q", FVar("X")), NegAtom(atom("r", FVar("X"))))),
            NegClause((atom("r", FVar("X")),), (atom("q", FVar("X")), NegAtom(atom("p", FVar("X"))))),
            HornClause(atom("q", FConst("a"))),
        ]
        with pytest.raises(StratificationError):
            stratify(clauses)

    def test_positive_recursion_allowed(self):
        clauses = [
            HornClause(atom("e", FConst("a"), FConst("b"))),
            HornClause(atom("t", FVar("X"), FVar("Y")), (atom("e", FVar("X"), FVar("Y")),)),
            HornClause(
                atom("t", FVar("X"), FVar("Z")),
                (atom("e", FVar("X"), FVar("Y")), atom("t", FVar("Y"), FVar("Z"))),
            ),
        ]
        assert len(stratify(clauses)) == 1

    def test_negating_active_domain_rejected(self):
        clauses = [
            HornClause(atom("p", FConst("a"))),
            NegClause(
                (atom("q", FVar("X")),),
                (atom("p", FVar("X")), NegAtom(atom("object", FVar("X")))),
            ),
        ]
        with pytest.raises(StratificationError):
            stratify(clauses)


class TestStratifiedFixpoint:
    def test_sink_example(self):
        fol = program_to_fol(parse_program(SINK_SOURCE).program)
        facts = stratified_fixpoint(fol)
        sinks = {
            s["X"]
            for s in answer_query_bottomup(
                query_to_fol(parse_query(":- sink(X).")), facts
            )
        }
        assert sinks == {FConst("c")}

    def test_unsafe_negative_variable_rejected(self):
        with pytest.raises(SafetyError):
            NegClause(
                (atom("p", FVar("X")),),
                (NegAtom(atom("q", FVar("X"))),),
            )

    def test_positive_engines_refuse_negation(self):
        fol = program_to_fol(parse_program(SINK_SOURCE).program)
        with pytest.raises(EngineError):
            naive_fixpoint(fol)
        with pytest.raises(EngineError):
            seminaive_fixpoint(fol)

    def test_agrees_with_naive_on_positive_programs(self, noun_phrase_program):
        fol = program_to_fol(noun_phrase_program)
        assert stratified_fixpoint(fol).snapshot() == naive_fixpoint(fol).snapshot()


class TestLloydTopor:
    def test_negated_description_gets_aux(self):
        generalized = program_to_generalized(parse_program(LONELY_SOURCE).program)
        aux_heads = [
            clause.heads[0].pred
            for clause in generalized.clauses
            if clause.heads[0].pred.startswith("naf_aux")
        ]
        assert aux_heads == ["naf_aux1"]
        # The aux head projects out the local variable Y.
        aux = [c for c in generalized.clauses if c.heads[0].pred == "naf_aux1"][0]
        assert len(aux.heads[0].args) == 1

    def test_lonely_answers(self):
        generalized = program_to_generalized(parse_program(LONELY_SOURCE).program)
        facts = stratified_fixpoint(generalized.split())
        lonely = {
            s["X"]
            for s in answer_query_bottomup(
                query_to_fol(parse_query(":- lonely(X).")), facts
            )
        }
        assert lonely == {FConst("b")}

    def test_single_conjunct_negation_needs_no_aux(self):
        # A negated plain typed term translates to one conjunct: no aux.
        # (A negated *predicate* atom still carries its arguments'
        # object(...) conjuncts, so it does get one.)
        source = "person: a.\nemployee: b.\nfree(X) :- person: X, \\+ employee: X.\n"
        generalized = program_to_generalized(parse_program(source).program)
        assert not any(
            clause.heads[0].pred.startswith("naf_aux")
            for clause in generalized.clauses
        )

    def test_query_with_complex_negation_rejected(self):
        from repro.core.errors import TransformError

        with pytest.raises(TransformError):
            query_to_fol(parse_query(":- node: X, \\+ node: X[linkto => Y, cost => C]."))


class TestDirectEngine:
    def test_sink_example(self):
        engine = DirectEngine(parse_program(SINK_SOURCE).program)
        sinks = engine.solve(parse_query(":- sink(X)."))
        assert [repr(a["X"]) for a in sinks] == ["Const('c')"]

    def test_negated_description_with_local_variable(self):
        engine = DirectEngine(parse_program(LONELY_SOURCE).program)
        lonely = engine.solve(parse_query(":- lonely(X)."))
        assert [repr(a["X"]) for a in lonely] == ["Const('b')"]

    def test_query_level_negation(self):
        program = parse_program(
            "person: john[children => bob].\nperson: sue.\n"
        ).program
        engine = DirectEngine(program)
        answers = engine.solve(
            parse_query(":- person: P, \\+ person: P[children => C].")
        )
        assert {repr(a["P"]) for a in answers} == {"Const('sue')"}

    def test_negation_order_in_body_is_irrelevant(self):
        """Negated atoms are solved after positive ones regardless of
        where they are written."""
        program = parse_program(
            "p(a). p(b). q(b).\nr(X) :- \\+ q(X), p(X).\n"
        ).program
        engine = DirectEngine(program)
        answers = engine.solve(parse_query(":- r(X)."))
        assert {repr(a["X"]) for a in answers} == {"Const('a')"}

    def test_cycle_through_negation_rejected(self):
        program = parse_program(
            "q(a).\np(X) :- q(X), \\+ r(X).\nr(X) :- q(X), \\+ p(X).\n"
        ).program
        with pytest.raises(EngineError):
            DirectEngine(program).saturate()

    def test_negating_active_domain_rejected(self):
        program = parse_program("p(a).\nq(X) :- p(X), \\+ object: X.\n").program
        with pytest.raises(UnsupportedFeatureError):
            DirectEngine(program).saturate()

    def test_unsafe_shared_variable_rejected(self):
        # Z is shared with the head but never positively bound.
        program = parse_program("p(a).\nq(Z) :- p(X), \\+ r(X, Z).\n").program
        with pytest.raises(SafetyError):
            DirectEngine(program).saturate()

    def test_two_strata_through_types(self):
        source = """
        raw: a.
        raw: b.
        marked(a).
        clean: X[ok => yes] :- raw: X, \\+ marked(X).
        """
        engine = DirectEngine(parse_program(source).program)
        answers = engine.solve(parse_query(":- clean: X."))
        assert {repr(a["X"]) for a in answers} == {"Const('b')"}


class TestEngineAgreementWithNegation:
    QUERIES = [":- sink(X).", ":- haslink(X)."]

    @pytest.mark.parametrize("query_source", QUERIES)
    def test_direct_vs_stratified_fol(self, query_source):
        program = parse_program(SINK_SOURCE).program
        query = parse_query(query_source)
        direct = {
            frozenset((k, repr(v)) for k, v in a.items())
            for a in DirectEngine(program).solve(query)
        }
        facts = stratified_fixpoint(program_to_fol(program))
        from repro.transform.terms import fol_to_identity

        translated = {
            frozenset((k, repr(fol_to_identity(v))) for k, v in s.items())
            for s in answer_query_bottomup(query_to_fol(query), facts)
        }
        assert direct == translated


class TestKnowledgeBaseIntegration:
    def test_kb_with_negation(self):
        from repro import KnowledgeBase

        kb = KnowledgeBase.from_source(SINK_SOURCE)
        for engine in ("direct", "bottomup", "seminaive"):
            answers = kb.ask("sink(X)", engine=engine)
            assert [a.pretty()["X"] for a in answers] == ["c"]

    def test_kb_sld_refuses_negation(self):
        from repro import KnowledgeBase

        kb = KnowledgeBase.from_source(SINK_SOURCE)
        with pytest.raises(UnsupportedFeatureError):
            kb.ask("sink(X)", engine="sld")
        with pytest.raises(UnsupportedFeatureError):
            kb.ask("sink(X)", engine="tabled")
