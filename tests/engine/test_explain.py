"""Derivation-tree (explanation) tests."""

import pytest

from repro.core.terms import Const
from repro.engine.direct import DirectEngine
from repro.engine.explain import Derivation, Explainer, format_derivation
from repro.lang.parser import parse_program, parse_query


def explainer(program_source_or_fixture):
    program = (
        parse_program(program_source_or_fixture).program
        if isinstance(program_source_or_fixture, str)
        else program_source_or_fixture
    )
    return Explainer(DirectEngine(program)), program


def atom_of(query_source: str):
    return parse_query(query_source).body[0]


class TestExtensional:
    def test_fact_explained_by_its_clause(self, residual_program):
        exp, __ = explainer(residual_program)
        derivation = exp.explain_atom(atom_of(":- path: p[src => a]."))
        assert derivation is not None
        leaves = _leaves(derivation)
        assert all(leaf.kind == "fact" for leaf in leaves)

    def test_residual_cites_two_facts(self, residual_program):
        """E7 made inspectable: the cross-fact description's derivation
        uses extensional fact 0 for src and fact 1 for dest."""
        exp, __ = explainer(residual_program)
        derivation = exp.explain_atom(atom_of(":- path: p[src => a, dest => d]."))
        cited = {leaf.clause_index for leaf in _leaves(derivation)}
        assert cited == {0, 1}

    def test_failing_atom_returns_none(self, residual_program):
        exp, __ = explainer(residual_program)
        assert exp.explain_atom(atom_of(":- path: p[src => z].")) is None


class TestRules:
    def test_recursive_derivation_depth(self, path_program):
        exp, program = explainer(path_program)
        derivation = exp.explain_atom(
            atom_of(":- path: id(a, d)[length => 3].")
        )
        assert derivation is not None
        # length-3 path: 3 nested rule applications.
        rule_nodes = [n for n in _nodes(derivation) if n.kind == "rule" and n.clause_index is not None]
        assert len(rule_nodes) >= 3
        text = format_derivation(derivation, program)
        assert "by rule 4" in text  # the recursive rule
        assert "by rule 3" in text  # the base rule
        assert "extensional fact" in text

    def test_builtin_nodes(self, path_program):
        exp, __ = explainer(path_program)
        derivation = exp.explain_atom(atom_of(":- path: id(a, c)[length => 2]."))
        assert any(n.kind == "builtin" for n in _nodes(derivation))

    def test_subtype_subsumption_node(self, noun_phrase_program):
        exp, program = explainer(noun_phrase_program)
        derivation = exp.explain_atom(atom_of(":- noun_phrase: john."))
        assert derivation.kind == "subtype"
        text = format_derivation(derivation, program)
        assert "by subtype subsumption" in text
        assert "proper_np: john" in text

    def test_predicate_atom_explanation(self):
        exp, program = explainer(
            "edge(a, b).\nreach(X, Y) :- edge(X, Y).\n"
            "reach(X, Z) :- edge(X, Y), reach(Y, Z).\n"
        )
        derivation = exp.explain_atom(atom_of(":- reach(a, b)."))
        # The atom decomposes (object(a), object(b), reach(a, b)); the
        # predicate piece itself is derived by clause 1.
        rule_nodes = [
            n
            for n in _nodes(derivation)
            if n.kind == "rule" and n.clause_index == 1
        ]
        assert rule_nodes

    def test_negation_explained_by_absence(self):
        exp, program = explainer(
            "node: a[linkto => b].\nnode: b.\n"
            "haslink(X) :- node: X[linkto => Y].\n"
            "sink(X) :- node: X, \\+ haslink(X).\n"
        )
        derivation = exp.explain_atom(atom_of(":- sink(b)."))
        assert any(n.kind == "absent" for n in _nodes(derivation))


class TestExplainQuery:
    def test_answers_with_trees(self, path_program):
        exp, __ = explainer(path_program)
        results = exp.explain_query(
            parse_query(":- path: P[src => a, dest => D].")
        )
        assert len(results) == 3
        for answer, derivations in results:
            assert derivations and all(d is not None for d in derivations)

    def test_tree_metrics(self, path_program):
        exp, __ = explainer(path_program)
        derivation = exp.explain_atom(atom_of(":- path: id(a, b)."))
        assert derivation.size() >= derivation.depth() >= 2


class TestKnowledgeBaseAndRepl:
    def test_kb_explain(self, path_program):
        from repro import KnowledgeBase

        kb = KnowledgeBase(path_program)
        trees = kb.explain("path: P[src => a, dest => b]")
        assert len(trees) == 1
        assert "P = id(a, b)" in trees[0]
        assert "extensional fact" in trees[0]

    def test_repl_why(self):
        import io

        from repro.cli import Repl

        out = io.StringIO()
        repl = Repl(out=out)
        repl.handle("name: john.")
        repl.handle(":why name: X")
        text = out.getvalue()
        assert "X = john" in text
        assert "extensional fact 0" in text

    def test_repl_why_usage(self):
        import io

        from repro.cli import Repl

        out = io.StringIO()
        Repl(out=out).handle(":why")
        assert "usage: :why" in out.getvalue()


def _nodes(derivation: Derivation):
    yield derivation
    for child in derivation.children:
        yield from _nodes(child)


def _leaves(derivation: Derivation):
    return [n for n in _nodes(derivation) if not n.children]
