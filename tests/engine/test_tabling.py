"""Tabled evaluation tests: termination on recursion, agreement."""

import pytest

from repro.engine.bottomup import answer_query_bottomup, naive_fixpoint
from repro.engine.tabling import TabledEngine, canonical_atom
from repro.fol.atoms import FAtom, HornClause
from repro.fol.terms import FApp, FConst, FVar
from repro.lang.parser import parse_query
from repro.transform.clauses import program_to_fol, query_to_fol


def atom(pred, *args):
    return FAtom(pred, tuple(args))


class TestCanonicalAtom:
    def test_variants_share_key(self):
        one = canonical_atom(atom("p", FVar("X"), FVar("Y"), FVar("X")))
        two = canonical_atom(atom("p", FVar("A"), FVar("B"), FVar("A")))
        assert one == two

    def test_distinct_patterns_differ(self):
        one = canonical_atom(atom("p", FVar("X"), FVar("X")))
        two = canonical_atom(atom("p", FVar("X"), FVar("Y")))
        assert one != two

    def test_ground_atoms_unchanged(self):
        ground = atom("p", FConst("a"))
        assert canonical_atom(ground) == ground


class TestLeftRecursion:
    """Plain SLD loops on left-recursive tc; tabling terminates."""

    @pytest.fixture
    def left_recursive(self):
        return [
            HornClause(atom("edge", FConst("a"), FConst("b"))),
            HornClause(atom("edge", FConst("b"), FConst("c"))),
            HornClause(atom("edge", FConst("c"), FConst("a"))),  # a cycle!
            HornClause(
                atom("tc", FVar("X"), FVar("Z")),
                (atom("tc", FVar("X"), FVar("Y")), atom("edge", FVar("Y"), FVar("Z"))),
            ),
            HornClause(
                atom("tc", FVar("X"), FVar("Y")), (atom("edge", FVar("X"), FVar("Y")),)
            ),
        ]

    def test_terminates_and_complete(self, left_recursive):
        engine = TabledEngine(left_recursive)
        answers = engine.solve([atom("tc", FConst("a"), FVar("Y"))])
        values = {a["Y"] for a in answers}
        assert values == {FConst("a"), FConst("b"), FConst("c")}

    def test_agrees_with_bottomup(self, left_recursive):
        reference = set(
            answer_query_bottomup(
                [atom("tc", FVar("X"), FVar("Y"))], naive_fixpoint(left_recursive)
            )
        )
        tabled = set(TabledEngine(left_recursive).solve([atom("tc", FVar("X"), FVar("Y"))]))
        assert tabled == reference


class TestTranslatedPrograms:
    def test_example3(self, noun_phrase_program):
        fol = program_to_fol(noun_phrase_program)
        goals = query_to_fol(parse_query(":- noun_phrase: X[num => plural]."))
        tabled = set(TabledEngine(fol).solve(goals))
        reference = set(answer_query_bottomup(goals, naive_fixpoint(fol)))
        assert tabled == reference

    def test_path_program(self, path_program):
        fol = program_to_fol(path_program)
        goals = query_to_fol(
            parse_query(":- path: P[src => a, dest => D, length => L].")
        )
        tabled = set(TabledEngine(fol).solve(goals))
        reference = set(answer_query_bottomup(goals, naive_fixpoint(fol)))
        assert tabled == reference
        assert len(tabled) == 3

    def test_stats(self, path_program):
        fol = program_to_fol(path_program)
        engine = TabledEngine(fol)
        engine.solve(query_to_fol(parse_query(":- path: P[src => a, dest => b].")))
        assert engine.stats.tables > 0
        assert engine.stats.iterations >= 1


class TestMisc:
    def test_builtin_goal(self):
        program = [HornClause(atom("n", FConst(2)))]
        from repro.fol.atoms import FBuiltin

        engine = TabledEngine(program)
        answers = engine.solve(
            [
                atom("n", FVar("X")),
                FBuiltin("is", (FVar("Y"), FApp("*", (FVar("X"), FConst(5))))),
            ]
        )
        assert answers[0]["Y"] == FConst(10)

    def test_no_answers(self):
        engine = TabledEngine([HornClause(atom("p", FConst("a")))])
        assert engine.solve([atom("q", FVar("X"))]) == []
        assert not engine.has_answer([atom("q", FVar("X"))])
