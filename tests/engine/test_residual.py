"""Experiment E7 as tests: multi-valued labels need the residual rule.

Section 4: given

    path: p[src => a, dest => b].
    path: p[src => c, dest => d].

the query ``:- path: p[src => a, dest => d]`` *should succeed* (labels
of a term are independent), but "naive evaluation using unification
will fail" — the whole-term strategy demands one fact supporting both
constraints.  Residual solving, the FOL translation, and subsumption
over the merged fact all succeed.
"""

from repro.core.terms import Const
from repro.engine.direct import DirectEngine
from repro.lang.parser import parse_program, parse_query

QUERY = parse_query(":- path: p[src => a, dest => d].")
SAME_FACT_QUERY = parse_query(":- path: p[src => a, dest => b].")


class TestResidualSolving:
    def test_cross_fact_query_succeeds(self, residual_program):
        engine = DirectEngine(residual_program)
        assert engine.holds(QUERY)

    def test_same_fact_query_succeeds(self, residual_program):
        engine = DirectEngine(residual_program)
        assert engine.holds(SAME_FACT_QUERY)

    def test_agrees_with_fol_translation(self, residual_program):
        from repro.engine.bottomup import answer_query_bottomup, naive_fixpoint
        from repro.transform.clauses import program_to_fol, query_to_fol

        facts = naive_fixpoint(program_to_fol(residual_program))
        goals = query_to_fol(QUERY)
        assert any(True for _ in answer_query_bottomup(goals, facts))


class TestWholeTermUnification:
    def test_cross_fact_query_fails(self, residual_program):
        """The paper's naive strategy misses the cross-fact answer."""
        engine = DirectEngine(residual_program)
        assert engine.solve_whole_term(QUERY) == []

    def test_same_fact_query_still_works(self, residual_program):
        engine = DirectEngine(residual_program)
        assert engine.solve_whole_term(SAME_FACT_QUERY) == [{}]

    def test_complete_when_labels_functional(self):
        """With one fact per object and functional labels, whole-term
        unification agrees with residual solving (the case where the
        paper recommends it: 'especially when most labels are
        functional or single-valued')."""
        program = parse_program(
            """
            path: p1[src => a, dest => b].
            path: p2[src => c, dest => d].
            """
        ).program
        engine = DirectEngine(program)
        query = parse_query(":- path: X[src => S, dest => D].")
        whole = {tuple(sorted(a.items())) for a in engine.solve_whole_term(query)}
        residual = {tuple(sorted(a.items())) for a in engine.solve(query)}
        assert whole == residual
        assert len(whole) == 2


class TestSubsumptionSolving:
    def test_merged_fact_answers_query(self, residual_program):
        """Section 4: merge all information about p into
        path: p[src => {a, c}, dest => {b, d}] and solve by checking the
        partial ordering over descriptions."""
        engine = DirectEngine(residual_program)
        assert engine.solve_subsumption(QUERY) == [{}]

    def test_variables_bound_from_merged_values(self, residual_program):
        engine = DirectEngine(residual_program)
        answers = engine.solve_subsumption(parse_query(":- path: p[src => S]."))
        assert {a["S"] for a in answers} == {Const("a"), Const("c")}

    def test_agrees_with_residual_on_extensional_db(self, residual_program):
        engine = DirectEngine(residual_program)
        for source in (
            ":- path: X[src => S].",
            ":- path: X[src => a, dest => D].",
            ":- path: p[src => {a, c}].",
        ):
            query = parse_query(source)
            residual = {tuple(sorted(a.items())) for a in engine.solve(query)}
            subsumed = {tuple(sorted(a.items())) for a in engine.solve_subsumption(query)}
            assert residual == subsumed, source


class TestCollectionQueries:
    def test_subset_query_on_merged_values(self, residual_program):
        """{a, c} is a subset of p's src values."""
        engine = DirectEngine(residual_program)
        assert engine.holds(parse_query(":- path: p[src => {a, c}]."))

    def test_subset_query_failure(self, residual_program):
        engine = DirectEngine(residual_program)
        assert not engine.holds(parse_query(":- path: p[src => {a, b}]."))
