"""Cross-engine agreement: all five strategies return the same answers.

The paper's point that "known query evaluation techniques, including
both bottom-up and top-down methods, can be used for computation of
complex objects" — and that direct evaluation is an *alternative*, not
a different semantics — means every engine must agree on answer sets.
"""

import pytest

from repro.core.terms import Term
from repro.engine.bottomup import answer_query_bottomup, naive_fixpoint
from repro.engine.direct import DirectEngine
from repro.engine.seminaive import seminaive_fixpoint
from repro.engine.tabling import TabledEngine
from repro.engine.topdown import SLDEngine
from repro.lang.parser import parse_program, parse_query
from repro.transform.clauses import program_to_fol, query_to_fol
from repro.transform.terms import fol_to_identity


def all_engine_answers(
    program, query_source: str, sld_depth: int = 24, include_sld: bool = True
):
    """Answer sets per engine, normalized to frozensets of (var, term).

    ``include_sld=False`` skips the plain SLD engine: on recursive
    translated programs its exhaustive search does not terminate (the
    very weakness tabling exists to fix), so top-down coverage there
    comes from the tabled engine.
    """
    query = parse_query(query_source)
    variables = query.variables()
    goals = query_to_fol(query)
    fol = program_to_fol(program)

    def normalize_subst(subst):
        return frozenset(
            (name, fol_to_identity(value)) for name, value in subst.items()
        )

    def normalize_direct(answer):
        return frozenset(answer.items())

    results = {}
    naive_facts = naive_fixpoint(fol)
    results["bottomup"] = {
        normalize_subst(s) for s in answer_query_bottomup(goals, naive_facts)
    }
    semi_facts = seminaive_fixpoint(fol)
    results["seminaive"] = {
        normalize_subst(s) for s in answer_query_bottomup(goals, semi_facts)
    }
    if include_sld:
        results["sld"] = {
            normalize_subst(s)
            for s in SLDEngine(fol).solve(goals, max_depth=sld_depth, select="smallest")
        }
    results["tabled"] = {normalize_subst(s) for s in TabledEngine(fol).solve(goals)}
    results["direct"] = {
        normalize_direct(a) for a in DirectEngine(program).solve(query)
    }
    return results


def assert_agreement(program, query_source: str, expected_count=None, **kwargs):
    results = all_engine_answers(program, query_source, **kwargs)
    reference = results["bottomup"]
    for engine, answers in results.items():
        assert answers == reference, f"{engine} disagrees on {query_source}"
    if expected_count is not None:
        assert len(reference) == expected_count, query_source
    return reference


class TestExample3:
    """The translated grammar is recursive through num/def (the
    common_np clause calls them and defines them), so plain SLD is
    incomplete at practical depths — the tabled engine provides the
    complete top-down side here.  The two paper queries below keep SLD
    included because their answers appear within depth 24."""

    def test_plural_noun_phrases(self, noun_phrase_program):
        assert_agreement(
            noun_phrase_program, ":- noun_phrase: X[num => plural].", expected_count=2
        )

    def test_singular_noun_phrases(self, noun_phrase_program):
        # john, bob (proper) + np(a, student), np(the, student)
        assert_agreement(
            noun_phrase_program, ":- noun_phrase: X[num => singular].", expected_count=4
        )

    def test_definite_common_nps(self, noun_phrase_program):
        assert_agreement(
            noun_phrase_program,
            ":- common_np: X[def => definite, num => N].",
            expected_count=2,
            include_sld=False,
        )


class TestPathProgram:
    """Recursive program: plain SLD does not terminate on the translated
    rules (include_sld=False); the tabled engine covers top-down."""

    def test_all_paths(self, path_program):
        assert_agreement(
            path_program,
            ":- path: P[src => S, dest => D, length => L].",
            expected_count=6,
            include_sld=False,
        )

    def test_paths_from_a(self, path_program):
        assert_agreement(
            path_program,
            ":- path: P[src => a, dest => D].",
            expected_count=3,
            include_sld=False,
        )


class TestResidual:
    def test_cross_fact_ground_query(self, residual_program):
        assert_agreement(
            residual_program, ":- path: p[src => a, dest => d].", expected_count=1
        )

    def test_open_query(self, residual_program):
        # src in {a, c} x dest in {b, d}
        assert_agreement(
            residual_program, ":- path: p[src => S, dest => D].", expected_count=4
        )


class TestSets:
    def test_children_pairs(self, children_program):
        """Section 5: {X, Y} query — both bindable to each of the three
        children, 9 pairs."""
        assert_agreement(
            children_program,
            ":- person: john[children => {X, Y}].",
            expected_count=9,
        )


class TestMixedPredicateAndTerms:
    PROGRAM = """
    node: a.
    node: b.
    node: c.
    edge(a, b).
    edge(b, c).
    reach(X, Y) :- edge(X, Y).
    reach(X, Z) :- edge(X, Y), reach(Y, Z).
    busy: X[deg => 1] :- edge(X, Y).
    """

    def test_predicates_and_descriptions(self):
        # reach/2 is recursive: plain SLD excluded (see TestPathProgram).
        program = parse_program(self.PROGRAM).program
        assert_agreement(program, ":- reach(a, X).", expected_count=2, include_sld=False)
        assert_agreement(
            program, ":- busy: X[deg => 1].", expected_count=2, include_sld=False
        )
