"""FactBase indexing unit tests."""

import pytest

from repro.core.errors import StoreError
from repro.engine.factbase import FactBase, principal_functor
from repro.fol.atoms import FAtom
from repro.fol.terms import FApp, FConst, FVar


def atom(pred, *args):
    return FAtom(pred, tuple(args))


class TestPrincipalFunctor:
    def test_constant(self):
        assert principal_functor(FConst("a")) == ("c", "str", "a")

    def test_int_and_str_keys_differ(self):
        assert principal_functor(FConst(1)) != principal_functor(FConst("1"))

    def test_application(self):
        assert principal_functor(FApp("id", (FConst("a"), FConst("b")))) == ("f", "id", 2)

    def test_variable(self):
        assert principal_functor(FVar("X")) is None


class TestFactBase:
    def test_add_and_contains(self):
        base = FactBase()
        assert base.add(atom("p", FConst("a")))
        assert atom("p", FConst("a")) in base
        assert len(base) == 1

    def test_duplicate_not_added(self):
        base = FactBase()
        base.add(atom("p", FConst("a")))
        assert not base.add(atom("p", FConst("a")))
        assert len(base) == 1

    def test_non_ground_rejected(self):
        with pytest.raises(StoreError):
            FactBase().add(atom("p", FVar("X")))

    def test_candidates_by_predicate(self):
        base = FactBase([atom("p", FConst("a")), atom("q", FConst("a"))])
        cands = base.candidates(atom("p", FVar("X")))
        assert list(cands) == [atom("p", FConst("a"))]

    def test_candidates_by_first_argument(self):
        base = FactBase(
            [atom("src", FConst("p1"), FConst("a")), atom("src", FConst("p2"), FConst("c"))]
        )
        cands = base.candidates(atom("src", FConst("p1"), FVar("S")))
        assert list(cands) == [atom("src", FConst("p1"), FConst("a"))]

    def test_candidates_variable_first_argument_returns_all(self):
        base = FactBase(
            [atom("src", FConst("p1"), FConst("a")), atom("src", FConst("p2"), FConst("c"))]
        )
        assert len(base.candidates(atom("src", FVar("X"), FVar("S")))) == 2

    def test_rounds_and_stamps(self):
        base = FactBase()
        base.add(atom("p", FConst("a")))
        base.next_round()
        base.add(atom("p", FConst("b")))
        assert base.stamp(atom("p", FConst("a"))) == 0
        assert base.stamp(atom("p", FConst("b"))) == 1

    def test_candidates_since(self):
        base = FactBase([atom("p", FConst("a"))])
        base.next_round()
        base.add(atom("p", FConst("b")))
        fresh = base.candidates_since(atom("p", FVar("X")), since_round=1)
        assert list(fresh) == [atom("p", FConst("b"))]

    def test_count_and_predicates(self):
        base = FactBase([atom("p", FConst("a")), atom("q", FConst("a"), FConst("b"))])
        assert base.count(("p", 1)) == 1
        assert base.predicates() == {("p", 1), ("q", 2)}

    def test_snapshot_frozen(self):
        base = FactBase([atom("p", FConst("a"))])
        snap = base.snapshot()
        base.add(atom("p", FConst("b")))
        assert len(snap) == 1

    def test_add_all(self):
        base = FactBase()
        added = base.add_all([atom("p", FConst("a")), atom("p", FConst("a"))])
        assert added == 1


class TestAdaptiveIndexes:
    def _base(self):
        return FactBase(
            [
                atom("edge", FConst("a"), FConst("b")),
                atom("edge", FConst("b"), FConst("c")),
                atom("edge", FConst("c"), FConst("b")),
            ]
        )

    def test_no_indexes_before_first_fetch(self):
        assert self._base().index_names() == []

    def test_index_built_on_demand_for_bound_subset(self):
        base = self._base()
        cands = base.candidates(atom("edge", FVar("X"), FConst("b")))
        assert sorted(map(repr, cands)) == sorted(
            map(
                repr,
                [
                    atom("edge", FConst("a"), FConst("b")),
                    atom("edge", FConst("c"), FConst("b")),
                ],
            )
        )
        assert base.index_names() == ["edge/2[2]"]

    def test_distinct_shapes_get_distinct_indexes(self):
        base = self._base()
        base.candidates(atom("edge", FConst("a"), FVar("Y")))
        base.candidates(atom("edge", FVar("X"), FConst("b")))
        base.candidates(atom("edge", FConst("a"), FConst("b")))
        assert set(base.index_names()) == {
            "edge/2[1]",
            "edge/2[1,2]",
            "edge/2[2]",
        }

    def test_index_maintained_across_adds(self):
        base = self._base()
        pattern = atom("edge", FVar("X"), FConst("b"))
        assert len(base.candidates(pattern)) == 2
        base.add(atom("edge", FConst("d"), FConst("b")))
        assert len(base.candidates(pattern)) == 3

    def test_factview_is_stable_under_appends(self):
        # The executor iterates candidate windows while derivation
        # appends to the same predicate; a view taken earlier must not
        # grow under its feet.
        base = self._base()
        view = base.candidates(atom("edge", FVar("X"), FVar("Y")))
        assert len(view) == 3
        base.add(atom("edge", FConst("d"), FConst("e")))
        assert len(view) == 3
        assert len(base.candidates(atom("edge", FVar("X"), FVar("Y")))) == 4


class TestDeltaHelpers:
    def test_candidate_count_bounds_candidates(self):
        # candidate_count is a planner estimate: it never builds an
        # index, so before the first fetch it is an upper bound; once
        # candidates() has built the index for a pattern shape, the
        # count is exact.
        base = FactBase(
            [atom("src", FConst("p1"), FConst("a")), atom("src", FConst("p2"), FConst("c"))]
        )
        for pattern in (
            atom("src", FVar("X"), FVar("S")),
            atom("src", FConst("p1"), FVar("S")),
            atom("zzz", FVar("X")),
        ):
            assert base.candidate_count(pattern) >= len(base.candidates(pattern))
            assert base.candidate_count(pattern) == len(base.candidates(pattern))

    def test_candidates_before(self):
        base = FactBase([atom("p", FConst("a"))])
        base.next_round()
        base.add(atom("p", FConst("b")))
        old = base.candidates_before(atom("p", FVar("X")), before_round=1)
        assert list(old) == [atom("p", FConst("a"))]


class TestRemoval:
    """remove / remove_all keep rows, segments, stamps and index
    buckets consistent — the incremental engine's physical deletion."""

    def base(self):
        base = FactBase()
        base.add(atom("edge", FConst("a"), FConst("b")))
        base.add(atom("edge", FConst("b"), FConst("c")))
        base.next_round()
        base.add(atom("edge", FConst("c"), FConst("d")))
        return base

    def test_remove_present(self):
        base = self.base()
        victim = atom("edge", FConst("b"), FConst("c"))
        assert base.remove(victim)
        assert victim not in base
        assert len(base) == 2

    def test_remove_absent_returns_false(self):
        base = self.base()
        assert not base.remove(atom("edge", FConst("x"), FConst("y")))
        assert len(base) == 3

    def test_remove_updates_candidates(self):
        base = self.base()
        victim = atom("edge", FConst("b"), FConst("c"))
        base.remove(victim)
        pattern = atom("edge", FVar("X"), FVar("Y"))
        assert victim not in list(base.candidates(pattern))
        assert len(list(base.candidates(pattern))) == 2

    def test_remove_updates_index_buckets(self):
        base = self.base()
        pattern = atom("edge", FConst("b"), FVar("Y"))
        assert len(list(base.candidates(pattern))) == 1  # builds an index
        base.remove(atom("edge", FConst("b"), FConst("c")))
        assert list(base.candidates(pattern)) == []

    def test_remove_preserves_round_partition(self):
        base = self.base()
        base.remove(atom("edge", FConst("a"), FConst("b")))
        pattern = atom("edge", FVar("X"), FVar("Y"))
        since_1 = list(base.candidates_since(pattern, 1))
        assert since_1 == [atom("edge", FConst("c"), FConst("d"))]
        old = list(base.candidates_before(pattern, 1))
        assert old == [atom("edge", FConst("b"), FConst("c"))]

    def test_remove_all_batch(self):
        base = self.base()
        doomed = [
            atom("edge", FConst("a"), FConst("b")),
            atom("edge", FConst("c"), FConst("d")),
            atom("edge", FConst("x"), FConst("y")),  # absent: skipped
        ]
        assert base.remove_all(doomed) == 2
        assert len(base) == 1
        pattern = atom("edge", FVar("X"), FVar("Y"))
        assert list(base.candidates(pattern)) == [
            atom("edge", FConst("b"), FConst("c"))
        ]

    def test_remove_all_with_live_index(self):
        base = self.base()
        pattern = atom("edge", FConst("c"), FVar("Y"))
        assert len(list(base.candidates(pattern))) == 1
        base.remove_all([atom("edge", FConst("c"), FConst("d"))])
        assert list(base.candidates(pattern)) == []

    def test_remove_last_fact_of_predicate(self):
        base = FactBase()
        fact = atom("p", FConst("a"))
        base.add(fact)
        base.remove(fact)
        assert len(base) == 0
        assert list(base.candidates(atom("p", FVar("X")))) == []
        # re-adding works after the store was cleaned up
        base.add(fact)
        assert fact in base
