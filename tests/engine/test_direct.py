"""Direct-engine tests: clustered evaluation, saturation, Example 3."""

import pytest

from repro.core.errors import SafetyError
from repro.core.terms import Const, Func
from repro.engine.direct import DirectEngine
from repro.lang.parser import parse_program, parse_query


class TestSaturation:
    def test_extensional_only(self, residual_program):
        engine = DirectEngine(residual_program)
        store = engine.saturate()
        assert store.has_type(Const("p"), "path")
        assert store.holds_label("src", Const("p"), Const("a"))
        assert store.holds_label("dest", Const("p"), Const("d"))

    def test_idempotent(self, path_program):
        engine = DirectEngine(path_program)
        first = engine.saturate().fact_count()
        second = engine.saturate().fact_count()
        assert first == second

    def test_path_closure(self, path_program):
        engine = DirectEngine(path_program)
        store = engine.saturate()
        # a 4-node chain has 6 paths
        assert len(store.ids_of_type("path")) == 6
        assert store.holds_label(
            "length", Func("id", (Const("a"), Const("d"))), Const(3)
        )

    def test_existential_head_variable_rejected(self, path_program_existential):
        engine = DirectEngine(path_program_existential)
        with pytest.raises(SafetyError):
            engine.saturate()

    def test_predicate_facts(self):
        program = parse_program(
            "edge(a, b).\nconnected(X, Y) :- edge(X, Y).\n"
        ).program
        engine = DirectEngine(program)
        store = engine.saturate()
        assert store.holds_pred("connected", (Const("a"), Const("b")))


class TestQueries:
    def test_example3(self, noun_phrase_program):
        engine = DirectEngine(noun_phrase_program)
        answers = engine.solve(parse_query(":- noun_phrase: X[num => plural]."))
        values = {a["X"] for a in answers}
        assert values == {
            Func("np", (Const("the"), Const("students"))),
            Func("np", (Const("all"), Const("students"))),
        }

    def test_subtype_query_through_hierarchy(self, noun_phrase_program):
        engine = DirectEngine(noun_phrase_program)
        all_nps = engine.solve(parse_query(":- noun_phrase: X."))
        assert len(all_nps) == 2 + 4  # john, bob + 4 common nps

    def test_ground_query_holds(self, residual_program):
        engine = DirectEngine(residual_program)
        assert engine.holds(parse_query(":- path: p[src => a]."))
        assert not engine.holds(parse_query(":- path: p[src => b]."))

    def test_value_variable_from_label_index(self, residual_program):
        engine = DirectEngine(residual_program)
        answers = engine.solve(parse_query(":- path: p[src => S]."))
        assert {a["S"] for a in answers} == {Const("a"), Const("c")}

    def test_conjunction_query(self, path_program):
        engine = DirectEngine(path_program)
        q = parse_query(":- path: P[src => a, dest => D], path: Q[src => D, dest => d].")
        answers = engine.solve(q)
        assert {(a["D"]) for a in answers} == {Const("b"), Const("c")}

    def test_builtin_in_query(self, path_program):
        engine = DirectEngine(path_program)
        q = parse_query(":- path: P[length => L], L > 2.")
        answers = engine.solve(q)
        assert {a["L"] for a in answers} == {Const(3)}

    def test_unification_builtin_in_query(self, path_program):
        engine = DirectEngine(path_program)
        q = parse_query(":- path: P[src => X, dest => Y], X = Y.")
        assert engine.solve(q) == []

    def test_type_constrained_value(self):
        program = parse_program(
            """
            node: a.
            city: b.
            thing: t[near => a, near => b].
            """
        ).program
        engine = DirectEngine(program)
        answers = engine.solve(parse_query(":- thing: t[near => city: X]."))
        assert {a["X"] for a in answers} == {Const("b")}

    def test_nested_description_in_query(self):
        program = parse_program(
            """
            person: john[child => person: mary[age => 5]].
            """
        ).program
        engine = DirectEngine(program)
        assert engine.holds(parse_query(":- person: john[child => X[age => 5]]."))
        assert not engine.holds(parse_query(":- person: john[child => X[age => 6]]."))

    def test_function_identity_query(self, path_program):
        engine = DirectEngine(path_program)
        answers = engine.solve(parse_query(":- path: id(a, X)."))
        assert {a["X"] for a in answers} == {Const("b"), Const("c"), Const("d")}

    def test_stats_accumulate(self, path_program):
        engine = DirectEngine(path_program)
        engine.solve(parse_query(":- path: P[src => a]."))
        assert engine.stats.candidates > 0
        assert engine.stats.label_probes > 0


class TestSaturationModes:
    """Delta (semi-naive) saturation agrees with naive everywhere."""

    def test_invalid_mode_rejected(self, path_program):
        from repro.core.errors import EngineError

        with pytest.raises(EngineError):
            DirectEngine(path_program, saturation_mode="warp")

    def test_same_fixpoint_on_paths(self, path_program):
        naive = DirectEngine(path_program, saturation_mode="naive")
        delta = DirectEngine(path_program, saturation_mode="delta")
        assert naive.saturate().fact_count() == delta.saturate().fact_count()
        assert naive.store.all_ids() == delta.store.all_ids()

    def test_same_fixpoint_on_grammar(self, noun_phrase_program):
        naive = DirectEngine(noun_phrase_program, saturation_mode="naive")
        delta = DirectEngine(noun_phrase_program, saturation_mode="delta")
        assert naive.saturate().fact_count() == delta.saturate().fact_count()

    def test_same_answers(self, path_program):
        q = parse_query(":- path: P[src => a, dest => D, length => L].")
        naive = DirectEngine(path_program, saturation_mode="naive").solve(q)
        delta = DirectEngine(path_program, saturation_mode="delta").solve(q)
        normalize = lambda answers: {tuple(sorted(a.items())) for a in answers}
        assert normalize(naive) == normalize(delta)

    def test_delta_with_negation(self):
        source = """
        node: a[linkto => b].
        node: b.
        haslink(X) :- node: X[linkto => Y].
        sink(X) :- node: X, \\+ haslink(X).
        """
        program = parse_program(source).program
        q = parse_query(":- sink(X).")
        naive = DirectEngine(program, saturation_mode="naive").solve(q)
        delta = DirectEngine(program, saturation_mode="delta").solve(q)
        assert naive == delta

    def test_delta_does_fewer_rounds_of_work(self):
        # The delta advantage needs a deep derivation; tiny programs pay
        # more in verification rounds than they save.  16-node chain:
        # 120 path objects over 15 rounds.
        lines = [f"node: n{i}[linkto => n{i + 1}]." for i in range(15)]
        lines.append(
            "path: id(X, Y)[src => X, dest => Y, length => 1] :- "
            "node: X[linkto => Y]."
        )
        lines.append(
            "path: id(X, Y)[src => X, dest => Y, length => L] :- "
            "node: X[linkto => Z], path: C0[src => Z, dest => Y, length => L0], "
            "L is L0 + 1."
        )
        program = parse_program("\n".join(lines)).program
        naive = DirectEngine(program, saturation_mode="naive")
        delta = DirectEngine(program, saturation_mode="delta")
        naive.saturate()
        delta.saturate()
        assert naive.store.fact_count() == delta.store.fact_count()
        # The delta engine touches far fewer candidates overall.
        assert delta.stats.candidates < naive.stats.candidates


class TestIncrementalAssert:
    def test_insert_extends_closure(self, path_program):
        engine = DirectEngine(path_program)
        engine.saturate()
        assert len(engine.store.ids_of_type("path")) == 6
        # Extend the chain: d -> e creates 4 new paths (a,b,c,d -> e).
        from repro.lang.parser import parse_atom

        engine.incremental_assert(parse_atom("node: d[linkto => e]"))
        assert len(engine.store.ids_of_type("path")) == 10
        q = parse_query(":- path: P[src => a, dest => e, length => L].")
        answers = engine.solve(q)
        assert [repr(a["L"]) for a in answers] == ["Const(4)"]

    def test_incremental_matches_from_scratch(self, path_program):
        from repro.core.builder import fact
        from repro.lang.parser import parse_atom, parse_term

        engine = DirectEngine(path_program)
        engine.incremental_assert(parse_atom("node: d[linkto => e]"))
        fresh_program = path_program.extended(
            fact(parse_term("node: d[linkto => e]"))
        )
        fresh = DirectEngine(fresh_program)
        fresh.saturate()
        assert engine.store.fact_count() == fresh.store.fact_count()
        assert engine.store.all_ids() == fresh.store.all_ids()

    def test_rejected_under_negation(self):
        from repro.core.errors import UnsupportedFeatureError
        from repro.lang.parser import parse_atom

        program = parse_program(
            "p(a).\nq(X) :- p(X), \\+ r(X).\n"
        ).program
        engine = DirectEngine(program)
        with pytest.raises(UnsupportedFeatureError):
            engine.incremental_assert(parse_atom("r(a)"))
