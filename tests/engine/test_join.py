"""Body-join unit tests (the shared bottom-up evaluation core)."""

import pytest

from repro.core.errors import SafetyError
from repro.engine.factbase import FactBase
from repro.engine.join import (
    JoinPlan,
    check_range_restricted,
    compile_body,
    join_body,
)
from repro.fol.atoms import FAtom, FBuiltin, NegAtom
from repro.fol.subst import Substitution
from repro.fol.terms import FApp, FConst, FVar


def atom(pred, *args):
    return FAtom(pred, tuple(args))


@pytest.fixture
def facts():
    return FactBase(
        [
            atom("edge", FConst("a"), FConst("b")),
            atom("edge", FConst("b"), FConst("c")),
            atom("n", FConst(1)),
            atom("n", FConst(2)),
        ]
    )


class TestJoin:
    def test_single_atom(self, facts):
        results = list(join_body([atom("edge", FVar("X"), FVar("Y"))], facts))
        assert len(results) == 2

    def test_conjunction_chains_bindings(self, facts):
        body = [
            atom("edge", FVar("X"), FVar("Y")),
            atom("edge", FVar("Y"), FVar("Z")),
        ]
        results = list(join_body(body, facts))
        assert len(results) == 1
        assert results[0]["Z"] == FConst("c")

    def test_initial_substitution(self, facts):
        initial = Substitution({"X": FConst("b")})
        results = list(join_body([atom("edge", FVar("X"), FVar("Y"))], facts, initial))
        assert len(results) == 1 and results[0]["Y"] == FConst("c")

    def test_builtin_in_body(self, facts):
        body = [
            atom("n", FVar("X")),
            FBuiltin("is", (FVar("Y"), FApp("*", (FVar("X"), FConst(10))))),
            FBuiltin(">", (FVar("Y"), FConst(15))),
        ]
        results = list(join_body(body, facts))
        assert len(results) == 1 and results[0]["Y"] == FConst(20)

    def test_empty_body_yields_initial(self, facts):
        assert list(join_body([], facts)) == [Substitution.empty()]

    def test_delta_position_restricts(self, facts):
        facts.next_round()
        facts.add(atom("edge", FConst("c"), FConst("d")))
        body = [atom("edge", FVar("X"), FVar("Y"))]
        fresh = list(join_body(body, facts, delta_position=0, delta_round=1))
        assert len(fresh) == 1 and fresh[0]["X"] == FConst("c")

    def test_negative_atom_ground_naf(self, facts):
        body = [
            atom("edge", FVar("X"), FVar("Y")),
            NegAtom(atom("edge", FVar("Y"), FConst("c"))),
        ]
        results = list(join_body(body, facts))
        # only (b, c) survives: edge(c, c) is absent; (a, b) fails since
        # edge(b, c) is present.
        assert len(results) == 1 and results[0]["X"] == FConst("b")

    def test_negative_atom_must_be_ground(self, facts):
        body = [NegAtom(atom("edge", FVar("X"), FVar("Y")))]
        with pytest.raises(SafetyError):
            list(join_body(body, facts))


class TestJoinPlan:
    def test_compile_body_is_cached(self):
        body = (atom("edge", FVar("X"), FVar("Y")),)
        assert compile_body(body) is compile_body(body)

    def test_plan_is_reusable_across_fact_bases(self, facts):
        plan = compile_body((atom("edge", FVar("X"), FVar("Y")),))
        assert isinstance(plan, JoinPlan)
        assert len(list(plan.run(facts))) == 2
        other = FactBase([atom("edge", FConst("x"), FConst("y"))])
        assert len(list(plan.run(other))) == 1
        # the first base is unaffected by runs against the second
        assert len(list(plan.run(facts))) == 2

    def test_run_delta_rejects_builtin_position(self, facts):
        plan = compile_body(
            (
                atom("n", FVar("X")),
                FBuiltin(">", (FVar("X"), FConst(1))),
            )
        )
        with pytest.raises(SafetyError):
            list(plan.run_delta(facts, delta_position=1, delta_round=0))

    def test_run_delta_restricts_earlier_positions_to_old(self):
        # Both edges are in the delta round; the self-join body must
        # not produce the (old, new) AND (new, old) pairing twice.
        base = FactBase([atom("edge", FConst("a"), FConst("b"))])
        base.next_round()
        base.add(atom("edge", FConst("b"), FConst("c")))
        body = (
            atom("edge", FVar("X"), FVar("Y")),
            atom("edge", FVar("Y"), FVar("Z")),
        )
        plan = compile_body(body)
        per_position = [
            set(plan.run_delta(base, position, delta_round=1))
            for position in (0, 1)
        ]
        assert per_position[0] & per_position[1] == set()
        assert len(per_position[0] | per_position[1]) == 1


class TestRangeRestriction:
    def test_safe_clause_passes(self):
        check_range_restricted(
            [atom("p", FVar("X"))], [atom("q", FVar("X"))]
        )

    def test_unsafe_head_variable(self):
        with pytest.raises(SafetyError):
            check_range_restricted([atom("p", FVar("X"))], [])

    def test_is_binds_head_variable(self):
        check_range_restricted(
            [atom("p", FVar("Y"))],
            [
                atom("q", FVar("X")),
                FBuiltin("is", (FVar("Y"), FApp("+", (FVar("X"), FConst(1))))),
            ],
        )

    def test_negative_atoms_do_not_bind(self):
        with pytest.raises(SafetyError):
            check_range_restricted(
                [atom("p", FVar("X"))], [NegAtom(atom("q", FVar("X")))]
            )
