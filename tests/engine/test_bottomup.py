"""Naive and semi-naive bottom-up evaluation tests."""

import pytest

from repro.core.errors import EngineError, SafetyError
from repro.engine.bottomup import (
    EvaluationStats,
    answer_query_bottomup,
    naive_fixpoint,
    normalize_clauses,
)
from repro.engine.seminaive import seminaive_fixpoint
from repro.fol.atoms import FAtom, FBuiltin, GeneralizedClause, HornClause
from repro.fol.terms import FApp, FConst, FVar
from repro.lang.parser import parse_program, parse_query
from repro.transform.clauses import program_to_fol, query_to_fol


def atom(pred, *args):
    return FAtom(pred, tuple(args))


def transitive_closure_clauses(n: int) -> list[HornClause]:
    """edge chain 0 -> 1 -> ... -> n with tc rules."""
    clauses = [
        HornClause(atom("edge", FConst(i), FConst(i + 1))) for i in range(n)
    ]
    clauses.append(
        HornClause(
            atom("tc", FVar("X"), FVar("Y")), (atom("edge", FVar("X"), FVar("Y")),)
        )
    )
    clauses.append(
        HornClause(
            atom("tc", FVar("X"), FVar("Z")),
            (atom("edge", FVar("X"), FVar("Y")), atom("tc", FVar("Y"), FVar("Z"))),
        )
    )
    return clauses


class TestNaive:
    def test_facts_only(self):
        facts = naive_fixpoint([HornClause(atom("p", FConst("a")))])
        assert atom("p", FConst("a")) in facts

    def test_transitive_closure_count(self):
        facts = naive_fixpoint(transitive_closure_clauses(5))
        tc_facts = facts.by_predicate(("tc", 2))
        assert len(tc_facts) == 5 * 6 // 2  # 15 pairs on a 6-node chain

    def test_unsafe_clause_rejected(self):
        unsafe = HornClause(atom("p", FVar("X")))
        with pytest.raises(SafetyError):
            naive_fixpoint([unsafe])

    def test_builtin_bound_head_variable_is_safe(self):
        clauses = [
            HornClause(atom("n", FConst(1))),
            HornClause(
                atom("m", FVar("Y")),
                (
                    atom("n", FVar("X")),
                    FBuiltin("is", (FVar("Y"), FApp("+", (FVar("X"), FConst(1))))),
                ),
            ),
        ]
        facts = naive_fixpoint(clauses)
        assert atom("m", FConst(2)) in facts

    def test_generalized_multi_head(self):
        """One body evaluation produces multiple results (Section 4)."""
        gen = GeneralizedClause(
            (atom("a", FVar("X")), atom("b", FVar("X"))),
            (atom("c", FVar("X")),),
        )
        facts = naive_fixpoint([HornClause(atom("c", FConst("k"))), gen])
        assert atom("a", FConst("k")) in facts
        assert atom("b", FConst("k")) in facts

    def test_nontermination_detected(self):
        grow = HornClause(
            atom("p", FApp("s", (FVar("X"),))), (atom("p", FVar("X")),)
        )
        with pytest.raises(EngineError):
            naive_fixpoint([HornClause(atom("p", FConst(0))), grow], max_rounds=20)

    def test_stats_populated(self):
        stats = EvaluationStats()
        naive_fixpoint(transitive_closure_clauses(4), stats=stats)
        assert stats.rounds >= 3
        assert stats.facts_new > 0
        assert stats.facts_derived >= stats.facts_new


class TestSemiNaive:
    def test_agrees_with_naive_on_tc(self):
        clauses = transitive_closure_clauses(7)
        assert naive_fixpoint(clauses).snapshot() == seminaive_fixpoint(clauses).snapshot()

    def test_agrees_on_translated_program(self, noun_phrase_program):
        fol = program_to_fol(noun_phrase_program)
        assert naive_fixpoint(fol).snapshot() == seminaive_fixpoint(fol).snapshot()

    def test_agrees_on_path_program(self, path_program):
        fol = program_to_fol(path_program)
        assert naive_fixpoint(fol).snapshot() == seminaive_fixpoint(fol).snapshot()

    def test_does_less_work(self):
        clauses = transitive_closure_clauses(12)
        naive_stats = EvaluationStats()
        semi_stats = EvaluationStats()
        naive_fixpoint(clauses, stats=naive_stats)
        seminaive_fixpoint(clauses, stats=semi_stats)
        assert semi_stats.facts_derived < naive_stats.facts_derived

    def test_unsafe_clause_rejected(self):
        with pytest.raises(SafetyError):
            seminaive_fixpoint([HornClause(atom("p", FVar("X")))])

    def test_multi_head(self):
        gen = GeneralizedClause(
            (atom("a", FVar("X")), atom("b", FVar("X"))),
            (atom("c", FVar("X")),),
        )
        facts = seminaive_fixpoint([HornClause(atom("c", FConst("k"))), gen])
        assert atom("a", FConst("k")) in facts and atom("b", FConst("k")) in facts


class TestQueryAnswering:
    def test_example3_answers(self, noun_phrase_program):
        facts = naive_fixpoint(program_to_fol(noun_phrase_program))
        goals = query_to_fol(parse_query(":- noun_phrase: X[num => plural]."))
        answers = {s["X"] for s in answer_query_bottomup(goals, facts)}
        assert answers == {
            FApp("np", (FConst("the"), FConst("students"))),
            FApp("np", (FConst("all"), FConst("students"))),
        }

    def test_duplicate_answers_suppressed(self):
        facts = naive_fixpoint(
            [
                HornClause(atom("p", FConst("a"), FConst(1))),
                HornClause(atom("p", FConst("a"), FConst(2))),
            ]
        )
        answers = list(
            answer_query_bottomup(
                [atom("p", FVar("X"), FVar("_Y"))], facts, variables={"X"}
            )
        )
        assert len(answers) == 1

    def test_normalize_rejects_garbage(self):
        with pytest.raises(EngineError):
            normalize_clauses(["nope"])
