"""SLD resolution tests (both selection rules)."""

import pytest

from repro.core.errors import EngineError
from repro.engine.bottomup import answer_query_bottomup, naive_fixpoint
from repro.engine.topdown import SLDEngine, SLDStats, solve_iterative_deepening
from repro.fol.atoms import FAtom, FBuiltin, HornClause
from repro.fol.terms import FApp, FConst, FVar
from repro.lang.parser import parse_query
from repro.transform.clauses import program_to_fol, query_to_fol


def atom(pred, *args):
    return FAtom(pred, tuple(args))


@pytest.fixture
def edge_program():
    return [
        HornClause(atom("edge", FConst("a"), FConst("b"))),
        HornClause(atom("edge", FConst("b"), FConst("c"))),
        HornClause(
            atom("tc", FVar("X"), FVar("Y")), (atom("edge", FVar("X"), FVar("Y")),)
        ),
        HornClause(
            atom("tc", FVar("X"), FVar("Z")),
            (atom("edge", FVar("X"), FVar("Y")), atom("tc", FVar("Y"), FVar("Z"))),
        ),
    ]


class TestBasics:
    def test_fact_lookup(self, edge_program):
        engine = SLDEngine(edge_program)
        answers = list(engine.solve([atom("edge", FConst("a"), FVar("Y"))]))
        assert len(answers) == 1 and answers[0]["Y"] == FConst("b")

    def test_recursion_with_depth_bound(self, edge_program):
        engine = SLDEngine(edge_program)
        answers = list(engine.solve([atom("tc", FConst("a"), FVar("Y"))], max_depth=10))
        values = {a["Y"] for a in answers}
        assert values == {FConst("b"), FConst("c")}

    def test_has_answer(self, edge_program):
        engine = SLDEngine(edge_program)
        assert engine.has_answer([atom("tc", FConst("a"), FConst("c"))], max_depth=10)
        assert not engine.has_answer([atom("tc", FConst("c"), FConst("a"))], max_depth=10)

    def test_depth_cutoff_counted(self, edge_program):
        stats = SLDStats()
        SLDEngine(edge_program).solve(
            [atom("tc", FVar("X"), FVar("Y"))], max_depth=2, stats=stats
        )
        list(
            SLDEngine(edge_program).solve(
                [atom("tc", FVar("X"), FVar("Y"))], max_depth=2, stats=stats
            )
        )
        assert stats.depth_cutoffs > 0

    def test_builtin_goals(self):
        program = [HornClause(atom("n", FConst(3)))]
        engine = SLDEngine(program)
        goals = [
            atom("n", FVar("X")),
            FBuiltin("is", (FVar("Y"), FApp("+", (FVar("X"), FConst(1))))),
        ]
        answers = list(engine.solve(goals))
        assert answers[0]["Y"] == FConst(4)

    def test_unknown_selection_rule(self, edge_program):
        with pytest.raises(EngineError):
            list(SLDEngine(edge_program).solve([atom("edge", FVar("X"), FVar("Y"))], select="zigzag"))

    def test_step_budget(self, edge_program):
        with pytest.raises(EngineError):
            list(
                SLDEngine(edge_program).solve(
                    [atom("tc", FVar("X"), FVar("Y"))], max_depth=50, max_steps=3
                )
            )


class TestSelectionRules:
    def test_smallest_agrees_with_leftmost(self, edge_program):
        engine = SLDEngine(edge_program)
        goals = [atom("tc", FVar("X"), FVar("Y"))]
        left = set(engine.solve(goals, max_depth=12, select="leftmost"))
        small = set(engine.solve(goals, max_depth=12, select="smallest"))
        assert left == small

    def test_smallest_postpones_unready_builtin(self):
        program = [HornClause(atom("n", FConst(3)))]
        engine = SLDEngine(program)
        # Builtin first: leftmost raises, smallest postpones it.
        goals = [
            FBuiltin("is", (FVar("Y"), FApp("+", (FVar("X"), FConst(1))))),
            atom("n", FVar("X")),
        ]
        answers = list(engine.solve(goals, select="smallest"))
        assert answers[0]["Y"] == FConst(4)

    def test_translated_example3_with_smallest(self, noun_phrase_program):
        fol = program_to_fol(noun_phrase_program)
        goals = query_to_fol(parse_query(":- noun_phrase: X[num => plural]."))
        engine = SLDEngine(fol)
        answers = set(engine.solve(goals, max_depth=20, select="smallest"))
        reference = set(answer_query_bottomup(goals, naive_fixpoint(fol)))
        assert answers == reference


class TestIterativeDeepening:
    def test_finds_all_answers(self, edge_program):
        engine = SLDEngine(edge_program)
        answers = solve_iterative_deepening(
            engine, [atom("edge", FVar("X"), FVar("Y"))], start_depth=2, max_depth=16
        )
        assert len(answers) == 2

    def test_raises_on_cap_with_cutoffs(self):
        # A cyclic graph makes the SLD tree for tc infinite: every
        # deepening level is cut off, so the cap raises.
        cyclic = [
            HornClause(atom("edge", FConst("a"), FConst("b"))),
            HornClause(atom("edge", FConst("b"), FConst("a"))),
            HornClause(
                atom("tc", FVar("X"), FVar("Y")), (atom("edge", FVar("X"), FVar("Y")),)
            ),
            HornClause(
                atom("tc", FVar("X"), FVar("Z")),
                (atom("edge", FVar("X"), FVar("Y")), atom("tc", FVar("Y"), FVar("Z"))),
            ),
        ]
        engine = SLDEngine(cyclic)
        with pytest.raises(EngineError):
            solve_iterative_deepening(
                engine, [atom("tc", FVar("X"), FVar("Y"))], start_depth=2, max_depth=8
            )
