"""Builtin evaluation unit tests."""

import pytest

from repro.core.errors import BuiltinError
from repro.engine.builtins import builtin_is_ready, eval_arith, solve_builtin
from repro.fol.atoms import FBuiltin
from repro.fol.subst import Substitution
from repro.fol.terms import FApp, FConst, FVar


def b(op, lhs, rhs):
    return FBuiltin(op, (lhs, rhs))


class TestEvalArith:
    def test_constant(self):
        assert eval_arith(FConst(7)) == 7

    def test_operations(self):
        assert eval_arith(FApp("+", (FConst(2), FConst(3)))) == 5
        assert eval_arith(FApp("-", (FConst(2), FConst(3)))) == -1
        assert eval_arith(FApp("*", (FConst(2), FConst(3)))) == 6
        assert eval_arith(FApp("//", (FConst(7), FConst(2)))) == 3
        assert eval_arith(FApp("mod", (FConst(7), FConst(2)))) == 1

    def test_nested(self):
        expr = FApp("+", (FConst(1), FApp("*", (FConst(2), FConst(3)))))
        assert eval_arith(expr) == 7

    def test_unbound_variable(self):
        with pytest.raises(BuiltinError):
            eval_arith(FVar("X"))

    def test_symbolic_constant(self):
        with pytest.raises(BuiltinError):
            eval_arith(FConst("a"))

    def test_division_by_zero(self):
        with pytest.raises(BuiltinError):
            eval_arith(FApp("//", (FConst(1), FConst(0))))

    def test_mod_by_zero(self):
        with pytest.raises(BuiltinError):
            eval_arith(FApp("mod", (FConst(1), FConst(0))))

    def test_unknown_functor(self):
        with pytest.raises(BuiltinError):
            eval_arith(FApp("**", (FConst(1), FConst(2))))


class TestSolveBuiltin:
    def test_is_binds_result(self):
        subst = solve_builtin(
            b("is", FVar("L"), FApp("+", (FConst(1), FConst(2)))), Substitution.empty()
        )
        assert subst["L"] == FConst(3)

    def test_is_checks_bound_result(self):
        ok = solve_builtin(b("is", FConst(3), FConst(3)), Substitution.empty())
        assert ok is not None
        bad = solve_builtin(b("is", FConst(4), FConst(3)), Substitution.empty())
        assert bad is None

    def test_is_uses_substitution(self):
        initial = Substitution({"L0": FConst(2)})
        subst = solve_builtin(
            b("is", FVar("L"), FApp("+", (FVar("L0"), FConst(1)))), initial
        )
        assert subst["L"] == FConst(3)

    def test_comparisons(self):
        empty = Substitution.empty()
        assert solve_builtin(b("<", FConst(1), FConst(2)), empty) is not None
        assert solve_builtin(b("<", FConst(2), FConst(1)), empty) is None
        assert solve_builtin(b(">=", FConst(2), FConst(2)), empty) is not None
        assert solve_builtin(b("=:=", FConst(2), FConst(2)), empty) is not None
        assert solve_builtin(b("=\\=", FConst(2), FConst(2)), empty) is None

    def test_unification_builtin(self):
        subst = solve_builtin(
            b("=", FVar("X"), FApp("f", (FConst("a"),))), Substitution.empty()
        )
        assert subst["X"] == FApp("f", (FConst("a"),))

    def test_unification_failure(self):
        assert solve_builtin(b("=", FConst("a"), FConst("b")), Substitution.empty()) is None

    def test_insufficient_instantiation(self):
        with pytest.raises(BuiltinError):
            solve_builtin(b("<", FVar("X"), FConst(1)), Substitution.empty())


class TestReadiness:
    def test_is_ready(self):
        assert builtin_is_ready(
            b("is", FVar("L"), FConst(1)), Substitution.empty()
        )
        assert not builtin_is_ready(
            b("is", FVar("L"), FVar("L0")), Substitution.empty()
        )
        assert builtin_is_ready(
            b("is", FVar("L"), FVar("L0")), Substitution({"L0": FConst(2)})
        )

    def test_comparison_ready(self):
        assert not builtin_is_ready(b("<", FVar("X"), FConst(1)), Substitution.empty())
        assert builtin_is_ready(b("<", FConst(0), FConst(1)), Substitution.empty())

    def test_unify_always_ready(self):
        assert builtin_is_ready(b("=", FVar("X"), FVar("Y")), Substitution.empty())
