"""C-level identity unification tests."""

from repro.core.terms import Const, Func, Var
from repro.engine.cunify import apply_binding, resolve, strip_identity, unify_identities
from repro.lang.parser import parse_term


class TestStripIdentity:
    def test_labels_removed_everywhere(self):
        t = parse_term("path: id(a[w => 1], b)[src => a]")
        stripped = strip_identity(t)
        assert stripped == Func("id", (Const("a"), Const("b")), "path")

    def test_plain_terms_unchanged(self):
        assert strip_identity(Var("X")) == Var("X")


class TestUnifyIdentities:
    def test_constants(self):
        assert unify_identities(Const("a"), Const("a")) == {}
        assert unify_identities(Const("a"), Const("b")) is None

    def test_int_vs_str(self):
        assert unify_identities(Const(1), Const("1")) is None

    def test_types_do_not_block_unification(self):
        """Type annotations are constraints, not identity structure."""
        assert unify_identities(Const("a", "node"), Const("a", "city")) == {}

    def test_variable_binding(self):
        binding = unify_identities(Var("X"), Const("a"))
        assert binding == {"X": Const("a")}

    def test_labels_ignored(self):
        """p[src => a] and p[dest => b] denote the same object."""
        left = parse_term("path: p[src => a]")
        right = parse_term("path: p[dest => b]")
        assert unify_identities(left, right) == {}

    def test_function_structures(self):
        left = parse_term("id(X, b)")
        right = parse_term("id(a, Y)")
        binding = unify_identities(left, right)
        assert apply_binding(Var("X"), binding) == Const("a")
        assert apply_binding(Var("Y"), binding) == Const("b")

    def test_occurs_check(self):
        assert unify_identities(Var("X"), parse_term("f(X)")) is None

    def test_functor_clash(self):
        assert unify_identities(parse_term("f(a)"), parse_term("g(a)")) is None

    def test_extends_binding_without_mutation(self):
        binding = {"X": Const("a")}
        out = unify_identities(Var("Y"), Var("X"), binding)
        assert out is not binding
        assert "Y" in out and binding == {"X": Const("a")}

    def test_inconsistent_with_binding(self):
        binding = {"X": Const("a")}
        assert unify_identities(Var("X"), Const("b"), binding) is None


class TestApplyBinding:
    def test_triangular_resolution(self):
        binding = {"X": Var("Y"), "Y": Const("a")}
        assert apply_binding(Var("X"), binding) == Const("a")
        assert resolve(Var("X"), binding) == Const("a")

    def test_inside_functions(self):
        binding = {"X": Const("a")}
        assert apply_binding(parse_term("id(X, b)"), binding) == Func(
            "id", (Const("a"), Const("b"))
        )
