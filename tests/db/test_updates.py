"""Dynamic-type update tests (Section 2.3)."""

import pytest

from repro.core.errors import StoreError
from repro.core.terms import Const
from repro.db.updates import UpdatableStore
from repro.lang.parser import parse_term


@pytest.fixture
def db():
    db = UpdatableStore()
    db.insert(parse_term("person: john[children => {bob, bill}]"))
    db.insert(parse_term("person: mary"))
    return db


class TestInserts:
    def test_insert(self, db):
        assert db.store.has_type(Const("john"), "person")

    def test_add_to_type_changes_membership(self, db):
        """Membership is part of the database state, changed by updates —
        no structural precondition applies."""
        assert not db.store.has_type(Const("mary"), "parent")
        db.add_to_type(Const("mary"), "parent")
        assert db.store.has_type(Const("mary"), "parent")

    def test_add_label(self, db):
        db.add_label(Const("mary"), "children", Const("ann"))
        assert db.store.holds_label("children", Const("mary"), Const("ann"))
        assert Const("ann") in db.store.all_ids()

    def test_default_type_is_object(self, db):
        db.insert(parse_term("loose_thing"))
        assert db.store.has_type(Const("loose_thing"), "object")
        assert db.store.asserted_types(Const("loose_thing")) == {"object"}


class TestRetracts:
    def test_remove_from_type(self, db):
        db.add_to_type(Const("mary"), "parent")
        assert db.remove_from_type(Const("mary"), "parent")
        assert not db.store.has_type(Const("mary"), "parent")

    def test_remove_from_type_missing(self, db):
        assert not db.remove_from_type(Const("mary"), "parent")

    def test_remove_from_object_rejected(self, db):
        with pytest.raises(StoreError):
            db.remove_from_type(Const("mary"), "object")

    def test_remove_label(self, db):
        assert db.remove_label(Const("john"), "children", Const("bob"))
        assert not db.store.holds_label("children", Const("john"), Const("bob"))
        assert db.store.holds_label("children", Const("john"), Const("bill"))
        # inverted index maintained
        assert Const("john") not in db.store.label_hosts("children", Const("bob"))

    def test_remove_label_missing(self, db):
        assert not db.remove_label(Const("john"), "children", Const("zed"))

    def test_remove_object_clears_everything(self, db):
        assert db.remove_object(Const("john"))
        assert Const("john") not in db.store.all_ids()
        assert db.store.label_values("children", Const("john")) == frozenset()
        assert not db.store.has_type(Const("john"), "person")

    def test_remove_object_as_label_value(self, db):
        """Deleting bob removes the pairs he participates in as a value."""
        assert db.remove_object(Const("bob"))
        assert not db.store.holds_label("children", Const("john"), Const("bob"))
        assert db.store.holds_label("children", Const("john"), Const("bill"))

    def test_remove_object_clears_predicates(self):
        db = UpdatableStore()
        from repro.lang.parser import parse_atom

        db.store.assert_atom(parse_atom("edge(a, b)"))
        db.remove_object(Const("a"))
        assert not db.store.holds_pred("edge", (Const("a"), Const("b")))

    def test_remove_missing_object(self, db):
        assert not db.remove_object(Const("ghost"))

    def test_remove_object_clears_clustered(self, db):
        db.remove_object(Const("john"))
        identities = {repr(f) for f in db.store.clustered_facts()}
        assert not any("john" in i for i in identities)


class TestRetractEdgeCases:
    def test_last_type_retracted_object_still_in_label_pairs(self, db):
        """Retracting bob's last proper type must not tear him out of
        the active domain: john's ``children`` pairs still reference
        him, and those pairs must survive."""
        db.add_to_type(Const("bob"), "boy")
        assert db.remove_from_type(Const("bob"), "boy")
        assert db.store.asserted_types(Const("bob")) == {"object"}
        assert Const("bob") in db.store.all_ids()
        assert db.store.holds_label("children", Const("john"), Const("bob"))

    def test_double_retract_type_is_idempotent_false(self, db):
        db.add_to_type(Const("mary"), "parent")
        assert db.remove_from_type(Const("mary"), "parent")
        assert not db.remove_from_type(Const("mary"), "parent")

    def test_double_retract_label_is_idempotent_false(self, db):
        assert db.remove_label(Const("john"), "children", Const("bob"))
        assert not db.remove_label(Const("john"), "children", Const("bob"))
        # the surviving pair is untouched by the second attempt
        assert db.store.holds_label("children", Const("john"), Const("bill"))

    def test_double_retract_object_is_idempotent_false(self, db):
        assert db.remove_object(Const("john"))
        assert not db.remove_object(Const("john"))


def _state(db):
    """Deep copy of every index — for exact-restoration assertions."""
    import copy

    s = db.store
    return copy.deepcopy(
        {
            "all_ids": s._all_ids,
            "types": s._types,
            "types_of": s._types_of,
            "labels": s._labels,
            "labels_inv": s._labels_inv,
            "pairs": s._label_pairs,
            "preds": s._preds,
            "clustered": s._clustered,
            "stamps": s._stamps,
        }
    )


class TestStoreTransaction:
    def test_commit_keeps_mutations(self, db):
        with db.transaction():
            db.insert(parse_term("person: ann"))
        assert db.store.has_type(Const("ann"), "person")
        assert db.store._journal is None

    def test_exception_rolls_back_exactly(self, db):
        before = _state(db)
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.insert(parse_term("person: ann[children => {zed}]"))
                db.remove_label(Const("john"), "children", Const("bob"))
                db.remove_object(Const("mary"))
                raise RuntimeError("abort")
        assert _state(db) == before

    def test_rollback_to_empty_store(self):
        db = UpdatableStore()
        before = _state(db)
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.insert(parse_term("person: ann[children => {zed}]"))
                raise RuntimeError("abort")
        assert _state(db) == before

    def test_explicit_rollback(self, db):
        before = _state(db)
        txn = db.transaction().__enter__()
        db.remove_object(Const("john"))
        assert txn.rollback() > 0
        assert _state(db) == before

    def test_add_then_remove_same_fact_rolls_back_clean(self, db):
        before = _state(db)
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.add_to_type(Const("mary"), "parent")
                db.remove_from_type(Const("mary"), "parent")
                raise RuntimeError("abort")
        assert _state(db) == before

    def test_nested_transaction_rejected(self, db):
        with db.transaction():
            with pytest.raises(StoreError):
                db.store.begin_journal()

    def test_predicate_rows_roll_back(self):
        from repro.lang.parser import parse_atom

        db = UpdatableStore()
        db.store.assert_atom(parse_atom("edge(a, b)"))
        before = _state(db)
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.store.assert_atom(parse_atom("edge(b, c)"))
                db.remove_object(Const("a"))
                raise RuntimeError("abort")
        assert _state(db) == before


class TestAddTypePromotion:
    def test_public_add_type(self, db):
        assert db.store.add_type("parent", Const("mary"))
        assert db.store.has_type(Const("mary"), "parent")
        assert not db.store.add_type("parent", Const("mary"))

    def test_private_alias_warns_but_works(self, db):
        with pytest.warns(DeprecationWarning):
            assert db.store._add_type("parent", Const("mary"))
        assert db.store.has_type(Const("mary"), "parent")
