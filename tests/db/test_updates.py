"""Dynamic-type update tests (Section 2.3)."""

import pytest

from repro.core.errors import StoreError
from repro.core.terms import Const
from repro.db.updates import UpdatableStore
from repro.lang.parser import parse_term


@pytest.fixture
def db():
    db = UpdatableStore()
    db.insert(parse_term("person: john[children => {bob, bill}]"))
    db.insert(parse_term("person: mary"))
    return db


class TestInserts:
    def test_insert(self, db):
        assert db.store.has_type(Const("john"), "person")

    def test_add_to_type_changes_membership(self, db):
        """Membership is part of the database state, changed by updates —
        no structural precondition applies."""
        assert not db.store.has_type(Const("mary"), "parent")
        db.add_to_type(Const("mary"), "parent")
        assert db.store.has_type(Const("mary"), "parent")

    def test_add_label(self, db):
        db.add_label(Const("mary"), "children", Const("ann"))
        assert db.store.holds_label("children", Const("mary"), Const("ann"))
        assert Const("ann") in db.store.all_ids()

    def test_default_type_is_object(self, db):
        db.insert(parse_term("loose_thing"))
        assert db.store.has_type(Const("loose_thing"), "object")
        assert db.store.asserted_types(Const("loose_thing")) == {"object"}


class TestRetracts:
    def test_remove_from_type(self, db):
        db.add_to_type(Const("mary"), "parent")
        assert db.remove_from_type(Const("mary"), "parent")
        assert not db.store.has_type(Const("mary"), "parent")

    def test_remove_from_type_missing(self, db):
        assert not db.remove_from_type(Const("mary"), "parent")

    def test_remove_from_object_rejected(self, db):
        with pytest.raises(StoreError):
            db.remove_from_type(Const("mary"), "object")

    def test_remove_label(self, db):
        assert db.remove_label(Const("john"), "children", Const("bob"))
        assert not db.store.holds_label("children", Const("john"), Const("bob"))
        assert db.store.holds_label("children", Const("john"), Const("bill"))
        # inverted index maintained
        assert Const("john") not in db.store.label_hosts("children", Const("bob"))

    def test_remove_label_missing(self, db):
        assert not db.remove_label(Const("john"), "children", Const("zed"))

    def test_remove_object_clears_everything(self, db):
        assert db.remove_object(Const("john"))
        assert Const("john") not in db.store.all_ids()
        assert db.store.label_values("children", Const("john")) == frozenset()
        assert not db.store.has_type(Const("john"), "person")

    def test_remove_object_as_label_value(self, db):
        """Deleting bob removes the pairs he participates in as a value."""
        assert db.remove_object(Const("bob"))
        assert not db.store.holds_label("children", Const("john"), Const("bob"))
        assert db.store.holds_label("children", Const("john"), Const("bill"))

    def test_remove_object_clears_predicates(self):
        db = UpdatableStore()
        from repro.lang.parser import parse_atom

        db.store.assert_atom(parse_atom("edge(a, b)"))
        db.remove_object(Const("a"))
        assert not db.store.holds_pred("edge", (Const("a"), Const("b")))

    def test_remove_missing_object(self, db):
        assert not db.remove_object(Const("ghost"))

    def test_remove_object_clears_clustered(self, db):
        db.remove_object(Const("john"))
        identities = {repr(f) for f in db.store.clustered_facts()}
        assert not any("john" in i for i in identities)
