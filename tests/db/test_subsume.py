"""Description subsumption ordering tests (Section 4 / [6])."""

import pytest

from repro.core.errors import StoreError
from repro.core.terms import Const, Var
from repro.core.types import TypeHierarchy
from repro.db.store import ObjectStore
from repro.db.subsume import answers_by_subsumption, description_leq
from repro.lang.parser import parse_term


class TestDescriptionLeq:
    def test_fewer_labels_is_more_general(self):
        general = parse_term("path: p[src => a]")
        specific = parse_term("path: p[src => a, dest => b]")
        assert description_leq(general, specific)
        assert not description_leq(specific, general)

    def test_reflexive(self):
        d = parse_term("path: p[src => a]")
        assert description_leq(d, d)

    def test_identity_mismatch(self):
        assert not description_leq(
            parse_term("path: p[src => a]"), parse_term("path: q[src => a]")
        )

    def test_value_subset_semantics(self):
        general = parse_term("p[src => {a}]")
        specific = parse_term("p[src => {a, c}]")
        assert description_leq(general, specific)
        assert not description_leq(specific, general)

    def test_type_direction(self):
        hierarchy = TypeHierarchy()
        hierarchy.declare("student", "person")
        general = parse_term("person: x")
        specific = parse_term("student: x")
        assert description_leq(general, specific, hierarchy)
        assert not description_leq(specific, general, hierarchy)

    def test_object_general_type(self):
        assert description_leq(parse_term("x"), parse_term("student: x"))

    def test_requires_ground(self):
        with pytest.raises(StoreError):
            description_leq(parse_term("p[src => X]"), parse_term("p[src => a]"))


class TestAnswersBySubsumption:
    @pytest.fixture
    def store(self):
        store = ObjectStore()
        store.assert_description(parse_term("path: p[src => a, dest => b]"))
        store.assert_description(parse_term("path: p[src => c, dest => d]"))
        store.assert_description(parse_term("path: q[src => a, dest => e]"))
        return store

    def test_ground_cross_fact_query(self, store):
        answers = list(answers_by_subsumption(parse_term("path: p[src => a, dest => d]"), store))
        assert answers == [{}]

    def test_variable_identity(self, store):
        answers = list(answers_by_subsumption(parse_term("path: X[src => a]"), store))
        bound = {a["X"] for a in answers}
        assert bound == {Const("p"), Const("q")}

    def test_variable_values(self, store):
        answers = list(answers_by_subsumption(parse_term("path: q[dest => D]"), store))
        assert [a["D"] for a in answers] == [Const("e")]

    def test_no_match(self, store):
        assert list(answers_by_subsumption(parse_term("path: p[src => z]"), store)) == []

    def test_repeated_variable_consistency(self, store):
        store.assert_description(parse_term("path: r[src => x, dest => x]"))
        answers = list(
            answers_by_subsumption(parse_term("path: X[src => V, dest => V]"), store)
        )
        assert {(a["X"], a["V"]) for a in answers} == {(Const("r"), Const("x"))}
