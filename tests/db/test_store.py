"""ObjectStore unit tests."""

import pytest

from repro.core.decompose import normalize_term
from repro.core.errors import StoreError
from repro.core.formulas import PredAtom
from repro.core.terms import Const, Func, Var
from repro.core.types import TypeHierarchy
from repro.db.store import ObjectStore, ground_id
from repro.lang.parser import parse_atom, parse_term


class TestGroundId:
    def test_erases_types(self):
        assert ground_id(Const("john", "person")) == Const("john")

    def test_strips_labels(self):
        assert ground_id(parse_term("path: p[src => a]")) == Const("p")

    def test_recursive(self):
        t = parse_term("path: id(node: a, b[w => 1])")
        assert ground_id(t) == Func("id", (Const("a"), Const("b")))

    def test_rejects_variables(self):
        with pytest.raises(StoreError):
            ground_id(Var("X"))

    def test_identity_fast_path(self):
        t = Const("a")
        assert ground_id(t) is t


class TestAssertion:
    def test_description_populates_indexes(self):
        store = ObjectStore()
        store.assert_description(parse_term("path: p1[src => a, dest => b]"))
        assert store.has_type(Const("p1"), "path")
        assert store.holds_label("src", Const("p1"), Const("a"))
        assert store.label_values("dest", Const("p1")) == {Const("b")}
        assert store.label_hosts("src", Const("a")) == {Const("p1")}

    def test_values_join_active_domain(self):
        store = ObjectStore()
        store.assert_description(parse_term("path: p1[src => a]"))
        assert Const("a") in store.all_ids()
        assert store.has_type(Const("a"), "object")

    def test_typed_values_keep_their_types(self):
        store = ObjectStore()
        store.assert_description(parse_term("person: john[children => person: bob]"))
        assert store.has_type(Const("bob"), "person")

    def test_function_identity_asserts_args(self):
        store = ObjectStore()
        store.assert_description(parse_term("path: id(a, b)[length => 1]"))
        identity = Func("id", (Const("a"), Const("b")))
        assert store.has_type(identity, "path")
        assert Const("a") in store.all_ids()

    def test_predicate_atom(self):
        store = ObjectStore()
        store.assert_atom(parse_atom("edge(a, b)"))
        assert store.holds_pred("edge", (Const("a"), Const("b")))
        assert Const("a") in store.all_ids()

    def test_non_ground_rejected(self):
        store = ObjectStore()
        with pytest.raises(StoreError):
            store.assert_description(parse_term("path: p[src => X]"))

    def test_returns_changed_flag(self):
        store = ObjectStore()
        assert store.assert_description(parse_term("node: a"))
        assert not store.assert_description(parse_term("node: a"))

    def test_collection_values(self):
        store = ObjectStore()
        store.assert_description(parse_term("person: john[children => {bob, bill}]"))
        assert store.label_values("children", Const("john")) == {
            Const("bob"),
            Const("bill"),
        }


class TestHierarchyQueries:
    @pytest.fixture
    def store(self):
        hierarchy = TypeHierarchy()
        hierarchy.declare("proper_np", "noun_phrase")
        hierarchy.declare("common_np", "noun_phrase")
        store = ObjectStore(hierarchy)
        store.assert_description(parse_term("proper_np: john"))
        store.assert_description(parse_term("common_np: np1"))
        store.assert_description(parse_term("verb: runs"))
        return store

    def test_membership_modulo_hierarchy(self, store):
        assert store.has_type(Const("john"), "noun_phrase")
        assert not store.has_type(Const("runs"), "noun_phrase")

    def test_extent_closed_downward(self, store):
        assert store.ids_of_type("noun_phrase") == {Const("john"), Const("np1")}

    def test_object_is_active_domain(self, store):
        assert store.ids_of_type("object") == store.all_ids()
        assert store.has_type(Const("runs"), "object")


class TestMergedDescriptions:
    def test_merges_partial_facts(self):
        store = ObjectStore()
        store.assert_description(parse_term("path: p[src => a, dest => b]"))
        store.assert_description(parse_term("path: p[src => c, dest => d]"))
        merged = store.merged_description(Const("p"))
        assert normalize_term(merged) == normalize_term(
            parse_term("path: p[src => {a, c}, dest => {b, d}]")
        )

    def test_object_without_labels(self):
        store = ObjectStore()
        store.assert_description(parse_term("node: a"))
        assert store.merged_description(Const("a")) == Const("a", "node")

    def test_merged_descriptions_iteration(self):
        store = ObjectStore()
        store.assert_description(parse_term("node: a[linkto => b]"))
        descriptions = list(store.merged_descriptions())
        assert len(descriptions) == len(store.all_ids())


class TestBookkeeping:
    def test_fact_count_and_repr(self):
        store = ObjectStore()
        store.assert_description(parse_term("path: p[src => a]"))
        # types: path(p), object(a); label: src(p, a)
        assert store.fact_count() == 3
        assert "ObjectStore" in repr(store)

    def test_rounds_stamp_new_facts(self):
        store = ObjectStore()
        store.assert_description(parse_term("node: a"))
        store.next_round()
        store.assert_description(parse_term("node: b"))
        assert store.stamp(("t", "node", Const("a"))) == 0
        assert store.stamp(("t", "node", Const("b"))) == 1

    def test_clustered_facts_keep_originals(self):
        store = ObjectStore()
        original = parse_term("path: p[src => a, dest => b]")
        store.assert_description(original)
        assert store.clustered_facts() == [original]

    def test_clustered_facts_deduplicate(self):
        store = ObjectStore()
        fact = parse_term("node: a")
        store.assert_description(fact)
        store.assert_description(fact)
        assert store.clustered_facts() == [fact]

    def test_label_count(self):
        store = ObjectStore()
        store.assert_description(parse_term("p[l => {a, b, c}]"))
        assert store.label_count("l") == 3
        assert store.label_count("zzz") == 0
