"""The O-logic baseline and the schema layer agree on functionality.

O-logic hard-wires what the schema layer declares per label: a program
is O-logic consistent iff a schema demanding functionality of *every*
label holds of its minimal model.  This cross-module test keeps the two
implementations honest against each other.
"""

import pytest

from repro.engine.direct import DirectEngine
from repro.lang.parser import parse_program
from repro.olog import check_consistency
from repro.schema import FunctionalLabel, Schema

PROGRAMS = [
    # consistent under both
    "path: p1[src => a, dest => b].\npath: p2[src => c, dest => d].",
    # one violation
    'john[name => "A"].\njohn[name => "B"].',
    # violation via a rule
    "emp: e1[boss => b1].\npromoted(e1).\nemp: X[boss => b2] :- promoted(X).",
    # multi-valued by collection
    "person: john[children => {a, b, c}].",
    # two labels, one violated
    "p[src => a].\np[src => b].\np[dest => c].",
]


@pytest.mark.parametrize("source", PROGRAMS)
def test_olog_equals_all_labels_functional_schema(source):
    program = parse_program(source).program
    olog_violations = check_consistency(program)

    engine = DirectEngine(program)
    store = engine.saturate()
    schema = Schema([FunctionalLabel(label) for label in sorted(store.labels())])
    schema_violations = schema.check(store)

    assert len(olog_violations) == len(schema_violations)
    olog_keys = {(v.label, v.host) for v in olog_violations}
    schema_keys = {
        (v.constraint.split("(")[1].rstrip(")"), v.subject) for v in schema_violations
    }
    assert olog_keys == schema_keys
