"""O-logic baseline tests (Section 2.2) — experiment E8's assertions."""

import pytest

from repro.core.errors import ConsistencyError
from repro.core.terms import Const
from repro.lang.parser import parse_program
from repro.olog import (
    TOP,
    ValueLattice,
    check_consistency,
    lattice_label_value,
    require_consistent,
)


class TestGlobalInconsistency:
    def test_john_names_is_inconsistent(self, john_names_program):
        """The paper's example: two names for john => no models."""
        violations = check_consistency(john_names_program)
        assert len(violations) == 1
        violation = violations[0]
        assert violation.label == "name"
        assert violation.host == Const("john")
        assert set(violation.values) == {Const("John"), Const("John Smith")}

    def test_require_consistent_raises(self, john_names_program):
        with pytest.raises(ConsistencyError):
            require_consistent(john_names_program)

    def test_functional_program_is_consistent(self):
        program = parse_program(
            """
            path: p1[src => a, dest => b].
            path: p2[src => c, dest => d].
            """
        ).program
        assert check_consistency(program) == []
        require_consistent(program)  # does not raise

    def test_same_value_twice_is_fine(self):
        program = parse_program(
            """
            john[age => 28].
            john[age => 28].
            """
        ).program
        assert check_consistency(program) == []

    def test_multivalued_c_logic_program_fails_as_olog(self, children_program):
        """A perfectly good C-logic program (several children) has no
        O-logic models — the paper's argument for multi-valued labels."""
        violations = check_consistency(children_program)
        assert violations and violations[0].label == "children"

    def test_inconsistency_via_rules_requires_evaluation(self):
        """Consistency checking 'essentially requires evaluating the
        whole program': the violation only appears after the rule fires."""
        program = parse_program(
            """
            emp: e1[boss => b1].
            promoted(e1).
            emp: X[boss => b2] :- promoted(X).
            """
        ).program
        violations = check_consistency(program)
        assert violations and violations[0].label == "boss"

    def test_violation_str_is_readable(self, john_names_program):
        text = str(check_consistency(john_names_program)[0])
        assert "name" in text and "john" in text


class TestLatticeAlternative:
    def test_unrelated_values_join_to_top(self):
        """john[name => T] under the lattice semantics: 'John' and
        'John Smith' have no common super-object except T."""
        assert lattice_label_value(["John", "John Smith"]) == TOP

    def test_single_value_unchanged(self):
        assert lattice_label_value(["John"]) == "John"

    def test_join_with_declared_superobject(self):
        lattice = ValueLattice([("John", "a_john"), ("John Smith", "a_john")])
        assert lattice_label_value(["John", "John Smith"], lattice) == "a_john"

    def test_join_is_least(self):
        lattice = ValueLattice(
            [("x", "mid"), ("y", "mid"), ("mid", "high")]
        )
        assert lattice.join("x", "y") == "mid"

    def test_ambiguous_bounds_go_to_top(self):
        lattice = ValueLattice([("x", "m1"), ("y", "m1"), ("x", "m2"), ("y", "m2")])
        # m1 and m2 are incomparable common bounds: no least one.
        assert lattice.join("x", "y") == TOP

    def test_requires_a_value(self):
        with pytest.raises(ConsistencyError):
            lattice_label_value([])
