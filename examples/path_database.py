#!/usr/bin/env python3
"""Section 2.1's path rules under all three identity readings.

The entity-creating rules

    path: C[src => X, dest => Y, length => L] :- node: X[linkto => Y], L is 1.
    path: C[src => X, dest => Y, length => L] :-
        node: X[linkto => Z],
        path: C0[src => Z, dest => Y, length => L0],
        L is L0 + 1.

leave the identity C underdetermined.  The paper enumerates three
reasonable semantics for what determines a path object:

1. the node objects at both ends only              (C depends on X, Y);
2. both ends and the length                        (C depends on X, Y, L);
3. the sequence of node objects of the path        (C depends on X and,
   in the recursive rule, on C0 — the extended path's identity encodes
   the rest of the sequence).

On a graph with several routes of different lengths between the same
endpoints the three readings create different numbers of path objects;
this example builds an asymmetric diamond and reports the counts.

Run with::

    python examples/path_database.py
"""

from repro import KnowledgeBase

# Two routes a -> d of different lengths, plus a tail:
#
#     a -> b -> d -> e          (a -> d in 2 hops)
#     a -> c -> c2 -> d         (a -> d in 3 hops)
GRAPH = """
node: a[linkto => {b, c}].
node: b[linkto => d].
node: c[linkto => c2].
node: c2[linkto => d].
node: d[linkto => e].
"""

RULES = """
path: C[src => X, dest => Y, length => L] :- node: X[linkto => Y], L is 1.
path: C[src => X, dest => Y, length => L] :-
    node: X[linkto => Z],
    path: C0[src => Z, dest => Y, length => L0],
    L is L0 + 1.
"""

BASE_RULE = 5       # index of the single-link rule in the program
RECURSIVE_RULE = 6  # index of the extending rule

#: reading name -> (deps for the base rule, deps for the recursive rule)
READINGS = {
    "ends only (VX VY EC)": (("X", "Y"), ("X", "Y")),
    "ends + length (VX VY VL EC)": (("X", "Y", "L"), ("X", "Y", "L")),
    "node sequence (VX VC0 EC)": (("X", "Y"), ("X", "C0")),
}


# Workload hooks for ``repro trace examples/path_database.py`` — the
# observability CLI builds a knowledge base from these instead of
# running main().  The identity reading is the paper's third one (one
# path object per node sequence).
TRACE_SOURCE = GRAPH + RULES
TRACE_IDENTITIES = [
    {"variable": "C", "depends_on": ("X", "Y"), "clause_index": BASE_RULE},
    {"variable": "C", "depends_on": ("X", "C0"), "clause_index": RECURSIVE_RULE},
]
TRACE_QUERIES = ["path: P[src => a, dest => d, length => L]"]


def build(base_deps: tuple[str, ...], rec_deps: tuple[str, ...]) -> KnowledgeBase:
    kb = KnowledgeBase.from_source(GRAPH + RULES)
    # Only what determines the object is declared per rule; the skolem
    # identity construction is the system's job (Section 2.1).
    kb.declare_identity("C", depends_on=base_deps, clause_index=BASE_RULE)
    kb.declare_identity("C", depends_on=rec_deps, clause_index=RECURSIVE_RULE)
    return kb


def main() -> None:
    for title, (base_deps, rec_deps) in READINGS.items():
        kb = build(base_deps, rec_deps)
        paths = kb.ask("path: P")
        a_to_d = kb.ask("path: P[src => a, dest => d]")
        print(f"== Reading: {title} ==")
        print(f"   path objects created: {len(paths)}")
        print(f"   objects for a -> d:   {len(a_to_d)}")
        for answer in a_to_d:
            identity = answer.pretty()["P"]
            lengths = kb.ask(f"path: P[src => a, dest => d, length => L], P = {identity}")
            rendered = sorted(x.pretty()["L"] for x in lengths)
            print(f"     {identity}  lengths => {rendered}")
        print()

    print(
        "Reading 1 merges the two a->d routes into one object carrying\n"
        "both lengths - labels are multi-valued, so that is NOT an\n"
        "inconsistency in C-logic (it would be in O-logic).  Reading 2\n"
        "splits by length; reading 3 keeps one object per node sequence."
    )


if __name__ == "__main__":
    main()
