#!/usr/bin/env python3
"""Section 5: set manipulation through multi-valued labels.

C-logic is first-order and has no set values, yet multi-valued labels
support most of what users want from sets:

* ``=>`` followed by a collection asserts *subset* membership;
* ``=>`` followed by a term asserts *element* membership;
* definitions in separate rules give set *union*;
* unification gives aspects of set *intersection*;
* what is missing — returning a set value, set equality / unification —
  is reported as missing rather than approximated.

Run with::

    python examples/family_sets.py
"""

from repro import KnowledgeBase
from repro.core.pretty import pretty_term


def main() -> None:
    kb = KnowledgeBase.from_source(
        """
        person: john[children => {bob, bill, joe}].

        % Set union through separate rules: the team collects members
        % from two sources.
        member_of_a(alice).
        member_of_a(bob).
        member_of_b(carol).
        team: squad[members => X] :- member_of_a(X).
        team: squad[members => X] :- member_of_b(X).
        """
    )

    print("== The paper's query: :- person: john[children => {X, Y}]. ==")
    answers = kb.ask("person: john[children => {X, Y}]")
    print(f"   {len(answers)} (X, Y) bindings (both range over all children):")
    for answer in answers:
        print("   ", answer.pretty())

    print("\n== Subset assertions ==")
    for query in (
        "person: john[children => {bob, joe}]",   # a subset: succeeds
        "person: john[children => {bob, carol}]", # not a subset: fails
    ):
        print(f"   {query:45s} -> {kb.holds(query)}")

    print("\n== Set union via separate rules ==")
    members = kb.ask("team: squad[members => M]")
    print("   squad members:", sorted(a.pretty()["M"] for a in members))

    print("\n== Intersection aspects via unification ==")
    # X must be both a child of john and a squad member.
    both = kb.ask("person: john[children => X], team: squad[members => X]")
    print("   children who are also squad members:",
          sorted(a.pretty()["X"] for a in both))

    print("\n== The merged description (the label as an intuitive set) ==")
    for description in kb.objects():
        text = pretty_term(description)
        if "children" in text or "members" in text:
            print("   ", text)

    print(
        "\nWhat C-logic deliberately cannot do (Section 5): return a set\n"
        "value or test set equality - that would need set unification,\n"
        "which is beyond first-order semantics."
    )


if __name__ == "__main__":
    main()
