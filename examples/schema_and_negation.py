#!/usr/bin/env python3
"""The layers above the logic: schema constraints, static types, negation.

The paper deliberately keeps three things out of C-logic and says they
belong on top of it:

* single-valued labels / constraints (§2.2, §6) — here a declarative
  :class:`Schema` checked against the saturated store;
* the static notion of types (§2.3) — here generated membership rules
  ``T(X) :- X[l1 => X1, ...]`` plus the implied hierarchy;
* negation (§4) — here stratified negation-as-failure, with negated
  complex descriptions handled by Lloyd–Topor auxiliaries.

Run with::

    python examples/schema_and_negation.py
"""

from repro import KnowledgeBase
from repro.schema import (
    Cardinality,
    DomainConstraint,
    FunctionalLabel,
    RequiredLabel,
    Schema,
    StaticType,
    implied_hierarchy,
    membership_rule,
)

COMPANY = """
person: ann[name => "Ann", salary => 90, boss => joe].
person: bob[name => "Bob", salary => 60, boss => joe].
person: joe[name => "Joe", salary => 120].
person: sam[name => "Sam"].

manages(B, X) :- person: X[boss => B].
idle(B) :- person: B, \\+ manages(B, X).
"""


def main() -> None:
    kb = KnowledgeBase.from_source(COMPANY)

    print("== Negation: who manages nobody? ==")
    for engine in ("direct", "bottomup", "seminaive"):
        answers = kb.ask("idle(X)", engine=engine)
        print(f"  {engine:10s} ->", sorted(a.pretty()["X"] for a in answers))

    print("\n== Static types: membership derived from properties ==")
    employee = StaticType("employee", ("name", "salary"))
    managed = StaticType("managed_employee", ("name", "salary", "boss"))
    print("  generated rule:", end=" ")
    from repro.core.pretty import pretty_clause

    print(pretty_clause(membership_rule(employee)))
    kb.add_clauses([membership_rule(employee), membership_rule(managed)])
    for type_name in ("employee", "managed_employee"):
        members = kb.ask(f"{type_name}: X")
        print(f"  {type_name}: ", sorted(a.pretty()["X"] for a in members))
    hierarchy = implied_hierarchy([employee, managed])
    print(
        "  implied hierarchy: managed_employee <= employee is",
        hierarchy.is_subtype("managed_employee", "employee"),
    )

    print("\n== Schema constraints (checked, never silently enforced) ==")
    schema = Schema(
        [
            FunctionalLabel("salary"),
            DomainConstraint("boss", host_type="person", value_type="person"),
            RequiredLabel("person", "name"),
            Cardinality("boss", "person", at_most=1),
        ]
    )
    violations = schema.check(kb.store)
    if violations:
        for violation in violations:
            print("  VIOLATION", violation)
    else:
        print("  all", len(schema), "constraints hold")

    print("\n== Now break something and re-check ==")
    kb.add_source('person: ann[salary => 95].')  # a second salary
    violations = schema.check(kb.store)
    for violation in violations:
        print("  VIOLATION", violation)
    print(
        "\nNote the contrast with O-logic: the database is still perfectly\n"
        "consistent as a C-logic program — the schema layer just reports."
    )


if __name__ == "__main__":
    main()
