% Transitive closure over a small asymmetric diamond — the standard
% Datalog workload the E11 experiment scales up.  The inline query at
% the bottom is what `repro query examples/transitive_closure.cl` runs.

edge(a, b).  edge(b, d).
edge(a, c).  edge(c, c2).  edge(c2, d).  edge(d, e).

tc(X, Y) :- edge(X, Y).
tc(X, Y) :- edge(X, Z), tc(Z, Y).

:- tc(a, X).
