#!/usr/bin/env python3
"""Example 3 of the paper, end to end: noun-phrase objects.

Shows the full Section 4 pipeline on the paper's grammar program:

1. the program of objects (subtype declarations + definite clauses);
2. its translation into a generalized logic program with type axioms;
3. the static redundancy elimination (cases 1 and 2);
4. the paper's query answered by all five engines, reproducing the two
   answers np(the, students) and np(all, students).

Run with::

    python examples/noun_phrase_grammar.py
"""

from repro import KnowledgeBase
from repro.fol.pretty import pretty_generalized, pretty_horn
from repro.transform.clauses import program_to_generalized
from repro.transform.optimize import optimize_program

GRAMMAR = """
name: john.
name: bob.

determiner: the[num => {singular, plural}, def => definite].
determiner: a[num => singular, def => indef].
determiner: all[num => plural, def => indef].

noun: student[num => singular].
noun: students[num => plural].

proper_np: X[pers => 3, num => singular, def => definite] :-
    name: X.
common_np: np(Det, Noun)[pers => 3, num => N, def => D] :-
    determiner: Det[num => N, def => D],
    noun: Noun[num => N].

proper_np < noun_phrase.
common_np < noun_phrase.
"""


def main() -> None:
    kb = KnowledgeBase.from_source(GRAMMAR, sld_depth=20)

    print("== The program of objects ==")
    print(GRAMMAR.strip())

    generalized = program_to_generalized(kb.program, dedupe=False)
    print("\n== Translated: generalized definite clauses + type axioms ==")
    for clause in generalized.clauses:
        print("  ", pretty_generalized(clause))
    for axiom in generalized.axioms:
        print("  ", pretty_horn(axiom))
    print(f"  ({generalized.atom_count()} atoms before optimization)")

    optimized, report = optimize_program(generalized)
    print("\n== After redundancy elimination (Section 4, cases 1 & 2) ==")
    for clause in optimized.clauses:
        print("  ", pretty_generalized(clause))
    print(
        f"  ({optimized.atom_count()} atoms; deleted "
        f"{report.head_atoms_deleted} head / {report.body_atoms_deleted} body atoms)"
    )

    print("\n== Query: :- noun_phrase: X[num => plural]. ==")
    for engine in ("direct", "bottomup", "seminaive", "sld", "tabled"):
        answers = kb.ask("noun_phrase: X[num => plural]", engine=engine)
        rendered = sorted(a.pretty()["X"] for a in answers)
        print(f"  {engine:10s} -> {rendered}")
    print("\nThe paper's two answers: np(the, students) and np(all, students).")


if __name__ == "__main__":
    main()
