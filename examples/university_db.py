#!/usr/bin/env python3
"""A realistic application: a university knowledge base.

Everything the library offers in one scenario — the kind of structured-
entity modeling the paper's introduction motivates:

* a subtype hierarchy (student < person, instructor < person, ...);
* complex objects with multi-valued labels (co-advisors, as §2.2
  suggests: "A student may have several co-advisors");
* entity-creating rules with declared skolem identities (§2.1):
  one enrollment object per (student, course) pair;
* recursive rules with arithmetic (prerequisite chains);
* stratified negation (students with no enrollments);
* schema constraints and derived static types;
* derivation-tree explanations.

Run with::

    python examples/university_db.py
"""

from repro import KnowledgeBase
from repro.core.pretty import pretty_term
from repro.schema import (
    Cardinality,
    DomainConstraint,
    RequiredLabel,
    Schema,
    StaticType,
    membership_rule,
)

UNIVERSITY = """
instructor < person.
student < person.
grad_student < student.

instructor: warren[name => "David", teaches => {cse505, cse532}].
instructor: kifer[name => "Michael", teaches => cse532].

course: cse303[title => "Intro Logic", credits => 3].
course: cse505[title => "Logic Programming", credits => 3,
               prereq => cse303].
course: cse532[title => "Database Theory", credits => 3,
               prereq => cse505].

student: ann[name => "Ann", takes => {cse303, cse505}].
student: bob[name => "Bob", takes => cse505].
grad_student: carol[name => "Carol", takes => cse532,
                    advisor => {warren, kifer}].
student: dan[name => "Dan"].

% One enrollment object per (student, course) pair - the identity E
% is existential; what determines it is declared below.
enrollment: E[who => S, what => C] :-
    student: S[takes => C].

% Transitive prerequisite chains with depth counting.
requires(C, P, N) :- course: C[prereq => P], N is 1.
requires(C, P2, N) :-
    course: C[prereq => P],
    requires(P, P2, N0),
    N is N0 + 1.

% Which courses must ann have mastered (directly or transitively)
% before taking cse532-level material?
deep_prereq(C, P) :- requires(C, P, N), N >= 2.

% Negation: students without a single enrollment.
enrolled(S) :- student: S[takes => C].
idle_student(S) :- student: S, \\+ enrolled(S).

% Who could examine carol? Any of her co-advisors teaching a course
% she takes.
examiner(A) :-
    grad_student: carol[advisor => A, takes => C],
    instructor: A[teaches => C].
"""


def main() -> None:
    kb = KnowledgeBase.from_source(UNIVERSITY)
    kb.declare_identity("E", depends_on=("S", "C"), functor="enr")

    print("== Enrollments (skolemized per (student, course)) ==")
    for answer in kb.ask("enrollment: E[who => S, what => C]"):
        print("  ", answer.pretty()["E"])

    print("\n== Transitive prerequisites of cse532 ==")
    for answer in kb.ask("requires(cse532, P, N)"):
        rendered = answer.pretty()
        print(f"   {rendered['P']} at depth {rendered['N']}")

    print("\n== Deep (depth >= 2) prerequisites ==")
    for answer in kb.ask("deep_prereq(C, P)"):
        print("  ", answer.pretty())

    print("\n== Idle students (negation as failure) ==")
    print("  ", sorted(a.pretty()["S"] for a in kb.ask("idle_student(S)")))

    print("\n== Carol's possible examiners (multi-valued advisor) ==")
    print("  ", sorted(a.pretty()["A"] for a in kb.ask("examiner(A)")))

    print("\n== Static type: anyone with name + teaches is teaching_staff ==")
    kb.add_clauses([membership_rule(StaticType("teaching_staff", ("name", "teaches")))])
    print("  ", sorted(a.pretty()["X"] for a in kb.ask("teaching_staff: X")))

    print("\n== Schema check ==")
    schema = Schema(
        [
            RequiredLabel("person", "name"),
            DomainConstraint("takes", host_type="student", value_type="course"),
            DomainConstraint("advisor", host_type="student", value_type="instructor"),
            Cardinality("advisor", "grad_student", at_most=2),
        ]
    )
    violations = schema.check(kb.store)
    print(f"   {len(violations)} violation(s)")
    for violation in violations:
        print("  ", violation)

    print("\n== Why is warren an examiner? ==")
    for tree in kb.explain("examiner(warren)"):
        print("\n".join("   " + line for line in tree.splitlines()[:12]))
        print("   ...")

    print("\n== The whole database, merged per object ==")
    for description in kb.objects():
        text = pretty_term(description)
        if "[" in text:
            print("  ", text)


if __name__ == "__main__":
    main()
