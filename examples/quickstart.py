#!/usr/bin/env python3
"""Quickstart: facts, rules, identity declarations and queries.

Run with::

    python examples/quickstart.py

Covers the core C-logic workflow end to end: write complex-object facts
and rules in the paper's syntax, declare what determines created object
identities (Section 2.1), and query with any engine.
"""

from repro import KnowledgeBase
from repro.core.pretty import pretty_term


def main() -> None:
    # A knowledge base is a C-logic program: subtype declarations plus
    # definite clauses over complex-object descriptions.
    kb = KnowledgeBase.from_source(
        """
        % People are complex objects: identities with labelled values.
        % Labels are multi-valued (several children is not an error).
        person: john[spouse => mary, children => {bob, bill}].
        person: mary[children => {bob, bill}].
        person: bob[age => 8].
        person: bill[age => 5].

        % Descriptions accumulate piecewise: this adds to john's object.
        person: john[age => 40].

        % A rule creating new objects: one family per married couple.
        % F is an existential object variable - the rule alone does not
        % say what determines the family's identity.
        family: F[parent => X, parent => Y] :-
            person: X[spouse => Y].

        parent_of(X, C) :- person: X[children => C].
        """
    )

    # Section 2.1's high-level interface: we say only that F is
    # determined by the couple; the system builds the skolem identity.
    kb.declare_identity("F", depends_on=("X", "Y"))

    print("== Every object in the minimal model (merged descriptions) ==")
    for description in kb.objects():
        print("  ", pretty_term(description))

    print("\n== john's children (direct engine) ==")
    for answer in kb.ask("person: john[children => C]"):
        print("  ", answer.pretty())

    print("\n== Families created by the rule ==")
    for answer in kb.ask("family: F[parent => P]"):
        print("  ", answer.pretty())

    print("\n== The same query under every evaluation strategy ==")
    for engine in ("direct", "bottomup", "seminaive", "tabled"):
        answers = kb.ask("parent_of(X, bob)", engine=engine)
        names = sorted(answer.pretty()["X"] for answer in answers)
        print(f"  {engine:10s} -> {names}")

    print("\n== Why does the family exist? (derivation tree) ==")
    for tree in kb.explain("family: F[parent => john]"):
        print("\n".join("  " + line for line in tree.splitlines()))

    print("\n== The first-order translation (Theorem 1) of the program ==")
    print("\n".join("  " + line for line in kb.to_fol_source().splitlines()[:8]))
    print("   ... (truncated)")


if __name__ == "__main__":
    main()
