#!/usr/bin/env python3
"""Section 2.2: why labels are binary predicates, not partial functions.

Maier's O-logic reads labels as partial functions, so a program that
assigns two values to the same label of the same object has *no models*
— the whole program is inconsistent, and discovering that requires
evaluating the whole program.  C-logic's multi-valued labels make the
same data unremarkable.  The lattice-based alternative (a top object T)
localizes the inconsistency instead.

Run with::

    python examples/olog_vs_clogic.py
"""

from repro import KnowledgeBase
from repro.lang.parser import parse_program
from repro.olog import TOP, check_consistency, lattice_label_value

JOHN = """
john[name => "John"].
john[name => "John Smith"].
"""

RULE_PROGRAM = """
emp: e1[boss => b1].
promoted(e1).
emp: X[boss => b2] :- promoted(X).
"""


def main() -> None:
    print("== The paper's example ==")
    print(JOHN.strip())

    print("\n-- As C-logic: perfectly consistent (labels are binary predicates)")
    kb = KnowledgeBase.from_source(JOHN)
    names = kb.ask('john[name => N]')
    print("   john's names:", sorted(a.pretty()["N"] for a in names))

    print("\n-- As O-logic: the program has NO models")
    violations = check_consistency(parse_program(JOHN).program)
    for violation in violations:
        print("   violation:", violation)

    print("\n-- The lattice alternative: inconsistency becomes local")
    value = lattice_label_value(["John", "John Smith"])
    print(f"   john[name => {value}]  (the top object {TOP}: no common super-object)")
    print(
        "   The paper notes the catch: john[name => \"David\"] is then a\n"
        "   true sub-description of john[name => T] — but no resolution-\n"
        "   like inference rule can derive it."
    )

    print("\n== Inconsistency through rules ==")
    print(RULE_PROGRAM.strip())
    print(
        "\n   Checking O-logic consistency requires evaluating the whole\n"
        "   program: the clash only appears after the rule fires."
    )
    for violation in check_consistency(parse_program(RULE_PROGRAM).program):
        print("   violation:", violation)

    print(
        "\nC-logic's position: functionality is a *constraint* better kept\n"
        "in schema information above the logic, not built into it."
    )


if __name__ == "__main__":
    main()
