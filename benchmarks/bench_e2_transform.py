"""E2 — Example 2 (Section 3.3): the transformation into FOL.

Paper artifact: the exact 7-conjunct translation of

    determiner: the[num => {singular, plural}, def => definite]

We assert equality with the paper's conjunction and measure the
transformation's throughput on atoms and whole programs.
"""

from repro.fol.pretty import pretty_fatom
from repro.lang.parser import parse_atom, parse_program
from repro.transform.atoms import atom_to_fol
from repro.transform.clauses import program_to_fol

EXAMPLE2 = "determiner: the[num => {singular, plural}, def => definite]"

PAPER_CONJUNCTION = [
    "determiner(the)",
    "object(singular)",
    "num(the, singular)",
    "object(plural)",
    "num(the, plural)",
    "object(definite)",
    "def(the, definite)",
]


def test_e2_example2_exact(benchmark):
    atom = parse_atom(EXAMPLE2)
    conjuncts = benchmark(atom_to_fol, atom)
    assert [pretty_fatom(c) for c in conjuncts] == PAPER_CONJUNCTION


def _wide_atom(width: int):
    specs = ", ".join(f"l{i} => {{v{i}a, v{i}b, v{i}c}}" for i in range(width))
    return parse_atom(f"thing: t[{specs}]")


def test_e2_wide_description(benchmark):
    """Translation cost grows linearly with the description width."""
    atom = _wide_atom(50)
    conjuncts = benchmark(atom_to_fol, atom)
    # 1 host + 50 labels * 3 values * 2 conjuncts each
    assert len(conjuncts) == 1 + 50 * 3 * 2


def test_e2_program_translation(benchmark):
    source = "\n".join(
        f"person: p{i}[children => {{a{i}, b{i}}}, age => {i}]." for i in range(200)
    )
    program = parse_program(source).program
    fol = benchmark(program_to_fol, program)
    assert len(fol) > 200
