#!/usr/bin/env python3
"""Regenerate the EXPERIMENTS.md measurements.

Runs every experiment E1–E12 once (the pytest-benchmark files measure
the same code paths statistically; this script produces the readable
paper-vs-measured report) and prints a markdown document to stdout::

    python benchmarks/run_experiments.py > EXPERIMENTS.md
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
sys.path.insert(0, str(Path(__file__).parent.parent))

from repro.core.errors import ParseError
from repro.obs import MetricsRegistry
from repro.obs.metrics import publish_dataclass
from repro.core.pretty import pretty_term
from repro.engine.bottomup import EvaluationStats, answer_query_bottomup, naive_fixpoint
from repro.engine.direct import DirectEngine
from repro.engine.seminaive import seminaive_fixpoint
from repro.engine.tabling import TabledEngine
from repro.engine.topdown import SLDEngine
from repro.fol.pretty import pretty_fatom, pretty_generalized
from repro.lang.parser import parse_atom, parse_program, parse_query, parse_term
from repro.olog import TOP, check_consistency, lattice_label_value
from repro.transform.atoms import atom_to_fol
from repro.transform.clauses import (
    program_to_fol,
    program_to_generalized,
    query_to_fol,
)
from repro.transform.optimize import optimize_program

from workloads import (
    chain_graph_program,
    deep_hierarchy_program,
    extensional_path_db,
    family_db,
    grammar_program,
    split_multivalued_db,
)

from tests.conftest import (
    CHILDREN_SOURCE,
    JOHN_NAMES_SOURCE,
    NOUN_PHRASE_SOURCE,
    RESIDUAL_SOURCE,
)

OUT: list[str] = []

#: (experiment label, flat metric snapshot) records collected as the
#: experiments run; rendered as the appendix at the end of the report.
METRICS: list[tuple[str, dict[str, float]]] = []


def emit(text: str = "") -> None:
    OUT.append(text)


def record_metrics(label: str, stats, prefix: str) -> None:
    """Publish a stats dataclass into a fresh registry and keep the
    snapshot attached to the experiment's result record."""
    registry = MetricsRegistry()
    publish_dataclass(registry, stats, prefix)
    METRICS.append((label, registry.snapshot()))


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def e1() -> None:
    emit("## E1 — Example 1: the term grammar (§3.1)")
    emit()
    emit("Paper: four terms are well-formed; three strings are not terms.")
    emit()
    well_formed = [
        "X",
        "path: g(X, Y)[length => 10]",
        "person: john[children => {person: bob, person: bill}]",
        "instructor: david[course => courseid: cse538, course => courseid: cse505]",
    ]
    rejected = [
        "student: id[name => joe][age => 20]",
        "part: f(part_id => 123)",
        "student: id(name => joe][age => 20]",
    ]
    emit("| input | paper | measured |")
    emit("|---|---|---|")
    for source in well_formed:
        parse_term(source)
        emit(f"| `{source}` | term | accepted |")
    for source in rejected:
        try:
            parse_term(source)
            verdict = "accepted (!)"
        except ParseError:
            verdict = "rejected"
        emit(f"| `{source}` | not a term | {verdict} |")
    emit()


def e2() -> None:
    emit("## E2 — Example 2: transformation into FOL (§3.3)")
    emit()
    atom = parse_atom("determiner: the[num => {singular, plural}, def => definite]")
    conjuncts = [pretty_fatom(c) for c in atom_to_fol(atom)]
    paper = [
        "determiner(the)",
        "object(singular)",
        "num(the, singular)",
        "object(plural)",
        "num(the, plural)",
        "object(definite)",
        "def(the, definite)",
    ]
    emit(f"Paper's conjunction (7 atoms): `{' & '.join(paper)}`")
    emit()
    emit(f"Measured: `{' & '.join(conjuncts)}`")
    emit()
    emit(f"**Exact match: {conjuncts == paper}**")
    emit()


def e3() -> None:
    emit("## E3 — Example 3: the noun-phrase program (§4)")
    emit()
    emit("Paper: `:- noun_phrase: X[num => plural].` has exactly the answers")
    emit("`np(the, students)` and `np(all, students)`.")
    emit()
    program = parse_program(NOUN_PHRASE_SOURCE).program
    query = parse_query(":- noun_phrase: X[num => plural].")
    goals = query_to_fol(query)
    fol = program_to_fol(program)
    emit("| engine | answers | time (ms) |")
    emit("|---|---|---|")

    answers, elapsed = timed(lambda: DirectEngine(program).solve(query))
    rendered = sorted(pretty_term(a["X"]) for a in answers)
    emit(f"| direct | {rendered} | {elapsed * 1e3:.1f} |")

    for name, run in [
        ("bottom-up (naive)", lambda: list(answer_query_bottomup(goals, naive_fixpoint(fol)))),
        ("bottom-up (semi-naive)", lambda: list(answer_query_bottomup(goals, seminaive_fixpoint(fol)))),
        ("SLD (smallest, depth 20)", lambda: list(SLDEngine(fol).solve(goals, max_depth=20, select="smallest"))),
        ("tabled SLD", lambda: TabledEngine(fol).solve(goals)),
    ]:
        substs, elapsed = timed(run)
        from repro.fol.pretty import pretty_fterm

        rendered = sorted(pretty_fterm(s["X"]) for s in substs)
        emit(f"| {name} | {rendered} | {elapsed * 1e3:.1f} |")
    emit()


def e4() -> None:
    emit("## E4 — The three identity readings of the path rules (§2.1)")
    emit()
    emit("Paper: the entity-creating path rules admit three quantification")
    emit("readings; the created objects differ.  Asymmetric diamond graph")
    emit("(two a→d routes of lengths 2 and 3):")
    emit()
    from repro import KnowledgeBase

    diamond = """
node: a[linkto => {b, c}].
node: b[linkto => d].
node: c[linkto => c2].
node: c2[linkto => d].
"""
    rules = """
path: C[src => X, dest => Y, length => L] :- node: X[linkto => Y], L is 1.
path: C[src => X, dest => Y, length => L] :-
    node: X[linkto => Z],
    path: C0[src => Z, dest => Y, length => L0],
    L is L0 + 1.
"""
    readings = {
        "ends only": (("X", "Y"), ("X", "Y")),
        "ends + length": (("X", "Y", "L"), ("X", "Y", "L")),
        "node sequence": (("X", "Y"), ("X", "C0")),
    }
    emit("| reading | path objects | objects for a→d |")
    emit("|---|---|---|")
    for title, (base_deps, rec_deps) in readings.items():
        kb = KnowledgeBase.from_source(diamond + rules)
        kb.declare_identity("C", depends_on=base_deps, clause_index=4)
        kb.declare_identity("C", depends_on=rec_deps, clause_index=5)
        total = len(kb.ask("path: P"))
        a_to_d = len(kb.ask("path: P[src => a, dest => d]"))
        emit(f"| {title} | {total} | {a_to_d} |")
    emit()
    engine = DirectEngine(chain_graph_program(24))
    __, elapsed = timed(engine.saturate)
    paths = len(engine.store.ids_of_type("path"))
    emit(
        f"Saturation, reading 1, 24-node chain: {paths} path objects "
        f"(expected 276) in {elapsed * 1e3:.0f} ms."
    )
    emit()


def e5() -> None:
    emit("## E5 — Redundancy elimination (§4)")
    emit()
    program = parse_program(NOUN_PHRASE_SOURCE).program
    raw = program_to_generalized(program, dedupe=False)
    (optimized, report), elapsed = timed(lambda: optimize_program(raw))
    record_metrics("E5 noun-phrase optimization", report, "optimize")
    paper_clause = (
        "common_np(np(Det, Noun)), object(3), pers(np(Det, Noun), 3), "
        "num(np(Det, Noun), N), def(np(Det, Noun), D) :- "
        "determiner(Det), object(N), num(Det, N), object(D), def(Det, D), "
        "noun(Noun), num(Noun, N)."
    )
    rendered = [pretty_generalized(c) for c in optimized.clauses]
    emit(f"Paper's optimized `common_np` clause reproduced exactly: "
         f"**{paper_clause in rendered}**")
    emit()
    emit(f"- atoms before/after: {raw.atom_count()} → {optimized.atom_count()}")
    emit(f"- head atoms deleted: {report.head_atoms_deleted}; "
         f"body atoms deleted: {report.body_atoms_deleted}")
    emit(f"- optimizer time: {elapsed * 1e3:.2f} ms")
    scaled = program_to_generalized(grammar_program(40, 10), dedupe=False)
    opt_scaled, rep_scaled = optimize_program(scaled)
    emit(f"- scaled grammar (40 nouns, 10 dets): "
         f"{scaled.atom_count()} → {opt_scaled.atom_count()} atoms")
    emit()


def e6() -> None:
    emit("## E6 — Direct vs translated evaluation (§4, the headline claim)")
    emit()
    emit("Paper: direct unification answers the functional-label path query")
    emit("in one step per fact; SLD over the translation \"would be very")
    emit("inefficient\" (the `object/1` goals enumerate the active domain).")
    emit()
    emit("| facts | direct (ms) | translated SLD leftmost (ms) | ratio |")
    emit("|---|---|---|---|")
    query = parse_query(":- path: X[src => S, dest => D].")
    ratios = []
    for size in (10, 30, 90):
        program = extensional_path_db(size)
        engine = DirectEngine(program)
        engine.saturate()
        answers, direct_time = timed(lambda: engine.solve(query))
        assert len(answers) == size
        fol = program_to_fol(program)
        goals = query_to_fol(query)
        sld = SLDEngine(fol)
        substs, sld_time = timed(
            lambda: list(sld.solve(goals, max_depth=50, select="leftmost"))
        )
        assert len(substs) == size
        ratio = sld_time / direct_time
        ratios.append(ratio)
        emit(
            f"| {size} | {direct_time * 1e3:.2f} | {sld_time * 1e3:.2f} "
            f"| {ratio:.0f}x |"
        )
    emit()
    emit(f"Shape check — direct wins everywhere and the gap grows: "
         f"**{all(r > 1 for r in ratios) and ratios[-1] > ratios[0]}**")
    emit()


def e7() -> None:
    emit("## E7 — Multi-valued labels need residuals (§4)")
    emit()
    program = parse_program(RESIDUAL_SOURCE).program
    engine = DirectEngine(program)
    query = parse_query(":- path: p[src => a, dest => d].")
    emit("Facts: `path: p[src => a, dest => b].` and `path: p[src => c, dest => d].`")
    emit("Query: `:- path: p[src => a, dest => d].`")
    emit()
    emit("| strategy | paper says | measured |")
    emit("|---|---|---|")
    emit(f"| residual solving | succeeds | {engine.holds(query)} |")
    emit(f"| naive whole-term unification | fails | "
         f"{bool(engine.solve_whole_term(query))} |")
    emit(f"| subsumption on merged fact | succeeds | "
         f"{bool(engine.solve_subsumption(query))} |")
    merged = engine.store.merged_description(parse_term("p"))
    emit()
    emit(f"Merged fact (paper: `path: p[src => {{a, c}}, dest => {{b, d}}]`): "
         f"`{pretty_term(merged)}`")
    emit()
    big = DirectEngine(split_multivalued_db(45, 3))
    big.saturate()
    cross = parse_query(":- path: p0[src => a0, dest => b2].")
    __, r_time = timed(lambda: big.solve(cross))
    __, w_time = timed(lambda: big.solve_whole_term(cross))
    __, s_time = timed(lambda: big.solve_subsumption(cross))
    emit(f"Scaling (45 objects × 3 values/label): residual {r_time*1e3:.2f} ms, "
         f"whole-term {w_time*1e3:.2f} ms (finds nothing), "
         f"subsumption {s_time*1e3:.2f} ms.")
    emit()


def e8() -> None:
    emit("## E8 — The O-logic comparison (§2.2)")
    emit()
    program = parse_program(JOHN_NAMES_SOURCE).program
    violations = check_consistency(program)
    emit("| check | paper says | measured |")
    emit("|---|---|---|")
    emit(f"| two names for john, as O-logic | no models | "
         f"{len(violations)} violation(s): {violations[0]} |")
    clogic_answers = DirectEngine(program).solve(parse_query(":- john[name => N]."))
    emit(f"| same data, as C-logic | consistent | {len(clogic_answers)} answers |")
    emit(f"| lattice alternative | derives T | "
         f"john[name => {lattice_label_value(['John', 'John Smith'])}] |")
    fam = family_db(parents=20, children_per_parent=4)
    fam_violations, elapsed = timed(lambda: check_consistency(fam))
    emit(f"| 20 multi-child parents, as O-logic | no models | "
         f"{len(fam_violations)} violations in {elapsed * 1e3:.1f} ms |")
    emit()
    emit("Consistency checking requires evaluating the whole program:")
    chain = chain_graph_program(16)
    __, check_time = timed(lambda: check_consistency(chain))
    engine = DirectEngine(chain)
    __, saturate_time = timed(engine.saturate)
    emit(f"16-node chain — consistency check {check_time * 1e3:.0f} ms vs "
         f"plain saturation {saturate_time * 1e3:.0f} ms (same order).")
    emit()


def e9() -> None:
    emit("## E9 — Sets via multi-valued labels (§5)")
    emit()
    engine = DirectEngine(parse_program(CHILDREN_SOURCE).program)
    pairs = engine.solve(parse_query(":- person: john[children => {X, Y}]."))
    emit("| check | paper says | measured |")
    emit("|---|---|---|")
    emit(f"| `{{X, Y}}` query bindings | each of bob/bill/joe for both | "
         f"{len(pairs)} pairs |")
    subset = engine.holds(parse_query(":- person: john[children => {bob, joe}]."))
    emit(f"| subset assertion | holds | {subset} |")
    union_src = """
    in_a(x1). in_a(x2). in_b(x2). in_b(x3).
    set: s[members => X] :- in_a(X).
    set: s[members => X] :- in_b(X).
    """
    union_engine = DirectEngine(parse_program(union_src).program)
    members = union_engine.solve(parse_query(":- set: s[members => M]."))
    emit(f"| union via separate rules | supported | {len(members)} members |")
    emit()
    emit("| children per parent | answers to {X, Y} | time (ms) |")
    emit("|---|---|---|")
    for k in (4, 8, 16):
        eng = DirectEngine(family_db(1, k))
        eng.saturate()
        q = parse_query(":- person: parent0[children => {X, Y}].")
        answers, elapsed = timed(lambda: eng.solve(q))
        emit(f"| {k} | {len(answers)} | {elapsed * 1e3:.1f} |")
    emit()


def e10() -> None:
    emit("## E10 — Theorem 1, checked model-theoretically (§3.3)")
    emit()
    import random

    from repro.core.formulas import free_variables
    from repro.semantics.random_gen import (
        Signature,
        random_assignment,
        random_atom,
        random_structure,
    )
    from repro.semantics.satisfaction import (
        satisfies_atom,
        satisfies_fol_conjunction,
    )

    signature = Signature()
    rng = random.Random(2026)
    samples = 3000
    mismatches = 0
    start = time.perf_counter()
    for __ in range(samples):
        structure = random_structure(rng, signature)
        atom = random_atom(rng, signature)
        assignment = random_assignment(rng, structure, free_variables(atom))
        lhs = satisfies_atom(atom, structure, assignment)
        rhs = satisfies_fol_conjunction(atom_to_fol(atom), structure, assignment)
        if lhs != rhs:
            mismatches += 1
    elapsed = time.perf_counter() - start
    emit(f"Random sweep: {samples} (structure, formula, assignment) triples, "
         f"**{mismatches} mismatches** ({elapsed:.1f} s).")
    emit()
    emit("Minimal-model correspondence (direct store vs back-translated")
    emit("bottom-up model): checked for the path and grammar programs in")
    emit("`benchmarks/bench_e10_theorem1.py` — both **hold**.")
    emit()


def e11() -> None:
    emit("## E11 — Bottom-up over generalized clauses; semi-naive (§4)")
    emit()
    emit("| chain n | naive derivations | semi-naive derivations | naive (ms) | semi-naive (ms) |")
    emit("|---|---|---|---|---|")
    from repro.fol.atoms import FAtom, HornClause
    from repro.fol.terms import FConst, FVar

    def tc_clauses(n: int):
        clauses = [
            HornClause(FAtom("edge", (FConst(i), FConst(i + 1)))) for i in range(n)
        ]
        clauses.append(
            HornClause(
                FAtom("tc", (FVar("X"), FVar("Y"))),
                (FAtom("edge", (FVar("X"), FVar("Y"))),),
            )
        )
        clauses.append(
            HornClause(
                FAtom("tc", (FVar("X"), FVar("Z"))),
                (
                    FAtom("edge", (FVar("X"), FVar("Y"))),
                    FAtom("tc", (FVar("Y"), FVar("Z"))),
                ),
            )
        )
        return clauses

    for n in (8, 16, 24):
        clauses = tc_clauses(n)
        naive_stats = EvaluationStats()
        semi_stats = EvaluationStats()
        __, naive_time = timed(lambda: naive_fixpoint(clauses, stats=naive_stats))
        __, semi_time = timed(lambda: seminaive_fixpoint(clauses, stats=semi_stats))
        record_metrics(f"E11 naive, chain n={n}", naive_stats, "fixpoint")
        record_metrics(f"E11 semi-naive, chain n={n}", semi_stats, "fixpoint")
        emit(
            f"| {n} | {naive_stats.facts_derived} | {semi_stats.facts_derived} "
            f"| {naive_time * 1e3:.0f} | {semi_time * 1e3:.0f} |"
        )
    emit()
    emit("Multi-head derivation: one body evaluation fills every head atom")
    emit("(asserted in `bench_e11_seminaive.py::test_e11_multihead_derivation`).")
    emit()


def e12() -> None:
    emit("## E12 — Order-sorted typing vs clause chains (§4)")
    emit()
    emit("| hierarchy depth | direct query (ms) | translated semi-naive (ms) |")
    emit("|---|---|---|")
    for depth in (4, 16, 64):
        program = deep_hierarchy_program(depth, 40)
        engine = DirectEngine(program)
        engine.saturate()
        query = parse_query(f":- t{depth - 1}: X.")
        answers, direct_time = timed(lambda: engine.solve(query))
        assert len(answers) == 40
        fol = program_to_fol(program)
        goals = query_to_fol(query)
        substs, translated_time = timed(
            lambda: list(answer_query_bottomup(goals, seminaive_fixpoint(fol)))
        )
        assert len(substs) == 40
        emit(f"| {depth} | {direct_time * 1e3:.2f} | {translated_time * 1e3:.1f} |")
    emit()
    emit("Shape: the direct side is nearly flat in depth (one downset")
    emit("computation); the translated side re-derives every intermediate")
    emit("type extent.")
    emit()


def e13() -> None:
    emit("## E13 — Ablations of the direct engine (not a paper artifact)")
    emit()
    emit("| workload | naive saturation (ms) | delta saturation (ms) |")
    emit("|---|---|---|")
    for nodes in (16, 24, 32):
        program = chain_graph_program(nodes)
        naive_engine = DirectEngine(program, saturation_mode="naive")
        __, naive_time = timed(naive_engine.saturate)
        delta_engine = DirectEngine(program, saturation_mode="delta")
        __, delta_time = timed(delta_engine.saturate)
        assert naive_engine.store.fact_count() == delta_engine.store.fact_count()
        record_metrics(f"E13 naive, {nodes}-node chain", naive_engine.stats, "direct")
        record_metrics(f"E13 delta, {nodes}-node chain", delta_engine.stats, "direct")
        emit(
            f"| {nodes}-node chain | {naive_time * 1e3:.0f} | {delta_time * 1e3:.0f} |"
        )
    emit()
    emit("Both modes reach the identical fixpoint (asserted per row); the")
    emit("delta mode's verification rounds keep it sound even where the")
    emit("index-driven delta candidates under-approximate.")
    emit()


def main() -> None:
    emit("# EXPERIMENTS — paper vs measured")
    emit()
    emit("Chen & Warren, *C-Logic of Complex Objects* (PODS 1989) contains")
    emit("no numeric tables or figures; its evaluation artifacts are worked")
    emit("examples, Theorem 1 and efficiency claims.  Each section below")
    emit("reproduces one (the E-numbers match DESIGN.md §3 and the")
    emit("`benchmarks/bench_e*.py` harness).  Timings are from this")
    emit("machine, single run; the statistically sampled versions are in")
    emit("`bench_output.txt`.")
    emit()
    for step in (e1, e2, e3, e4, e5, e6, e7, e8, e9, e10, e11, e12, e13):
        step()
    emit("## Appendix — metric snapshots")
    emit()
    emit("Flat `repro.obs.MetricsRegistry` snapshots attached to the runs")
    emit("above (counter name = value); the same counters are live under")
    emit("`repro trace`/`--explain`.")
    emit()
    for label, snapshot in METRICS:
        rendered = ", ".join(f"`{key}`={value:g}" for key, value in snapshot.items())
        emit(f"- **{label}** — {rendered}")
    emit()
    emit("---")
    emit()
    emit("Regenerate with `python benchmarks/run_experiments.py > EXPERIMENTS.md`.")
    print("\n".join(OUT))


if __name__ == "__main__":
    main()
