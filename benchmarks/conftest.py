"""Benchmark configuration: keep rounds small — these are deduction
benchmarks, not microbenchmarks, so one round is already meaningful."""

import sys
from pathlib import Path

# Make `workloads` and `tests.conftest` importable regardless of how
# pytest was invoked (`pytest` does not put the cwd on sys.path the way
# `python -m pytest` does).
sys.path.insert(0, str(Path(__file__).parent))
sys.path.insert(0, str(Path(__file__).parent.parent))
