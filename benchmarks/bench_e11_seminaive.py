"""E11 — Section 4: bottom-up computation over generalized clauses.

Paper artifacts: "in bottom-up computation, each successful evaluation
of the body may produce multiple results" (multi-head derivation), and
the applicability of "known query evaluation techniques" — here the
naive/semi-naive pair.  We assert fixpoint equality, count the work
saved, and measure both on transitive-closure chains and on the
translated path program.
"""

import pytest

from repro.engine.bottomup import EvaluationStats, naive_fixpoint
from repro.engine.seminaive import seminaive_fixpoint
from repro.fol.atoms import FAtom, GeneralizedClause, HornClause
from repro.fol.terms import FConst, FVar
from repro.transform.clauses import program_to_fol

from workloads import chain_graph_program


def atom(pred, *args):
    return FAtom(pred, tuple(args))


def tc_clauses(n: int):
    clauses = [HornClause(atom("edge", FConst(i), FConst(i + 1))) for i in range(n)]
    clauses.append(
        HornClause(atom("tc", FVar("X"), FVar("Y")), (atom("edge", FVar("X"), FVar("Y")),))
    )
    clauses.append(
        HornClause(
            atom("tc", FVar("X"), FVar("Z")),
            (atom("edge", FVar("X"), FVar("Y")), atom("tc", FVar("Y"), FVar("Z"))),
        )
    )
    return clauses


# Naive is O(n^4) on an n-chain (every round re-joins the whole tc
# relation); keep its sizes small so the harness stays fast, and let
# semi-naive demonstrate the larger sizes.
NAIVE_SIZES = [8, 16, 24]
SEMINAIVE_SIZES = [16, 32, 64]


@pytest.mark.parametrize("n", NAIVE_SIZES)
def test_e11_naive_tc(benchmark, n):
    clauses = tc_clauses(n)
    facts = benchmark(naive_fixpoint, clauses)
    assert facts.count(("tc", 2)) == n * (n + 1) // 2


@pytest.mark.parametrize("n", SEMINAIVE_SIZES)
def test_e11_seminaive_tc(benchmark, n):
    clauses = tc_clauses(n)
    facts = benchmark(seminaive_fixpoint, clauses)
    assert facts.count(("tc", 2)) == n * (n + 1) // 2


def test_e11_work_saved(benchmark):
    def measure():
        clauses = tc_clauses(24)
        naive_stats = EvaluationStats()
        semi_stats = EvaluationStats()
        naive = naive_fixpoint(clauses, stats=naive_stats)
        semi = seminaive_fixpoint(clauses, stats=semi_stats)
        assert naive.snapshot() == semi.snapshot()
        return naive_stats, semi_stats

    naive_stats, semi_stats = benchmark.pedantic(measure, rounds=1, iterations=1)
    # Semi-naive derives each fact O(1) times; naive re-derives the
    # whole relation every round.
    assert semi_stats.facts_derived < naive_stats.facts_derived / 4


def test_e11_multihead_derivation(benchmark):
    """One body instantiation fills several head atoms at once."""
    clauses = [
        HornClause(atom("c", FConst(i))) for i in range(50)
    ]
    clauses.append(
        GeneralizedClause(
            (atom("a", FVar("X")), atom("b", FVar("X")), atom("d", FVar("X"))),
            (atom("c", FVar("X")),),
        )
    )
    stats = EvaluationStats()
    facts = benchmark(lambda: seminaive_fixpoint(clauses, stats=EvaluationStats()))
    assert facts.count(("a", 1)) == facts.count(("b", 1)) == facts.count(("d", 1)) == 50


@pytest.mark.parametrize("nodes", [6, 8])
def test_e11_translated_path_seminaive(benchmark, nodes):
    # The translated recursive rule has a ~10-atom body; even with
    # greedy join ordering and the delta partition its evaluation grows
    # steeply with the chain (the direct engine handles 32+ nodes in
    # E4/E13 — the gap is the paper's point).
    fol = program_to_fol(chain_graph_program(nodes))
    facts = benchmark(seminaive_fixpoint, fol)
    assert facts.count(("path", 1)) == nodes * (nodes - 1) // 2
