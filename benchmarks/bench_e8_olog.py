"""E8 — Section 2.2: the O-logic baseline.

Paper artifacts: (i) ``john[name => "John"]`` + ``john[name => "John
Smith"]`` has no O-logic models but is fine in C-logic; (ii) checking
O-logic consistency "essentially requires evaluating the whole
program"; (iii) the lattice alternative derives ``T`` locally.

We assert all three and measure consistency checking against plain
saturation to show they cost the same (the point of (ii)).
"""

import pytest

from repro.engine.direct import DirectEngine
from repro.lang.parser import parse_program
from repro.olog import TOP, check_consistency, lattice_label_value

from workloads import chain_graph_program, family_db

from tests.conftest import JOHN_NAMES_SOURCE


def test_e8_john_names(benchmark):
    program = parse_program(JOHN_NAMES_SOURCE).program
    violations = benchmark(check_consistency, program)
    assert [v.label for v in violations] == ["name"]
    # ... while C-logic happily answers the query:
    engine = DirectEngine(program)
    from repro.lang.parser import parse_query

    names = engine.solve(parse_query(':- john[name => N].'))
    assert len(names) == 2


def test_e8_lattice_alternative(benchmark):
    value = benchmark(lattice_label_value, ["John", "John Smith"])
    assert value == TOP


def test_e8_multivalued_clogic_data_rejected(benchmark):
    program = family_db(parents=20, children_per_parent=4)
    violations = benchmark(check_consistency, program)
    # every parent violates functionality of `children` under O-logic
    assert len(violations) == 20


@pytest.mark.parametrize("nodes", [8, 16])
def test_e8_consistency_costs_a_saturation(benchmark, nodes):
    """Consistency checking of a rule program saturates it: its cost
    tracks the program's full evaluation (compare with E4's timings)."""
    program = chain_graph_program(nodes)
    violations = benchmark(check_consistency, program)
    # On a chain the paths from any node have distinct dests and
    # lengths, so src/dest/length are all multiply defined from the
    # intermediate path objects... except src: id(X, Y) has exactly one
    # src and dest by construction; length is functional per object
    # under reading 1 on a chain (one route per pair).
    assert violations == []


def test_e8_rule_induced_violation(benchmark):
    source = """
    emp: e1[boss => b1].
    promoted(e1).
    emp: X[boss => b2] :- promoted(X).
    """
    violations = benchmark(check_consistency, parse_program(source).program)
    assert [v.label for v in violations] == ["boss"]
