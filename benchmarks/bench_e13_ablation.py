"""E13 (ablation) — design choices of the direct engine.

Not a paper artifact: this file measures the engines' load-bearing
design choices against their ablated variants, with fixpoint-equality
assertions:

* **delta vs naive saturation** — semi-naive delta rounds (with naive
  verification rounds) against plain naive re-derivation;
* **inverted-label candidate narrowing** — the `_narrow_candidates`
  optimization that starts a query from the hosts of a ground label
  value instead of the whole type extent;
* **greedy vs textual join ordering** — the selectivity-ordered joins
  of `engine.join` against the textual body order, on translated
  bodies that lead with wide `object/1` typing atoms.
"""

import pytest

from repro.core.terms import Const
from repro.engine.direct import DirectEngine
from repro.lang.parser import parse_query

from workloads import chain_graph_program, extensional_path_db

SIZES = [16, 32]


@pytest.mark.parametrize("nodes", SIZES)
def test_e13_saturation_naive(benchmark, nodes):
    program = chain_graph_program(nodes)

    def run():
        engine = DirectEngine(program, saturation_mode="naive")
        engine.saturate()
        return engine.store.fact_count()

    assert benchmark(run) > 0


@pytest.mark.parametrize("nodes", SIZES)
def test_e13_saturation_delta(benchmark, nodes):
    program = chain_graph_program(nodes)
    reference = DirectEngine(program, saturation_mode="naive")
    reference.saturate()

    def run():
        engine = DirectEngine(program, saturation_mode="delta")
        engine.saturate()
        return engine.store

    store = benchmark(run)
    assert store.fact_count() == reference.store.fact_count()
    assert store.all_ids() == reference.store.all_ids()


def test_e13_modes_agree_on_answers():
    program = chain_graph_program(12)
    query = parse_query(":- path: P[src => n0, dest => D, length => L].")
    naive = DirectEngine(program, saturation_mode="naive").solve(query)
    delta = DirectEngine(program, saturation_mode="delta").solve(query)
    normalize = lambda answers: {tuple(sorted(a.items())) for a in answers}
    assert normalize(naive) == normalize(delta)
    assert len(naive) == 11


@pytest.mark.parametrize("size", [50, 200])
def test_e13_ground_value_query_with_narrowing(benchmark, size):
    """Query with a ground label value: the inverted index jumps
    straight to the single host."""
    program = extensional_path_db(size)
    engine = DirectEngine(program)
    engine.saturate()
    query = parse_query(f":- path: X[src => s{size - 1}].")

    def run():
        return engine.solve(query)

    answers = benchmark(run)
    assert [a["X"] for a in answers] == [Const(f"p{size - 1}")]


@pytest.mark.parametrize("size", [50, 200])
def test_e13_ground_value_query_without_narrowing(benchmark, size):
    """Ablation: scan the whole type extent instead (what the engine
    would do without the inverted label index)."""
    program = extensional_path_db(size)
    engine = DirectEngine(program)
    engine.saturate()
    query = parse_query(f":- path: X[src => s{size - 1}].")
    original = engine._narrow_candidates
    engine._narrow_candidates = lambda term, binding, candidates: list(candidates)

    def run():
        return engine.solve(query)

    answers = benchmark(run)
    engine._narrow_candidates = original
    assert [a["X"] for a in answers] == [Const(f"p{size - 1}")]


@pytest.mark.parametrize("reorder", [True, False], ids=["greedy", "textual"])
def test_e13_join_ordering(benchmark, reorder):
    """Third ablation: greedy selectivity-ordered joins vs textual body
    order on the translated path program, whose bodies lead with wide
    object/1 typing atoms."""
    from repro.engine.bottomup import EvaluationStats, normalize_clauses
    from repro.engine.factbase import FactBase
    from repro.engine.join import check_range_restricted, join_body
    from repro.fol.atoms import FAtom
    from repro.fol.atoms import substitute_fatom
    from repro.transform.clauses import program_to_fol

    fol = program_to_fol(chain_graph_program(7))
    generalized = normalize_clauses(fol)

    def run():
        facts = FactBase()
        for clause in generalized:
            check_range_restricted(clause.heads, clause.body)
            if clause.is_fact:
                for head in clause.heads:
                    facts.add(head)
        rules = [clause for clause in generalized if not clause.is_fact]
        for _ in range(10_000):
            facts.next_round()
            changed = False
            for clause in rules:
                for subst in join_body(clause.body, facts, reorder=reorder):
                    for head in clause.heads:
                        derived = substitute_fatom(head, subst)
                        assert isinstance(derived, FAtom)
                        if facts.add(derived):
                            changed = True
            if not changed:
                return facts
        raise AssertionError("no fixpoint")

    facts = benchmark(run)
    assert facts.count(("path", 1)) == 7 * 6 // 2
