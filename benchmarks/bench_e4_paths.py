"""E4 — Section 2.1: skolemized path objects, all three readings.

Paper artifact: the three quantification readings of the path rules
(identity determined by the ends; by ends + length; by the node
sequence) are all expressible by declaring what the existential object
variable depends on.  We check the object counts each reading creates
on parametric graphs and measure saturation cost.
"""

import pytest

from repro import KnowledgeBase
from repro.engine.direct import DirectEngine
from repro.lang.parser import parse_program

from workloads import chain_graph_program

DIAMOND = """
node: a[linkto => {b, c}].
node: b[linkto => d].
node: c[linkto => c2].
node: c2[linkto => d].
"""

RULES = """
path: C[src => X, dest => Y, length => L] :- node: X[linkto => Y], L is 1.
path: C[src => X, dest => Y, length => L] :-
    node: X[linkto => Z],
    path: C0[src => Z, dest => Y, length => L0],
    L is L0 + 1.
"""


def _diamond_kb(base_deps, rec_deps):
    kb = KnowledgeBase.from_source(DIAMOND + RULES)
    kb.declare_identity("C", depends_on=base_deps, clause_index=4)
    kb.declare_identity("C", depends_on=rec_deps, clause_index=5)
    return kb


#: reading -> (base deps, recursive deps, expected path objects,
#:             expected objects for the two a->d routes)
READINGS = {
    # 8 reachable (src, dest) pairs; 9 (src, dest, length) triples;
    # 9 distinct node sequences.  The two a->d routes (lengths 2 and 3)
    # collapse to one object under reading 1 only.
    "ends": (("X", "Y"), ("X", "Y"), 8, 1),
    "ends_length": (("X", "Y", "L"), ("X", "Y", "L"), 9, 2),
    "sequence": (("X", "Y"), ("X", "C0"), 9, 2),
}


@pytest.mark.parametrize("reading", sorted(READINGS))
def test_e4_reading_object_counts(benchmark, reading):
    base_deps, rec_deps, expected_paths, expected_ad = READINGS[reading]

    def run():
        kb = _diamond_kb(base_deps, rec_deps)
        return kb, kb.ask("path: P")

    kb, paths = benchmark(run)
    assert len(paths) == expected_paths
    assert len(kb.ask("path: P[src => a, dest => d]")) == expected_ad


@pytest.mark.parametrize("nodes", [8, 16, 32])
def test_e4_chain_saturation(benchmark, nodes):
    """Reading 1 on an n-chain creates n(n-1)/2 path objects."""
    program = chain_graph_program(nodes)

    def run():
        engine = DirectEngine(program)
        engine.saturate()
        return engine

    engine = benchmark(run)
    assert len(engine.store.ids_of_type("path")) == nodes * (nodes - 1) // 2
