"""E6 — Section 4's central efficiency claim: direct vs translated.

Paper artifact: given a functional-label extensional database

    path: p1[src => a, dest => b].
    path: p2[src => c, dest => d].

and the query ``:- path: X[src => S, dest => D].``, direct evaluation
unifies the query with each fact, "and all the two sets of answers will
be obtained" — while the translated query

    :- path(X), object(S), src(X, S), object(D), dest(X, D).

evaluated "using SLD resolution directly would be very inefficient":
the ``object/1`` goals enumerate the whole active domain before
``src``/``dest`` filter it.

Shape to reproduce: direct wins, and the gap grows with database size
(direct is O(n) per query over n facts; leftmost SLD is O(n^2) and
worse, since each of the 3n domain elements is tried per path object).
Absolute numbers are ours, not the paper's (it reports none).
"""

import pytest

from repro.engine.direct import DirectEngine
from repro.engine.topdown import SLDEngine
from repro.lang.parser import parse_query
from repro.transform.clauses import program_to_fol, query_to_fol

from workloads import extensional_path_db

QUERY_SOURCE = ":- path: X[src => S, dest => D]."
SIZES = [10, 30, 90]


def _direct(size: int):
    program = extensional_path_db(size)
    engine = DirectEngine(program)
    engine.saturate()
    query = parse_query(QUERY_SOURCE)

    def run():
        return engine.solve(query)

    return run, size


def _translated(size: int):
    program = extensional_path_db(size)
    fol = program_to_fol(program)
    engine = SLDEngine(fol)
    goals = query_to_fol(parse_query(QUERY_SOURCE))

    def run():
        # Leftmost selection — the paper's scenario.
        return list(engine.solve(goals, max_depth=50, select="leftmost"))

    return run, size


@pytest.mark.parametrize("size", SIZES)
def test_e6_direct(benchmark, size):
    run, __ = _direct(size)
    answers = benchmark(run)
    assert len(answers) == size


@pytest.mark.parametrize("size", SIZES)
def test_e6_translated_sld_leftmost(benchmark, size):
    run, __ = _translated(size)
    answers = benchmark(run)
    assert len(answers) == size


def test_e6_shape_direct_wins_and_gap_grows(benchmark):
    """The headline shape assertion, run once inside the benchmark
    harness: direct is faster at every size and the ratio grows with n."""
    import time

    def check_shape():
        ratios = []
        for size in SIZES:
            direct_run, __ = _direct(size)
            translated_run, __ = _translated(size)
            start = time.perf_counter()
            direct_run()
            direct_time = time.perf_counter() - start
            start = time.perf_counter()
            translated_run()
            translated_time = time.perf_counter() - start
            assert translated_time > direct_time, (
                f"direct should win at size {size}: "
                f"{direct_time:.4f}s vs {translated_time:.4f}s"
            )
            ratios.append(translated_time / direct_time)
        assert ratios[-1] > ratios[0], f"gap should grow with size: {ratios}"
        return ratios

    ratios = benchmark.pedantic(check_shape, rounds=1, iterations=1)
    assert len(ratios) == len(SIZES)
