"""E10 — Theorem 1 (Section 3.3), checked model-theoretically at scale.

Paper artifact: for every atomic formula alpha, structure M and
assignment s, ``M |= alpha[s]`` iff ``M* |= alpha*[s]``; and the
minimal model of a program corresponds to the minimal model of its
translation.  We sweep seeded random structures/formulas (counting
mismatches, which must be zero) and compare the direct engine's
saturated store against the back-translated bottom-up model.
"""

import random

import pytest

from repro.core.formulas import free_variables
from repro.engine.bottomup import naive_fixpoint
from repro.engine.direct import DirectEngine
from repro.semantics.random_gen import (
    Signature,
    random_assignment,
    random_atom,
    random_structure,
)
from repro.semantics.satisfaction import satisfies_atom, satisfies_fol_conjunction
from repro.transform.atoms import atom_to_fol
from repro.transform.backmap import facts_to_descriptions
from repro.transform.clauses import program_to_fol

from workloads import chain_graph_program, grammar_program


def theorem1_sweep(samples: int, seed: int = 7) -> int:
    """Run the equivalence check ``samples`` times; return mismatches."""
    signature = Signature()
    rng = random.Random(seed)
    mismatches = 0
    for _ in range(samples):
        structure = random_structure(rng, signature)
        atom = random_atom(rng, signature)
        assignment = random_assignment(rng, structure, free_variables(atom))
        lhs = satisfies_atom(atom, structure, assignment)
        rhs = satisfies_fol_conjunction(atom_to_fol(atom), structure, assignment)
        if lhs != rhs:
            mismatches += 1
    return mismatches


@pytest.mark.parametrize("samples", [200, 800])
def test_e10_random_sweep(benchmark, samples):
    mismatches = benchmark(theorem1_sweep, samples)
    assert mismatches == 0


def _model_correspondence(program) -> bool:
    """Direct saturation vs back-translated bottom-up minimal model.

    The FOL side uses semi-naive evaluation (same fixpoint; naive on the
    translated path rules joins the whole relation every round and is
    two orders of magnitude slower)."""
    from repro.engine.seminaive import seminaive_fixpoint

    engine = DirectEngine(program)
    store = engine.saturate()
    facts = seminaive_fixpoint(program_to_fol(program))
    descriptions = facts_to_descriptions(
        list(facts), program.type_symbols() | {"object"}, program.labels()
    )
    from repro.db.store import ground_id

    # Same object population:
    fol_ids = set(descriptions)
    direct_ids = set(store.all_ids())
    if fol_ids != direct_ids:
        return False
    # Same type memberships per object.  The FOL model materializes the
    # type axioms (explicit object(t) and supertype atoms); the store
    # keeps asserted types and closes upward through the hierarchy at
    # query time — so compare the upward closures.
    hierarchy = program.hierarchy()
    for identity, (types, __) in descriptions.items():
        key = ground_id(identity)
        closed: set[str] = {"object"}
        for asserted in store.asserted_types(key):
            closed |= hierarchy.supertypes(asserted)
        if types | {"object"} != closed:
            return False
    for label in program.labels():
        fol_pairs = {
            (atom.args[0], atom.args[1])
            for atom in facts
            if atom.pred == label and len(atom.args) == 2
        }
        from repro.transform.terms import fol_to_identity

        fol_pairs_c = {
            (fol_to_identity(h), fol_to_identity(v)) for h, v in fol_pairs
        }
        if fol_pairs_c != set(store.label_pairs(label)):
            return False
    return True


def test_e10_minimal_model_correspondence_paths(benchmark):
    program = chain_graph_program(7)
    assert benchmark(_model_correspondence, program)


def test_e10_minimal_model_correspondence_grammar(benchmark):
    program = grammar_program(nouns=12, determiners=6)
    assert benchmark(_model_correspondence, program)
