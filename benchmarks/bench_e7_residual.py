"""E7 — Section 4: multi-valued labels and the residual technique.

Paper artifacts: on the two partial descriptions of ``p``, the query
``:- path: p[src => a, dest => d].`` (i) succeeds under the semantics,
(ii) fails under naive whole-term unification, (iii) succeeds by
solving one label at a time and carrying the residual, and (iv) for
extensional databases, succeeds by subsumption over the merged fact
``path: p[src => {a, c}, dest => {b, d}]``.

We assert all four verdicts and measure the three strategies as the
number of split facts grows.
"""

import pytest

from repro.engine.direct import DirectEngine
from repro.lang.parser import parse_program, parse_query

from workloads import split_multivalued_db

from tests.conftest import RESIDUAL_SOURCE

QUERY = parse_query(":- path: p[src => a, dest => d].")


def test_e7_verdicts(benchmark):
    def verdicts():
        engine = DirectEngine(parse_program(RESIDUAL_SOURCE).program)
        return (
            engine.holds(QUERY),
            bool(engine.solve_whole_term(QUERY)),
            bool(engine.solve_subsumption(QUERY)),
        )

    residual_ok, whole_ok, subsumption_ok = benchmark(verdicts)
    assert residual_ok is True        # the semantics says yes
    assert whole_ok is False          # naive unification misses it
    assert subsumption_ok is True     # merged descriptions recover it


SIZES = [5, 15, 45]


def _engine(size: int) -> DirectEngine:
    engine = DirectEngine(split_multivalued_db(objects=size, values_per_label=3))
    engine.saturate()
    return engine


def _cross_query() -> object:
    # src value from one fact, dest value from another.
    return parse_query(":- path: p0[src => a0, dest => b2].")


@pytest.mark.parametrize("size", SIZES)
def test_e7_residual_solving(benchmark, size):
    engine = _engine(size)
    query = _cross_query()
    assert benchmark(lambda: engine.solve(query)) == [{}]


@pytest.mark.parametrize("size", SIZES)
def test_e7_whole_term(benchmark, size):
    engine = _engine(size)
    query = _cross_query()
    # Fast but wrong: scans all clustered facts yet finds nothing.
    assert benchmark(lambda: engine.solve_whole_term(query)) == []


@pytest.mark.parametrize("size", SIZES)
def test_e7_subsumption(benchmark, size):
    engine = _engine(size)
    query = _cross_query()
    assert benchmark(lambda: engine.solve_subsumption(query)) == [{}]


def test_e7_open_query_counts(benchmark):
    """Open cross-products: with 3 values per label the open query has
    9 (src, dest) answers per object under the complete strategies and
    0 under whole-term unification (every fact carries only one label)."""
    engine = _engine(4)
    query = parse_query(":- path: p1[src => S, dest => D].")
    answers = benchmark(lambda: engine.solve(query))
    assert len(answers) == 9
    assert engine.solve_whole_term(query) == []
    assert len(engine.solve_subsumption(query)) == 9
