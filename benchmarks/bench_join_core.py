#!/usr/bin/env python3
"""Join-core microbenchmarks: before/after numbers for the adaptive
multi-argument indexing + segmented deltas + compiled join executor.

The "before" side is a compact, faithful copy of the pre-optimization
evaluation core (first-argument-indexed fact base with per-call list
copies and stamp-filtered deltas, recursive nested-loop join), embedded
here so the comparison stays reproducible after the optimized core has
replaced it in ``repro.engine``.  The "after" side is the live code.

Emits ``BENCH_join_core.json`` (schema checked by
``tools/check_bench_schema.py``) and exits non-zero if any correctness
cross-check fails: legacy and optimized cores must compute identical
fixpoints, and all five engines must agree on the E6/E11 workloads.

Usage::

    python benchmarks/bench_join_core.py            # full sizes
    python benchmarks/bench_join_core.py --smoke    # CI-sized
    python benchmarks/bench_join_core.py --out PATH
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(HERE))  # workloads
sys.path.insert(0, str(HERE.parent / "src"))

from repro.engine.bottomup import naive_fixpoint, normalize_clauses  # noqa: E402
from repro.engine.builtins import builtin_is_ready, solve_builtin  # noqa: E402
from repro.engine.seminaive import seminaive_fixpoint  # noqa: E402
from repro.fol.atoms import (  # noqa: E402
    FAtom,
    FBuiltin,
    HornClause,
    atom_is_ground,
    substitute_fatom,
)
from repro.fol.subst import Substitution  # noqa: E402
from repro.fol.terms import FApp, FConst, FTerm, FVar  # noqa: E402
from repro.fol.unify import match_atom  # noqa: E402

SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# The legacy (pre-PR) evaluation core — "before" numbers
# ----------------------------------------------------------------------

def _legacy_principal_functor(term: FTerm):
    if isinstance(term, FConst):
        return ("c", type(term.value).__name__, term.value)
    if isinstance(term, FApp):
        return ("f", term.functor, len(term.args))
    return None


class LegacyFactBase:
    """First-argument index only; per-call list copies; delta partitions
    by filtering every candidate's round stamp."""

    __slots__ = ("_atoms", "_by_pred", "_by_first", "_stamps", "_round")

    def __init__(self, atoms=()):
        self._atoms = set()
        self._by_pred = {}
        self._by_first = {}
        self._stamps = {}
        self._round = 0
        for atom in atoms:
            self.add(atom)

    def add(self, atom):
        if not atom_is_ground(atom):
            raise ValueError(f"fact bases hold ground atoms only, got {atom!r}")
        if atom in self._atoms:
            return False
        self._atoms.add(atom)
        self._stamps[atom] = self._round
        self._by_pred.setdefault(atom.signature, []).append(atom)
        key = _legacy_principal_functor(atom.args[0])
        self._by_first.setdefault((atom.signature, key), []).append(atom)
        return True

    def next_round(self):
        self._round += 1
        return self._round

    def __contains__(self, atom):
        return atom in self._atoms

    def __len__(self):
        return len(self._atoms)

    def count(self, signature):
        return len(self._by_pred.get(signature, ()))

    def candidates(self, pattern):
        key = _legacy_principal_functor(pattern.args[0])
        if key is None:
            return list(self._by_pred.get(pattern.signature, ()))
        return list(self._by_first.get((pattern.signature, key), ()))

    def candidate_count(self, pattern):
        key = _legacy_principal_functor(pattern.args[0])
        if key is None:
            return len(self._by_pred.get(pattern.signature, ()))
        return len(self._by_first.get((pattern.signature, key), ()))

    def candidates_since(self, pattern, since_round):
        return [a for a in self.candidates(pattern) if self._stamps[a] >= since_round]

    def candidates_before(self, pattern, before_round):
        return [a for a in self.candidates(pattern) if self._stamps[a] < before_round]


_ALL, _OLD = "all", "old"


def _legacy_pick(remaining, facts, subst, reorder):
    if not reorder:
        return 0
    best_index, best_cost = -1, float("inf")
    for index, (atom, __) in enumerate(remaining):
        if isinstance(atom, FBuiltin):
            if builtin_is_ready(atom, subst):
                return index
            continue
        pattern = substitute_fatom(atom, subst)
        cost = facts.candidate_count(pattern)
        if cost == 0:
            return index
        if cost < best_cost:
            best_cost, best_index = cost, index
    return best_index


def _legacy_join(remaining, facts, subst, reorder, old_before):
    if not remaining:
        yield subst
        return
    index = _legacy_pick(remaining, facts, subst, reorder)
    if index < 0:
        solve_builtin(remaining[0][0], subst)
        raise RuntimeError("builtin could not be scheduled")
    atom, mode = remaining[index]
    rest = remaining[:index] + remaining[index + 1 :]
    if isinstance(atom, FBuiltin):
        solved = solve_builtin(atom, subst)
        if solved is not None:
            yield from _legacy_join(rest, facts, solved, reorder, old_before)
        return
    pattern = substitute_fatom(atom, subst)
    if mode == _OLD:
        candidates = facts.candidates_before(pattern, old_before)
    else:
        candidates = facts.candidates(pattern)
    for fact in candidates:
        extended = match_atom(pattern, fact, subst)
        if extended is not None:
            yield from _legacy_join(rest, facts, extended, reorder, old_before)


def legacy_join_body(body, facts, initial=None, delta_position=None, delta_round=0):
    subst = initial if initial is not None else Substitution.empty()
    if delta_position is not None:
        rest = []
        for index, atom in enumerate(body):
            if index == delta_position:
                continue
            restrict_old = index < delta_position and not isinstance(atom, FBuiltin)
            rest.append((atom, _OLD if restrict_old else _ALL))
        pattern = substitute_fatom(body[delta_position], subst)
        for fact in facts.candidates_since(pattern, delta_round):
            extended = match_atom(pattern, fact, subst)
            if extended is not None:
                yield from _legacy_join(list(rest), facts, extended, True, delta_round)
        return
    yield from _legacy_join([(atom, _ALL) for atom in body], facts, subst, True, 0)


def _legacy_derive(heads, subst, facts):
    new = False
    for head in heads:
        new |= facts.add(substitute_fatom(head, subst))
    return new


def legacy_naive_fixpoint(clauses):
    generalized = normalize_clauses(clauses)
    facts = LegacyFactBase()
    for clause in generalized:
        if clause.is_fact:
            for head in clause.heads:
                facts.add(head)
    rules = [clause for clause in generalized if not clause.is_fact]
    for _ in range(10_000):
        facts.next_round()
        changed = False
        for clause in rules:
            for subst in legacy_join_body(clause.body, facts):
                changed |= _legacy_derive(clause.heads, subst, facts)
        if not changed:
            return facts
    raise RuntimeError("no fixpoint")


def legacy_seminaive_fixpoint(clauses):
    generalized = normalize_clauses(clauses)
    facts = LegacyFactBase()
    for clause in generalized:
        if clause.is_fact:
            for head in clause.heads:
                facts.add(head)
    rules = [clause for clause in generalized if not clause.is_fact]
    positions = [
        [i for i, atom in enumerate(clause.body) if not isinstance(atom, FBuiltin)]
        for clause in rules
    ]
    delta_round = 0
    for round_number in range(1, 10_001):
        current = facts.next_round()
        changed = False
        for clause, delta_positions in zip(rules, positions):
            if not delta_positions:
                if round_number > 1:
                    continue
                for subst in legacy_join_body(clause.body, facts):
                    changed |= _legacy_derive(clause.heads, subst, facts)
            else:
                for position in delta_positions:
                    for subst in legacy_join_body(
                        clause.body, facts,
                        delta_position=position, delta_round=delta_round,
                    ):
                        changed |= _legacy_derive(clause.heads, subst, facts)
        delta_round = current
        if not changed:
            return facts
    raise RuntimeError("no fixpoint")


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------

def tc_clauses(n):
    """E11: transitive closure of an n-edge chain."""
    clauses = [
        HornClause(FAtom("edge", (FConst(i), FConst(i + 1)))) for i in range(n)
    ]
    clauses.append(
        HornClause(
            FAtom("tc", (FVar("X"), FVar("Y"))),
            (FAtom("edge", (FVar("X"), FVar("Y"))),),
        )
    )
    clauses.append(
        HornClause(
            FAtom("tc", (FVar("X"), FVar("Z"))),
            (FAtom("edge", (FVar("X"), FVar("Y"))), FAtom("tc", (FVar("Y"), FVar("Z")))),
        )
    )
    return clauses


def translated_path_fol(nodes):
    """E6: the translated (FOL) chain-graph path program."""
    from repro.transform.clauses import program_to_fol
    from workloads import chain_graph_program

    return program_to_fol(chain_graph_program(nodes))


def probe_workload(n):
    """n chain edges plus n bound-*second*-argument probe patterns —
    the shape first-argument indexing cannot serve."""
    facts = [FAtom("edge", (FConst(i), FConst(i + 1))) for i in range(n)]
    patterns = [FAtom("edge", (FVar("X"), FConst(i + 1))) for i in range(n)]
    return facts, patterns


# ----------------------------------------------------------------------
# Measurement
# ----------------------------------------------------------------------

def best_of(repeats, fn):
    """(best milliseconds, last result)."""
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, (time.perf_counter() - start) * 1000.0)
    return best, result


def bench_fixpoints(name, sizes, legacy_fn, new_fn, workload_fn, count_fn, repeats):
    rows = []
    for size in sizes:
        workload = workload_fn(size)
        before_ms, legacy_facts = best_of(repeats, lambda: legacy_fn(workload))
        after_ms, new_facts = best_of(repeats, lambda: new_fn(workload))
        checks = {
            "legacy_facts": len(legacy_facts),
            "new_facts": len(new_facts),
            "counts_equal": len(legacy_facts) == len(new_facts)
            and count_fn(legacy_facts) == count_fn(new_facts),
        }
        rows.append(
            {
                "name": name,
                "size": size,
                "before_ms": round(before_ms, 3),
                "after_ms": round(after_ms, 3),
                "speedup": round(before_ms / after_ms, 2) if after_ms else 0.0,
                "checks": checks,
            }
        )
        print(
            f"  {name:<28} n={size:<4} before={before_ms:9.2f}ms  "
            f"after={after_ms:9.2f}ms  speedup={rows[-1]['speedup']:>6.2f}x",
            flush=True,
        )
    return rows


def bench_probes(sizes, repeats):
    from repro.engine.factbase import FactBase
    from repro.engine.join import join_body

    rows = []
    for size in sizes:
        atoms, patterns = probe_workload(size)

        def run_legacy():
            base = LegacyFactBase(atoms)
            return sum(
                1
                for pattern in patterns
                for __ in legacy_join_body((pattern,), base)
            )

        def run_new():
            base = FactBase(atoms)
            return sum(
                1 for pattern in patterns for __ in join_body((pattern,), base)
            )

        before_ms, legacy_hits = best_of(repeats, run_legacy)
        after_ms, new_hits = best_of(repeats, run_new)
        rows.append(
            {
                "name": "bound_second_arg_probes",
                "size": size,
                "before_ms": round(before_ms, 3),
                "after_ms": round(after_ms, 3),
                "speedup": round(before_ms / after_ms, 2) if after_ms else 0.0,
                "checks": {
                    "legacy_facts": legacy_hits,
                    "new_facts": new_hits,
                    "counts_equal": legacy_hits == new_hits,
                },
            }
        )
        print(
            f"  {'bound_second_arg_probes':<28} n={size:<4} "
            f"before={before_ms:9.2f}ms  after={after_ms:9.2f}ms  "
            f"speedup={rows[-1]['speedup']:>6.2f}x",
            flush=True,
        )
    return rows


# ----------------------------------------------------------------------
# Five-engine agreement (E6 / E11 workloads)
# ----------------------------------------------------------------------

def tc_source(n):
    lines = [f"edge(n{i}, n{i + 1})." for i in range(n)]
    lines.append("tc(X, Y) :- edge(X, Y).")
    lines.append("tc(X, Y) :- edge(X, Z), tc(Z, Y).")
    return "\n".join(lines)


def agreement_rows(smoke):
    from repro.interface.kb import ENGINES, KnowledgeBase
    from workloads import extensional_path_db

    rows = []

    # E11: recursive transitive closure.  Plain SLD provably cannot
    # terminate on the translated recursive rules (see
    # tests/engine/test_agreement.py and the paper's E6 discussion), so —
    # as in the repo's own agreement tests — it is excluded here and the
    # tabled engine covers the top-down side.
    n = 8 if smoke else 12
    kb = KnowledgeBase.from_source(tc_source(n))
    engines = [engine for engine in ENGINES if engine != "sld"]
    answer_sets = {
        engine: frozenset(map(repr, kb.ask("tc(n0, X)", engine=engine)))
        for engine in engines
    }
    rows.append(
        {
            "workload": "e11_tc_chain",
            "size": n,
            "engines": {engine: len(a) for engine, a in answer_sets.items()},
            "engines_excluded": {"sld": "plain SLD loops on recursive rules"},
            "identical": len(set(answer_sets.values())) == 1,
        }
    )

    # E6: extensional path objects — non-recursive, all five engines.
    size = 10 if smoke else 20
    kb = KnowledgeBase(extensional_path_db(size))
    kb.sld_depth = 50
    answer_sets = {
        engine: frozenset(
            map(repr, kb.ask(":- path: X[src => S, dest => D].", engine=engine))
        )
        for engine in ENGINES
    }
    rows.append(
        {
            "workload": "e6_extensional_paths",
            "size": size,
            "engines": {engine: len(a) for engine, a in answer_sets.items()},
            "engines_excluded": {},
            "identical": len(set(answer_sets.values())) == 1,
        }
    )
    for row in rows:
        print(
            f"  agreement {row['workload']:<22} n={row['size']:<4} "
            f"{row['engines']}  identical={row['identical']}",
            flush=True,
        )
    return rows


# ----------------------------------------------------------------------

def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument(
        "--out",
        default=str(HERE.parent / "BENCH_join_core.json"),
        help="output JSON path (default: repo root BENCH_join_core.json)",
    )
    args = parser.parse_args(argv)

    repeats = 1 if args.smoke else 3
    tc_sizes = [32] if args.smoke else [32, 64, 96]
    naive_sizes = [8] if args.smoke else [8, 16, 24]
    path_sizes = [6] if args.smoke else [6, 8]
    probe_sizes = [200] if args.smoke else [400, 800]

    print(f"join-core benchmark ({'smoke' if args.smoke else 'full'})", flush=True)
    workloads = []
    workloads += bench_fixpoints(
        "seminaive_tc", tc_sizes,
        legacy_seminaive_fixpoint, seminaive_fixpoint,
        tc_clauses, lambda facts: facts.count(("tc", 2)), repeats,
    )
    workloads += bench_fixpoints(
        "naive_tc", naive_sizes,
        legacy_naive_fixpoint, naive_fixpoint,
        tc_clauses, lambda facts: facts.count(("tc", 2)), repeats,
    )
    workloads += bench_fixpoints(
        "seminaive_translated_path", path_sizes,
        legacy_seminaive_fixpoint, seminaive_fixpoint,
        translated_path_fol, lambda facts: facts.count(("path", 1)), repeats,
    )
    workloads += bench_probes(probe_sizes, repeats)
    agreement = agreement_rows(args.smoke)

    payload = {
        "benchmark": "join_core",
        "schema_version": SCHEMA_VERSION,
        "smoke": args.smoke,
        "python": sys.version.split()[0],
        "workloads": workloads,
        "agreement": agreement,
    }
    out_path = Path(args.out)
    out_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out_path}", flush=True)

    failures = [w for w in workloads if not w["checks"]["counts_equal"]]
    failures += [a for a in agreement if not a["identical"]]
    if failures:
        print(f"FAILED cross-checks: {failures}", file=sys.stderr)
        return 1
    largest_tc = max(
        (w for w in workloads if w["name"] == "seminaive_tc"),
        key=lambda w: w["size"],
    )
    print(
        f"headline: seminaive TC n={largest_tc['size']} "
        f"speedup {largest_tc['speedup']}x",
        flush=True,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
