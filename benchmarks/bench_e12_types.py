"""E12 — Section 4: order-sorted typing vs type-predicate clause chains.

Paper artifact: "Using order-sorted resolution may be more efficient in
dealing with inheritance hierarchies."  The direct engine answers a
typed query through the store's type indexes (closing the hierarchy
once), while the translated program climbs ``t_{i+1}(X) :- t_i(X)``
clause chains fact by fact.  Shape to reproduce: the direct side is
flat in the hierarchy depth, the translated side grows with it.
"""

import pytest

from repro.engine.bottomup import answer_query_bottomup, naive_fixpoint
from repro.engine.direct import DirectEngine
from repro.engine.tabling import TabledEngine
from repro.lang.parser import parse_query
from repro.transform.clauses import program_to_fol, query_to_fol

from workloads import deep_hierarchy_program

DEPTHS = [4, 16, 64]
MEMBERS = 40


def _query(depth: int) -> str:
    return f":- t{depth - 1}: X."


@pytest.mark.parametrize("depth", DEPTHS)
def test_e12_direct_type_query(benchmark, depth):
    program = deep_hierarchy_program(depth, MEMBERS)
    engine = DirectEngine(program)
    engine.saturate()
    query = parse_query(_query(depth))
    answers = benchmark(lambda: engine.solve(query))
    assert len(answers) == MEMBERS


@pytest.mark.parametrize("depth", DEPTHS[:2])
def test_e12_translated_bottomup(benchmark, depth):
    """The fixpoint materializes every t_i extent: work grows with
    depth x members (depth 64 is measured once in the shape test —
    naive evaluation there is too slow to sample repeatedly, which is
    itself the point)."""
    program = deep_hierarchy_program(depth, MEMBERS)
    fol = program_to_fol(program)
    goals = query_to_fol(parse_query(_query(depth)))

    def run():
        return list(answer_query_bottomup(goals, naive_fixpoint(fol)))

    assert len(benchmark(run)) == MEMBERS


@pytest.mark.parametrize("depth", DEPTHS[:2])
def test_e12_translated_tabled(benchmark, depth):
    program = deep_hierarchy_program(depth, MEMBERS)
    fol = program_to_fol(program)
    goals = query_to_fol(parse_query(_query(depth)))

    def run():
        return TabledEngine(fol).solve(goals)

    assert len(benchmark(run)) == MEMBERS


def test_e12_shape_direct_flat_in_depth(benchmark):
    """Measured once: translated query time grows with depth much
    faster than the direct engine's."""
    import time

    def check():
        direct_times = []
        translated_times = []
        for depth in DEPTHS:
            program = deep_hierarchy_program(depth, MEMBERS)
            engine = DirectEngine(program)
            engine.saturate()
            query = parse_query(_query(depth))
            start = time.perf_counter()
            assert len(engine.solve(query)) == MEMBERS
            direct_times.append(time.perf_counter() - start)

            fol = program_to_fol(program)
            goals = query_to_fol(parse_query(_query(depth)))
            start = time.perf_counter()
            # Semi-naive: the *fair* translated competitor (naive is
            # hopeless at depth 64); it still materializes every
            # intermediate extent, so it grows with depth.
            from repro.engine.seminaive import seminaive_fixpoint

            facts = seminaive_fixpoint(fol)
            assert len(list(answer_query_bottomup(goals, facts))) == MEMBERS
            translated_times.append(time.perf_counter() - start)
        direct_growth = direct_times[-1] / max(direct_times[0], 1e-9)
        translated_growth = translated_times[-1] / max(translated_times[0], 1e-9)
        assert translated_growth > direct_growth
        return direct_times, translated_times

    benchmark.pedantic(check, rounds=1, iterations=1)
