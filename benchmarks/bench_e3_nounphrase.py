"""E3 — Example 3 (Section 4): the noun-phrase program.

Paper artifact: the query ``:- noun_phrase: X[num => plural].`` has
exactly the answers np(the, students) and np(all, students).  We assert
that under all five strategies and measure each strategy end to end
(including saturation / table building, which is each strategy's real
cost profile), on the paper's program and on a scaled grammar.
"""

import pytest

from repro.engine.bottomup import answer_query_bottomup, naive_fixpoint
from repro.engine.direct import DirectEngine
from repro.engine.seminaive import seminaive_fixpoint
from repro.engine.tabling import TabledEngine
from repro.engine.topdown import SLDEngine
from repro.lang.parser import parse_program, parse_query
from repro.transform.clauses import program_to_fol, query_to_fol

from workloads import grammar_program

from tests.conftest import NOUN_PHRASE_SOURCE

QUERY = ":- noun_phrase: X[num => plural]."
EXPECTED = {"np(the, students)", "np(all, students)"}


def _program():
    return parse_program(NOUN_PHRASE_SOURCE).program


def _rendered_direct(answers):
    from repro.core.pretty import pretty_term

    return {pretty_term(a["X"]) for a in answers}


def _rendered_fol(substs):
    from repro.fol.pretty import pretty_fterm

    return {pretty_fterm(s["X"]) for s in substs}


def test_e3_direct(benchmark):
    def run():
        engine = DirectEngine(_program())
        return engine.solve(parse_query(QUERY))

    answers = benchmark(run)
    assert _rendered_direct(answers) == EXPECTED


def test_e3_bottomup_naive(benchmark):
    fol = program_to_fol(_program())
    goals = query_to_fol(parse_query(QUERY))

    def run():
        return list(answer_query_bottomup(goals, naive_fixpoint(fol)))

    assert _rendered_fol(benchmark(run)) == EXPECTED


def test_e3_bottomup_seminaive(benchmark):
    fol = program_to_fol(_program())
    goals = query_to_fol(parse_query(QUERY))

    def run():
        return list(answer_query_bottomup(goals, seminaive_fixpoint(fol)))

    assert _rendered_fol(benchmark(run)) == EXPECTED


def test_e3_sld(benchmark):
    fol = program_to_fol(_program())
    goals = query_to_fol(parse_query(QUERY))

    def run():
        return list(SLDEngine(fol).solve(goals, max_depth=20, select="smallest"))

    assert _rendered_fol(benchmark(run)) == EXPECTED


def test_e3_tabled(benchmark):
    fol = program_to_fol(_program())
    goals = query_to_fol(parse_query(QUERY))

    def run():
        return TabledEngine(fol).solve(goals)

    assert _rendered_fol(benchmark(run)) == EXPECTED


@pytest.mark.parametrize("nouns", [10, 30])
def test_e3_scaled_grammar_direct(benchmark, nouns):
    """Grammar scaling: common_np count = determiners x matching nouns."""
    program = grammar_program(nouns=nouns, determiners=6)
    query = parse_query(":- common_np: X.")

    def run():
        return DirectEngine(program).solve(query)

    answers = benchmark(run)
    assert len(answers) == 6 // 2 * nouns  # half the dets match each noun
