"""E1 — Example 1 (Section 3.1): the term grammar.

Paper artifact: four well-formed terms and three rejected non-terms.
We assert the acceptance/rejection verdicts and measure parser
throughput on the paper's terms and on a large synthetic program.
"""

import pytest

from repro.core.errors import ParseError
from repro.lang.parser import parse_program, parse_term

WELL_FORMED = [
    "X",
    "path: g(X, Y)[length => 10]",
    "person: john[children => {person: bob, person: bill}]",
    "instructor: david[course => courseid: cse538, course => courseid: cse505]",
]

REJECTED = [
    "student: id[name => joe][age => 20]",
    "part: f(part_id => 123)",
    "student: id(name => joe][age => 20]",
]


def parse_example1_terms():
    return [parse_term(source) for source in WELL_FORMED]


def big_program_source(facts: int = 300) -> str:
    lines = []
    for i in range(facts):
        lines.append(
            f"person: p{i}[children => {{c{i}a, c{i}b}}, age => {20 + i % 50}]."
        )
    lines.append("worker: X[status => busy] :- person: X[age => A], A > 30.")
    return "\n".join(lines)


def test_e1_verdicts(benchmark):
    """The grammar accepts exactly the paper's terms."""
    terms = benchmark(parse_example1_terms)
    assert len(terms) == 4
    for source in REJECTED:
        with pytest.raises(ParseError):
            parse_term(source)


def test_e1_parser_throughput(benchmark):
    source = big_program_source()
    unit = benchmark(parse_program, source)
    assert len(unit.program.clauses) == 301
