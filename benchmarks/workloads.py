"""Shared workload generators for the experiment benchmarks.

The paper evaluates nothing on a machine, so these workloads are our
operationalizations of its claims: parametric graphs for the path
rules, scalable extensional path databases for the direct-vs-translated
comparison, grammar scaling for the noun-phrase program, and deep type
chains for the order-sorted experiments.  Everything is deterministic.
"""

from __future__ import annotations

import random

from repro.core.builder import fact, obj, program, rule, subtype
from repro.core.clauses import DefiniteClause, Program
from repro.core.terms import Var
from repro.core.types import SubtypeDecl
from repro.lang.parser import parse_program

__all__ = [
    "chain_graph_program",
    "path_rules_source",
    "extensional_path_db",
    "split_multivalued_db",
    "grammar_program",
    "deep_hierarchy_program",
    "family_db",
]


def path_rules_source() -> str:
    """The skolemized (reading 1) path rules of Section 2.1."""
    return """
path: id(X, Y)[src => X, dest => Y, length => 1] :- node: X[linkto => Y].
path: id(X, Y)[src => X, dest => Y, length => L] :-
    node: X[linkto => Z],
    path: C0[src => Z, dest => Y, length => L0],
    L is L0 + 1.
"""


def chain_graph_program(nodes: int) -> Program:
    """``n0 -> n1 -> ... -> n_{nodes-1}`` plus the path rules."""
    lines = [
        f"node: n{i}[linkto => n{i + 1}]." for i in range(nodes - 1)
    ]
    return parse_program("\n".join(lines) + path_rules_source()).program


def extensional_path_db(size: int, functional: bool = True) -> Program:
    """``size`` path facts over ``2 * size`` endpoint objects.

    With ``functional=True`` each object has exactly one ``src`` and one
    ``dest`` — the case Section 4 says direct whole-object evaluation
    handles in one unification step per fact.
    """
    facts = []
    for i in range(size):
        facts.append(fact(obj(f"p{i}", type="path", src=f"s{i}", dest=f"d{i}")))
        if not functional:
            facts.append(
                fact(obj(f"p{i}", type="path", src=f"s{i}x", dest=f"d{i}x"))
            )
    return program(*facts)


def split_multivalued_db(objects: int, values_per_label: int) -> Program:
    """Each object's multi-valued labels split across one fact per value
    (the E7 shape: no single fact supports a cross-value query)."""
    facts = []
    for i in range(objects):
        for j in range(values_per_label):
            facts.append(fact(obj(f"p{i}", type="path", src=f"a{j}")))
            facts.append(fact(obj(f"p{i}", type="path", dest=f"b{j}")))
    return program(*facts)


def grammar_program(nouns: int, determiners: int) -> Program:
    """Example 3 scaled: more nouns and determiners, same rules."""
    lines = ["name: john.", "name: bob."]
    for i in range(determiners):
        num = "singular" if i % 2 == 0 else "plural"
        lines.append(f"determiner: det{i}[num => {num}, def => indef].")
    for i in range(nouns):
        num = "singular" if i % 2 == 0 else "plural"
        lines.append(f"noun: noun{i}[num => {num}].")
    lines.append(
        "proper_np: X[pers => 3, num => singular, def => definite] :- name: X."
    )
    lines.append(
        "common_np: np(Det, Noun)[pers => 3, num => N, def => D] :- "
        "determiner: Det[num => N, def => D], noun: Noun[num => N]."
    )
    lines.append("proper_np < noun_phrase.")
    lines.append("common_np < noun_phrase.")
    return parse_program("\n".join(lines)).program


def deep_hierarchy_program(depth: int, members_per_type: int) -> Program:
    """A subtype chain t0 < t1 < ... < t_{depth-1} with members asserted
    at the bottom type only, so queries at the top exercise the whole
    chain."""
    clauses: list[DefiniteClause] = []
    for i in range(members_per_type):
        clauses.append(fact(obj(f"m{i}", type="t0")))
    subtypes = [subtype(f"t{i}", f"t{i + 1}") for i in range(depth - 1)]
    return Program(tuple(clauses), tuple(subtypes))


def family_db(parents: int, children_per_parent: int) -> Program:
    """Section 5 workload: parents with several children each."""
    facts = []
    for i in range(parents):
        children = [f"c{i}_{j}" for j in range(children_per_parent)]
        facts.append(fact(obj(f"parent{i}", type="person", children=children)))
    return program(*facts)
