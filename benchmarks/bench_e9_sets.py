"""E9 — Section 5: set manipulation through multi-valued labels.

Paper artifacts: the ``children => {bob, bill, joe}`` fact with the
``{X, Y}`` query (both variables range over all children: 9 bindings),
subset semantics of ``=>``, and set union through separate rules.

We assert the counts and measure set-style queries as the set sizes
grow.
"""

import pytest

from repro.engine.direct import DirectEngine
from repro.lang.parser import parse_program, parse_query

from workloads import family_db

from tests.conftest import CHILDREN_SOURCE


def test_e9_pair_query_has_nine_answers(benchmark):
    engine = DirectEngine(parse_program(CHILDREN_SOURCE).program)
    query = parse_query(":- person: john[children => {X, Y}].")
    answers = benchmark(lambda: engine.solve(query))
    assert len(answers) == 9


def test_e9_subset_and_element_queries(benchmark):
    engine = DirectEngine(parse_program(CHILDREN_SOURCE).program)
    subset = parse_query(":- person: john[children => {bob, joe}].")
    not_subset = parse_query(":- person: john[children => {bob, zed}].")
    element = parse_query(":- person: john[children => bill].")

    def verdicts():
        return engine.holds(subset), engine.holds(not_subset), engine.holds(element)

    assert benchmark(verdicts) == (True, False, True)


def test_e9_union_via_separate_rules(benchmark):
    source = """
    in_a(x1). in_a(x2).
    in_b(x2). in_b(x3).
    set: s[members => X] :- in_a(X).
    set: s[members => X] :- in_b(X).
    """
    engine = DirectEngine(parse_program(source).program)
    query = parse_query(":- set: s[members => M].")
    answers = benchmark(lambda: engine.solve(query))
    assert len(answers) == 3  # union, duplicates collapse


@pytest.mark.parametrize("children", [4, 8, 16])
def test_e9_pair_query_scaling(benchmark, children):
    """The {X, Y} query is quadratic in the set size — k^2 answers."""
    program = family_db(parents=1, children_per_parent=children)
    engine = DirectEngine(program)
    engine.saturate()
    query = parse_query(":- person: parent0[children => {X, Y}].")
    answers = benchmark(lambda: engine.solve(query))
    assert len(answers) == children * children


def test_e9_indirect_set_access(benchmark):
    """'By passing john around, the set associated with john by children
    can be indirectly accessed through object john.'"""
    source = CHILDREN_SOURCE + """
    grandpa: abe[children => john].
    grandchild_of(G, C) :- grandpa: G[children => P], person: P[children => C].
    """
    engine = DirectEngine(parse_program(source).program)
    answers = benchmark(lambda: engine.solve(parse_query(":- grandchild_of(abe, C).")))
    assert len(answers) == 3
