"""E5 — Section 4: static redundancy elimination.

Paper artifacts: the two elimination cases, the optimized common_np
clause, and the claim that "most of these redundancies can be
eliminated by static program analysis".  We assert the exact clause,
measure the optimizer itself, the size reduction, and the bottom-up
evaluation speedup on the optimized program.
"""

from repro.engine.bottomup import naive_fixpoint
from repro.fol.pretty import pretty_generalized
from repro.lang.parser import parse_program
from repro.transform.clauses import program_to_generalized
from repro.transform.optimize import optimize_program

from workloads import grammar_program

from tests.conftest import NOUN_PHRASE_SOURCE

PAPER_OPTIMIZED_COMMON_NP = (
    "common_np(np(Det, Noun)), object(3), pers(np(Det, Noun), 3), "
    "num(np(Det, Noun), N), def(np(Det, Noun), D) :- "
    "determiner(Det), object(N), num(Det, N), object(D), def(Det, D), "
    "noun(Noun), num(Noun, N)."
)


def test_e5_optimizer_reproduces_paper_clause(benchmark):
    program = parse_program(NOUN_PHRASE_SOURCE).program
    generalized = program_to_generalized(program, dedupe=False)
    optimized, report = benchmark(optimize_program, generalized)
    rendered = [pretty_generalized(c) for c in optimized.clauses]
    assert PAPER_OPTIMIZED_COMMON_NP in rendered
    assert optimized.atom_count() < generalized.atom_count()


def test_e5_size_reduction_on_scaled_grammar(benchmark):
    program = grammar_program(nouns=40, determiners=10)
    generalized = program_to_generalized(program, dedupe=False)
    optimized, report = benchmark(optimize_program, generalized)
    reduction = generalized.atom_count() - optimized.atom_count()
    assert reduction >= report.atoms_deleted > 0


def test_e5_evaluation_speedup_raw(benchmark):
    program = grammar_program(nouns=20, determiners=8)
    raw = program_to_generalized(program, dedupe=False)
    facts = benchmark(lambda: naive_fixpoint(raw.split()))
    assert len(facts) > 0


def test_e5_evaluation_speedup_optimized(benchmark):
    """Compare this timing against test_e5_evaluation_speedup_raw: the
    optimized program derives the same model with fewer rule atoms."""
    program = grammar_program(nouns=20, determiners=8)
    raw = program_to_generalized(program, dedupe=False)
    optimized, _ = optimize_program(raw)
    raw_facts = naive_fixpoint(raw.split()).snapshot()
    facts = benchmark(lambda: naive_fixpoint(optimized.split()))
    assert facts.snapshot() == raw_facts
