#!/usr/bin/env python3
"""Incremental maintenance vs. from-scratch recomputation.

Measures ``repro.incremental.IncrementalEngine.apply`` against a full
semi-naive fixpoint over the post-update assertions, on the two
workloads the maintenance subsystem is pitched at:

* the Section 2.1 ``path`` program over a chain graph (translated to
  FOL, skolem ids and ``length`` arithmetic included), under a
  single-fact insert at the chain's tail, a single-fact retract of the
  last edge, and a 1%-batch churn;
* the Section 5 (E9) sets workload — parents with multi-valued
  ``children`` labels plus a quadratic sibling-pair rule — under the
  same churn shapes.

Every row cross-checks that the maintained model equals the recomputed
one and the script exits non-zero if any disagree.  Results land in
``BENCH_incremental.json`` (checked by ``tools/check_bench_schema.py``).

Usage:

    python benchmarks/bench_incremental.py --smoke    # CI-sized
    python benchmarks/bench_incremental.py --out PATH
"""

import argparse
import json
import sys
import time
from pathlib import Path

HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(HERE))  # workloads
sys.path.insert(0, str(HERE.parent / "src"))

from repro.engine.seminaive import seminaive_fixpoint  # noqa: E402
from repro.fol.atoms import FAtom, HornClause  # noqa: E402
from repro.fol.terms import FConst, FVar  # noqa: E402
from repro.incremental import IncrementalEngine  # noqa: E402
from repro.lang.parser import parse_program  # noqa: E402
from repro.transform.clauses import clause_to_generalized, program_to_fol  # noqa: E402

from workloads import chain_graph_program, family_db  # noqa: E402

SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------

def fact_atoms(source):
    """The ground FOL conjuncts of the C-logic facts in ``source`` —
    the same translation the transactional KB applies to updates."""
    atoms = []
    for clause in parse_program(source).program.clauses:
        atoms.extend(clause_to_generalized(clause).heads)
    return atoms


X, Y, Z = FVar("X"), FVar("Y"), FVar("Z")

TC_RULES = [
    HornClause(FAtom("tc", (X, Y)), (FAtom("edge", (X, Y)),)),
    HornClause(FAtom("tc", (X, Z)), (FAtom("edge", (X, Y)), FAtom("tc", (Y, Z)))),
]


def chain_edge(source, target):
    return FAtom("edge", (FConst(f"n{source}"), FConst(f"n{target}")))


def tc_workload(nodes):
    """Transitive closure over an ``nodes``-edge chain, with tail-edge
    updates.

    Single-fact churn deliberately happens at the chain's *tail*: that
    is the O(n) change (n new/dead ``tc`` facts).  A mid-chain edge
    touches O(n^2) closure facts and is a different experiment.
    """
    base = [HornClause(chain_edge(i, i + 1)) for i in range(nodes)] + TC_RULES
    insert = [chain_edge(nodes, nodes + 1)]
    retract = [chain_edge(nodes - 1, nodes)]
    return base, insert, retract


def path_workload(nodes):
    """The translated Section 2.1 ``path`` program over a chain.

    The skolemized translation is orders of magnitude heavier per fact
    than raw transitive closure (every path object carries ``src``,
    ``dest``, ``length``, and type-axiom conjuncts), so — exactly as in
    ``bench_join_core`` — it runs at small n.
    """
    base = list(program_to_fol(chain_graph_program(nodes)).clauses)
    last = nodes - 2  # chain_graph_program(n) has edges n0 -> ... -> n_{n-1}
    insert = fact_atoms(f"node: n{nodes - 1}[linkto => n{nodes}].")
    retract = fact_atoms(f"node: n{last}[linkto => n{last + 1}].")
    return base, insert, retract


SIBLING_RULES_SOURCE = """
sibling(X, Y) :- person: P[children => X], person: P[children => Y].
"""


def sets_workload(children):
    """E9: parents with ``children`` sets, plus the quadratic
    sibling-pair rule (the ``{X, Y}`` query shape as a derived
    relation)."""
    base_program = family_db(parents=4, children_per_parent=children)
    rules = parse_program(SIBLING_RULES_SOURCE).program
    clauses = list(program_to_fol(base_program).clauses) + list(
        program_to_fol(rules).rules()
    )
    insert = fact_atoms("person: parent0[children => c_new].")
    retract = fact_atoms("person: parent0[children => c0_0].")
    return clauses, insert, retract


# ----------------------------------------------------------------------
# Measurement
# ----------------------------------------------------------------------

def best_of(repeats, fn):
    """(best milliseconds, last result)."""
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, (time.perf_counter() - start) * 1000.0)
    return best, result


def bench_update(name, size, clauses, inserts, retracts, repeats):
    """One row: maintain a warm engine through the update batch
    (after) vs. recompute the post-update model from scratch (before).

    Steady state is what gets timed: the engine holds its materialized
    model between updates by design, so the one-time costs (initial
    materialization, on-demand join indexes) are paid before the clock
    starts, and each repeat undoes the batch before re-applying it.
    """
    rules = [clause for clause in clauses if clause.body]

    engine = IncrementalEngine(clauses)
    engine.materialize()  # warm — not part of the maintenance cost
    engine.apply(inserts=inserts, retracts=retracts)  # warm the join paths
    engine.apply(inserts=retracts, retracts=inserts)  # ... and undo

    after_ms = float("inf")
    for repeat in range(repeats):
        start = time.perf_counter()
        engine.apply(inserts=inserts, retracts=retracts)
        after_ms = min(after_ms, (time.perf_counter() - start) * 1000.0)
        if repeat < repeats - 1:
            engine.apply(inserts=retracts, retracts=inserts)
    maintained = engine.snapshot()

    post_clauses = [HornClause(fact) for fact in engine.edb] + rules
    before_ms, recomputed = best_of(
        repeats, lambda: seminaive_fixpoint(post_clauses).snapshot()
    )

    row = {
        "name": name,
        "size": size,
        "before_ms": round(before_ms, 3),
        "after_ms": round(after_ms, 3),
        "speedup": round(before_ms / after_ms, 2) if after_ms else 0.0,
        "checks": {
            "maintained_facts": len(maintained),
            "recomputed_facts": len(recomputed),
            "counts_equal": maintained == recomputed,
        },
    }
    print(
        f"  {name:<24} n={size:<4} recompute={before_ms:9.2f}ms  "
        f"maintain={after_ms:9.2f}ms  speedup={row['speedup']:>7.2f}x",
        flush=True,
    )
    return row


def tc_churn_batch(size):
    """A 1%-of-the-EDB batch: fresh tail edges in, tail edges out."""
    count = max(1, size // 100)
    inserts = [chain_edge(size + offset, size + offset + 1) for offset in range(count)]
    retracts = [chain_edge(size - 1 - offset, size - offset) for offset in range(count)]
    return inserts, retracts


# ----------------------------------------------------------------------

def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument(
        "--out",
        default=str(HERE.parent / "BENCH_incremental.json"),
        help="output JSON path (default: repo root BENCH_incremental.json)",
    )
    args = parser.parse_args(argv)

    repeats = 1 if args.smoke else 3
    tc_sizes = [24] if args.smoke else [32, 64, 96]
    path_sizes = [6] if args.smoke else [8]
    sets_sizes = [4] if args.smoke else [8, 16]

    print(f"incremental benchmark ({'smoke' if args.smoke else 'full'})", flush=True)
    workloads = []
    for size in tc_sizes:
        clauses, insert, retract = tc_workload(size)
        workloads.append(
            bench_update("tc_insert", size, clauses, insert, [], repeats)
        )
        workloads.append(
            bench_update("tc_retract", size, clauses, [], retract, repeats)
        )
        churn_in, churn_out = tc_churn_batch(size)
        workloads.append(
            bench_update("tc_churn_1pct", size, clauses, churn_in, churn_out, repeats)
        )
    for size in path_sizes:
        clauses, insert, retract = path_workload(size)
        workloads.append(
            bench_update("path_insert", size, clauses, insert, [], repeats)
        )
        workloads.append(
            bench_update("path_retract", size, clauses, [], retract, repeats)
        )
    for size in sets_sizes:
        clauses, insert, retract = sets_workload(size)
        workloads.append(
            bench_update("sets_insert", size, clauses, insert, [], repeats)
        )
        workloads.append(
            bench_update("sets_retract", size, clauses, [], retract, repeats)
        )
        workloads.append(
            bench_update("sets_churn", size, clauses, insert, retract, repeats)
        )

    payload = {
        "benchmark": "incremental",
        "schema_version": SCHEMA_VERSION,
        "smoke": args.smoke,
        "python": sys.version.split()[0],
        "workloads": workloads,
    }
    out_path = Path(args.out)
    out_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out_path}", flush=True)

    failures = [w for w in workloads if not w["checks"]["counts_equal"]]
    if failures:
        print(f"FAILED cross-checks: {failures}", file=sys.stderr)
        return 1
    headline = max(
        (w for w in workloads if w["name"] in ("tc_insert", "tc_retract")),
        key=lambda w: (w["size"], w["speedup"]),
    )
    print(
        f"headline: {headline['name']} n={headline['size']} "
        f"maintenance {headline['speedup']}x faster than recompute",
        flush=True,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
