"""Deterministic fault injection for the storage and maintenance layer.

The transaction journal (PR 4) promises atomicity: either every
mutation of a :meth:`kb.transaction` commit lands, or none do.  A
promise like that is only worth what its failure testing proves, so
this module lets tests *crash the commit path on purpose* at named,
registered failure points and then assert that the store is
bit-identical to its pre-transaction snapshot and the maintained model
matches a from-scratch recompute.

Design:

* Instrumented modules call :func:`register_fault_point` at import time
  and :func:`fault_point` at the top of each mutator / journal op.
  With no injector active, ``fault_point`` is one global read and one
  ``None`` check — cheap enough to leave compiled in permanently.

* Tests activate a :class:`FaultInjector` via the
  :func:`inject_faults` context manager with a *plan* mapping point
  name → which hit should crash (1-based).  Everything is counted
  deterministically; there is no randomness, so a failing scenario is
  reproducible from its plan alone.

* An injector with an empty plan doubles as a *hit counter*: run the
  scenario once to discover which points it reaches and how often,
  then iterate over every ``(point, k)`` pair injecting each in turn.

* :class:`InjectedFault` subclasses ``RuntimeError`` — deliberately
  **not** :class:`~repro.core.errors.CLogicError` — so no recovery
  path in the code under test can accidentally swallow it.

This module depends only on the standard library: instrumented modules
import it, never the reverse (``known_failure_points`` imports them
lazily).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping, Optional

__all__ = [
    "InjectedFault",
    "FaultInjector",
    "inject_faults",
    "fault_point",
    "register_fault_point",
    "known_failure_points",
]


class InjectedFault(RuntimeError):
    """The crash raised at an activated failure point.

    A ``RuntimeError`` (not a ``CLogicError``) so that the library's
    own error handling cannot mask an injected crash.
    """

    def __init__(self, point: str, hit: int) -> None:
        super().__init__(f"injected fault at {point!r} (hit #{hit})")
        self.point = point
        self.hit = hit


#: Every failure point declared by an instrumented module, in
#: registration order.  Names are dotted paths, e.g.
#: ``"store.commit_journal"`` or ``"kb.commit.swap"``.
_REGISTRY: List[str] = []

#: The active injector, or None.  Module-global rather than
#: thread-local: the test suite drives one scenario at a time, and a
#: global keeps the disabled-path cost to a single load.
_active: Optional["FaultInjector"] = None


def register_fault_point(name: str) -> str:
    """Declare a failure point (idempotent).  Returns the name so call
    sites can do ``_FP_COMMIT = register_fault_point("store.commit_journal")``."""
    if name not in _REGISTRY:
        _REGISTRY.append(name)
    return name


def fault_point(name: str) -> None:
    """The instrumentation hook: crash here if the active plan says so."""
    if _active is not None:
        _active._hit(name)


class FaultInjector:
    """Deterministic crash scheduler plus hit counter.

    ``plan`` maps failure-point name → the 1-based hit number at which
    to raise :class:`InjectedFault`.  Points absent from the plan are
    merely counted, so an empty-plan injector records which points a
    scenario reaches (``injector.hits``) without perturbing it.
    """

    def __init__(self, plan: Optional[Mapping[str, int]] = None) -> None:
        self.plan: Dict[str, int] = dict(plan or {})
        self.hits: Dict[str, int] = {}
        self.fired: Optional[InjectedFault] = None
        for point, nth in self.plan.items():
            if nth < 1:
                raise ValueError(
                    f"plan for {point!r} must target hit >= 1, got {nth}"
                )

    def _hit(self, name: str) -> None:
        count = self.hits.get(name, 0) + 1
        self.hits[name] = count
        nth = self.plan.get(name)
        if nth is not None and count == nth:
            fault = InjectedFault(name, count)
            if self.fired is None:
                self.fired = fault
            raise fault

    def count(self, name: str) -> int:
        """How many times ``name`` was reached so far."""
        return self.hits.get(name, 0)


@contextmanager
def inject_faults(
    plan: Optional[Mapping[str, int]] = None,
) -> Iterator[FaultInjector]:
    """Activate a :class:`FaultInjector` for the duration of the block.

    Nested activation is rejected: overlapping injectors would make hit
    counts ambiguous and scenarios non-reproducible.
    """
    global _active
    if _active is not None:
        raise RuntimeError("fault injection is already active")
    injector = FaultInjector(plan)
    _active = injector
    try:
        yield injector
    finally:
        _active = None


def known_failure_points() -> List[str]:
    """All registered failure points, importing the instrumented
    modules first so their registrations have run."""
    import repro.db.store  # noqa: F401
    import repro.db.updates  # noqa: F401
    import repro.engine.factbase  # noqa: F401
    import repro.incremental.engine  # noqa: F401
    import repro.interface.kb  # noqa: F401

    return list(_REGISTRY)
