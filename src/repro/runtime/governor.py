"""The resource governor: deadlines, budgets, caps, cancellation.

The ROADMAP's north star is a system that serves heavy traffic; the
operational precondition is that *no single query can hang a worker*.
Mature logic-inference systems (IDP, FO(C) inference) treat resource
control as core inference infrastructure, not an afterthought — every
solver call is bounded, interruptible, and reports partial results.
This module is that layer for the five evaluation strategies of the
C-logic reproduction:

* :class:`Governor` — one object carrying every limit (wall-clock
  deadline, derivation/step budget, fact-count cap, recursion-depth
  cap) plus a cooperative cancellation token.  Engines call
  :meth:`Governor.tick` at round/resolution-step granularity, so an
  overrun is caught within one join step, and :meth:`Governor.check_facts`
  whenever the derived model grows.

* :class:`PartialResult` — what a governed engine returns when a limit
  trips in the default (non-strict) mode: the facts/answers derived so
  far, an explicit ``complete=False`` marker naming the triggering
  limit, and the obs/EXPLAIN snapshot at interruption.  In *strict*
  mode the engine raises the
  :class:`~repro.core.errors.ResourceExhausted` subclass instead.

* :class:`GovernanceSummary` — the governance section of an EXPLAIN
  report: the limits configured, the resources consumed, and whether
  (and why) the run was interrupted.

The governor is deliberately cooperative: it never kills threads or
installs signal handlers.  Engines volunteer ticks on their hot paths;
the cost with no governor attached is one ``None`` check, the same
discipline as the :mod:`repro.obs` hooks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.core.errors import (
    BudgetExceeded,
    DeadlineExceeded,
    DepthExceeded,
    EvaluationCancelled,
    FactLimitExceeded,
    ResourceExhausted,
)

__all__ = [
    "Governor",
    "GovernanceSummary",
    "PartialResult",
    "as_resource_error",
    "degrade",
]


@dataclass
class GovernanceSummary:
    """The EXPLAIN "governance" section of one governed run.

    Duck-typed by :class:`repro.obs.report.ExplainReport` (which reads
    the fields by name, like the maintenance section), so :mod:`repro.obs`
    keeps its zero-dependency property.
    """

    deadline: Optional[float] = None
    budget: Optional[int] = None
    max_facts: Optional[int] = None
    max_depth: Optional[int] = None
    strict: bool = False
    elapsed: float = 0.0
    steps: int = 0
    interrupted: str = ""  #: limit family, "" when the run completed
    reason: str = ""

    def describe(self) -> str:
        """One line per the report's conventions."""
        def cap(value, unit=""):
            return f"{value}{unit}" if value is not None else "unlimited"

        return (
            f"deadline: {cap(self.deadline, 's')}   budget: {cap(self.budget)}   "
            f"max facts: {cap(self.max_facts)}   max depth: {cap(self.max_depth)}"
        )


@dataclass
class PartialResult:
    """A governed evaluation outcome: possibly partial, never silent.

    ``value`` is whatever the engine would have returned had it
    finished — a :class:`~repro.engine.factbase.FactBase` for the
    fixpoint engines, a list of substitutions/answers for the provers,
    an :class:`~repro.db.store.ObjectStore` for the direct engine, a
    ``MaintenanceStats`` for an interrupted transaction commit.  When
    ``complete`` is False, ``limit`` names the limit family that
    tripped and ``reason`` is the human-readable diagnostic; ``report``
    is the EXPLAIN snapshot at interruption when the run was observed.
    """

    value: Any
    complete: bool = False
    limit: str = ""
    reason: str = ""
    elapsed: float = 0.0
    steps: int = 0
    report: Any = None
    cause: Optional[ResourceExhausted] = None

    @property
    def incomplete(self) -> bool:
        return not self.complete

    def unwrap(self) -> Any:
        """The value if complete, else re-raise the triggering limit."""
        if self.complete:
            return self.value
        if self.cause is not None:
            raise self.cause
        raise ResourceExhausted(self.reason or f"{self.limit} limit hit")

    @classmethod
    def done(cls, value: Any, governor: "Optional[Governor]" = None, report=None) -> "PartialResult":
        """Wrap a completed value (uniform return type for callers that
        always want a :class:`PartialResult`)."""
        return cls(
            value=value,
            complete=True,
            elapsed=governor.elapsed() if governor is not None else 0.0,
            steps=governor.steps if governor is not None else 0,
            report=report,
        )


class Governor:
    """Every resource limit of one evaluation, plus a cancel token.

    Thread one instance through an engine run; all limits are optional
    and independent:

    ``deadline``
        wall-clock seconds from :meth:`start` (engines start the
        governor on entry; the first :meth:`tick` starts it lazily).
    ``budget``
        total step budget — a step is one body evaluation (bottom-up),
        one resolution attempt (SLD/tabling), one candidate/label probe
        (direct), one maintenance body evaluation (incremental).
    ``max_facts``
        cap on the derived model size, checked as the model grows.
    ``max_depth``
        recursion-depth cap for the top-down provers.
    ``strict``
        when True, engines re-raise the
        :class:`~repro.core.errors.ResourceExhausted` instead of
        degrading to a :class:`PartialResult`.

    The clock is injectable for deterministic tests.
    """

    __slots__ = (
        "deadline",
        "budget",
        "max_facts",
        "max_depth",
        "strict",
        "steps",
        "_clock",
        "_started_at",
        "_deadline_at",
        "_cancel_reason",
        "_violation",
    )

    def __init__(
        self,
        deadline: Optional[float] = None,
        budget: Optional[int] = None,
        max_facts: Optional[int] = None,
        max_depth: Optional[int] = None,
        strict: bool = False,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.deadline = deadline
        self.budget = budget
        self.max_facts = max_facts
        self.max_depth = max_depth
        self.strict = strict
        self.steps = 0
        self._clock = clock
        self._started_at: Optional[float] = None
        self._deadline_at: Optional[float] = None
        self._cancel_reason: Optional[str] = None
        self._violation: Optional[ResourceExhausted] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "Governor":
        """Arm the clock (idempotent — the first caller wins, so nested
        engine calls share one deadline)."""
        if self._started_at is None:
            self._started_at = self._clock()
            if self.deadline is not None:
                self._deadline_at = self._started_at + self.deadline
        return self

    def elapsed(self) -> float:
        """Wall-clock seconds since :meth:`start` (0.0 before it)."""
        if self._started_at is None:
            return 0.0
        return self._clock() - self._started_at

    def cancel(self, reason: str = "evaluation cancelled") -> None:
        """Request cooperative cancellation; the next tick trips it."""
        self._cancel_reason = reason

    @property
    def cancelled(self) -> bool:
        return self._cancel_reason is not None

    @property
    def interrupted(self) -> Optional[ResourceExhausted]:
        """The violation that tripped this governor, if any."""
        return self._violation

    # ------------------------------------------------------------------
    # Checks (the engine hot-path API)
    # ------------------------------------------------------------------

    def tick(self, steps: int = 1) -> None:
        """Account ``steps`` units of work; raise on any tripped limit.

        Engines call this at round/resolution-step granularity — cheap
        enough for the hot loop (an int add, two compares, one clock
        read), tight enough that an overrun is caught within one join
        step.
        """
        self.steps += steps
        if self._cancel_reason is not None:
            self._trip(EvaluationCancelled(self._cancel_reason))
        if self.budget is not None and self.steps > self.budget:
            self._trip(
                BudgetExceeded(
                    f"step budget of {self.budget} exhausted "
                    f"(after {self.steps} steps)"
                )
            )
        if self._deadline_at is not None:
            if self._started_at is None:
                self.start()
            if self._clock() > self._deadline_at:
                self._trip(
                    DeadlineExceeded(
                        f"deadline of {self.deadline:.3f}s exceeded "
                        f"(elapsed {self.elapsed():.3f}s)"
                    )
                )
        elif self.deadline is not None and self._started_at is None:
            # Lazy start: the first tick arms the clock.
            self.start()

    def check_facts(self, count: int) -> None:
        """Enforce the fact-count cap against the current model size."""
        if self.max_facts is not None and count > self.max_facts:
            self._trip(
                FactLimitExceeded(
                    f"derived model grew past the cap of {self.max_facts} "
                    f"facts ({count} derived)"
                )
            )

    def check_depth(self, depth: int) -> None:
        """Enforce the recursion-depth cap (top-down provers)."""
        if self.max_depth is not None and depth > self.max_depth:
            self._trip(
                DepthExceeded(
                    f"recursion depth {depth} exceeded the cap of "
                    f"{self.max_depth}"
                )
            )

    def _trip(self, violation: ResourceExhausted) -> None:
        violation.elapsed = self.elapsed()
        violation.steps = self.steps
        if self._violation is None:
            self._violation = violation
        raise violation

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def summary(self) -> GovernanceSummary:
        """The governance section for EXPLAIN reports."""
        violation = self._violation
        return GovernanceSummary(
            deadline=self.deadline,
            budget=self.budget,
            max_facts=self.max_facts,
            max_depth=self.max_depth,
            strict=self.strict,
            elapsed=self.elapsed(),
            steps=self.steps,
            interrupted=violation.limit if violation is not None else "",
            reason=str(violation) if violation is not None else "",
        )

    def __repr__(self) -> str:
        limits = []
        if self.deadline is not None:
            limits.append(f"deadline={self.deadline}s")
        if self.budget is not None:
            limits.append(f"budget={self.budget}")
        if self.max_facts is not None:
            limits.append(f"max_facts={self.max_facts}")
        if self.max_depth is not None:
            limits.append(f"max_depth={self.max_depth}")
        if self.strict:
            limits.append("strict")
        return f"Governor({', '.join(limits) or 'unlimited'})"


def as_resource_error(exc: BaseException) -> ResourceExhausted:
    """Normalize an evaluation interruption to a typed limit error.

    Engines catch ``(ResourceExhausted, RecursionError)`` at their
    boundaries: a :class:`RecursionError` means the derived terms got
    deep enough that even *hashing* one recurses past Python's stack —
    a resource exhaustion in every sense that matters, so it degrades
    like a depth cap instead of crashing the caller.
    """
    if isinstance(exc, ResourceExhausted):
        return exc
    return DepthExceeded(
        "Python recursion limit hit (the derived terms nest too deeply "
        "to process); treat as a depth-cap interruption"
    )


def degrade(
    governor: Optional[Governor],
    violation: ResourceExhausted,
    value: Any,
    report=None,
) -> PartialResult:
    """The uniform engine-boundary policy for a tripped limit.

    Strict governors (and runs with no governor at all — legacy hard
    parameters such as ``max_rounds``) re-raise; the default governed
    mode returns a :class:`PartialResult` carrying the partial
    ``value``, and stamps the governance section onto the EXPLAIN
    ``report`` so the interruption is visible exactly where the run's
    account is.
    """
    if governor is None or governor.strict:
        raise violation
    if governor._violation is None:
        # A limit the engine enforced itself (e.g. a max_rounds overrun)
        # rather than one the governor tripped: record it so summary()
        # reports the interruption either way.
        governor._violation = violation
    if report is not None:
        report.governance = governor.summary()
    return PartialResult(
        value=value,
        complete=False,
        limit=violation.limit,
        reason=str(violation),
        elapsed=(
            violation.elapsed
            if violation.elapsed is not None
            else governor.elapsed()
        ),
        steps=violation.steps if violation.steps is not None else governor.steps,
        report=report,
        cause=violation,
    )
