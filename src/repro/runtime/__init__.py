"""Resource-governed evaluation runtime.

Two facilities that make the five evaluation engines operable:

* :mod:`repro.runtime.governor` — the :class:`Governor` (deadlines,
  budgets, caps, cooperative cancellation) and the
  :class:`PartialResult` engines degrade to when a limit trips.
* :mod:`repro.runtime.faults` — deterministic fault injection for
  proving transactional atomicity of the store and the maintained
  model under mid-commit crashes.
"""

from repro.runtime.faults import (
    FaultInjector,
    InjectedFault,
    fault_point,
    inject_faults,
    known_failure_points,
    register_fault_point,
)
from repro.runtime.governor import (
    GovernanceSummary,
    Governor,
    PartialResult,
    degrade,
)

__all__ = [
    "Governor",
    "GovernanceSummary",
    "PartialResult",
    "degrade",
    "FaultInjector",
    "InjectedFault",
    "fault_point",
    "inject_faults",
    "known_failure_points",
    "register_fault_point",
]
