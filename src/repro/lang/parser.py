"""Recursive-descent parser for the concrete syntax of C-logic.

The grammar follows Section 3.1 and the program syntax of Section 4::

    program    := statement* EOF
    statement  := subtype '.' | clause '.' | query '.'
    subtype    := IDENT '<' IDENT
    clause     := atom (':-' body)?
    query      := (':-' | '?-') body
    body       := body_atom (',' body_atom)*
    body_atom  := atom | term 'is' arith | arith CMP arith | term '=' term
    atom       := term | IDENT '(' term_list ')'
    term       := (IDENT ':')? base ('[' spec (',' spec)* ']')?
    base       := VARIABLE | NUMBER | STRING | IDENT ('(' term_list ')')?
    spec       := IDENT '=>' (term | '{' term_list '}')

One deliberate convention resolves the paper's predicate/term ambiguity:
at *atom* position, a bare ``name(args)`` with no type prefix and no
label block is read as a **predicate atom**; prefix it with a type
(``object: name(args)``) to force the term reading.  The paper keeps
the two apart semantically (end of Section 3.2) but its concrete syntax
relies on context; ours makes the choice explicit.

Example 1's non-terms are rejected here: ``student: id[name=>joe][age=>20]``
(labelling a labelled term), ``part: f(part_id => 123)`` (a label spec
is not a term, so it cannot be a function argument) and ``part: f[...]``
where ``f`` is used at arity 0 after being declared unary is permitted
syntactically — arity policing is a schema concern the paper leaves to
the layer above the logic, but the first two are grammar violations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.clauses import (
    BodyAtom,
    BuiltinAtom,
    DefiniteClause,
    NegatedAtom,
    Program,
    Query,
)
from repro.core.errors import ParseError
from repro.core.formulas import Atom, PredAtom, TermAtom
from repro.core.terms import (
    BaseTerm,
    Collection,
    Const,
    Func,
    LabelSpec,
    LTerm,
    OBJECT,
    Term,
    Var,
)
from repro.core.types import SubtypeDecl
from repro.lang.lexer import Token, tokenize

__all__ = [
    "ParsedUnit",
    "Parser",
    "parse_program",
    "parse_clause",
    "parse_query",
    "parse_atom",
    "parse_term",
]

_CMP_TOKENS = {
    "LT": "<",
    "GT": ">",
    "LE": "=<",
    "GE": ">=",
    "ARITH_EQ": "=:=",
    "ARITH_NE": "=\\=",
}
_ADD_TOKENS = {"PLUS": "+", "MINUS": "-"}
_MUL_TOKENS = {"STAR": "*", "INTDIV": "//", "MOD": "mod"}


@dataclass(frozen=True, slots=True)
class ParsedUnit:
    """The result of parsing a source file: a program plus any queries
    that appeared among its statements (in order)."""

    program: Program
    queries: tuple[Query, ...]


class Parser:
    """A single-use recursive-descent parser over a token list."""

    def __init__(self, source: str) -> None:
        self._tokens = tokenize(source)
        self._pos = 0

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "EOF":
            self._pos += 1
        return token

    def _expect(self, kind: str) -> Token:
        token = self._peek()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind}, found {token.kind} {token.text!r}",
                token.line,
                token.column,
            )
        return self._advance()

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(message + f" (found {token.kind} {token.text!r})", token.line, token.column)

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def parse_program(self) -> ParsedUnit:
        clauses: list[DefiniteClause] = []
        subtypes: list[SubtypeDecl] = []
        queries: list[Query] = []
        while self._peek().kind != "EOF":
            if self._peek().kind in ("IMPLIED_BY", "QUERY"):
                self._advance()
                body = self._parse_body()
                self._expect("DOT")
                queries.append(Query(tuple(body)))
                continue
            if (
                self._peek().kind == "IDENT"
                and self._peek(1).kind == "LT"
                and self._peek(2).kind == "IDENT"
                and self._peek(3).kind == "DOT"
            ):
                sub = self._advance().text
                self._advance()  # <
                sup = self._advance().text
                self._expect("DOT")
                subtypes.append(SubtypeDecl(sub, sup))
                continue
            clauses.append(self._parse_clause_statement())
        return ParsedUnit(Program(tuple(clauses), tuple(subtypes)), tuple(queries))

    def parse_single_clause(self) -> DefiniteClause:
        clause = self._parse_clause_statement()
        self._expect("EOF")
        return clause

    def parse_single_query(self) -> Query:
        if self._peek().kind in ("IMPLIED_BY", "QUERY"):
            self._advance()
        body = self._parse_body()
        if self._peek().kind == "DOT":
            self._advance()
        self._expect("EOF")
        return Query(tuple(body))

    def parse_single_atom(self) -> BodyAtom:
        atom = self._parse_body_atom()
        self._expect("EOF")
        return atom

    def parse_single_term(self) -> Term:
        term = self._parse_term()
        self._expect("EOF")
        return term

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _parse_clause_statement(self) -> DefiniteClause:
        head = self._parse_head_atom()
        body: tuple[BodyAtom, ...] = ()
        if self._peek().kind == "IMPLIED_BY":
            self._advance()
            body = tuple(self._parse_body())
        self._expect("DOT")
        return DefiniteClause(head, body)

    def _parse_head_atom(self) -> Atom:
        atom = self._parse_body_atom()
        if isinstance(atom, BuiltinAtom):
            raise self._error("a builtin atom cannot head a clause")
        if isinstance(atom, NegatedAtom):
            raise self._error("a negated atom cannot head a clause")
        return atom

    def _parse_body(self) -> list[BodyAtom]:
        atoms = [self._parse_body_atom()]
        while self._peek().kind == "COMMA":
            self._advance()
            atoms.append(self._parse_body_atom())
        return atoms

    # ------------------------------------------------------------------
    # Atoms
    # ------------------------------------------------------------------

    def _parse_body_atom(self) -> BodyAtom:
        if self._peek().kind == "NAF":
            self._advance()
            inner = self._parse_atom_primary()
            return NegatedAtom(inner)
        atom = self._parse_atom_primary()
        if isinstance(atom, PredAtom):
            return atom
        term = atom.term
        # Arithmetic continuation turns the parsed term into the left
        # operand of a builtin: "L0 + 1 < N" or "L is L0 + 1".
        if self._peek().kind in _ADD_TOKENS or self._peek().kind in _MUL_TOKENS:
            term = self._continue_arith(term)
        next_kind = self._peek().kind
        if next_kind == "IS":
            self._advance()
            rhs = self._parse_arith()
            return BuiltinAtom("is", (term, rhs))
        if next_kind in _CMP_TOKENS:
            op = _CMP_TOKENS[next_kind]
            self._advance()
            rhs = self._parse_arith()
            return BuiltinAtom(op, (term, rhs))
        if next_kind == "EQ":
            self._advance()
            rhs = self._parse_term()
            return BuiltinAtom("=", (term, rhs))
        return TermAtom(term)

    def _parse_atom_primary(self) -> Atom:
        """A predicate atom or a term atom, per the convention in the
        module docstring."""
        token = self._peek()
        if token.kind == "IDENT" and self._peek(1).kind == "LPAREN":
            # Could be a predicate atom or an (untyped) labelled function
            # term; decide after the closing parenthesis.
            name = self._advance().text
            args = self._parse_paren_term_list()
            if self._peek().kind == "LBRACKET":
                base = Func(name, tuple(args))
                return TermAtom(self._parse_labels(base))
            return PredAtom(name, tuple(args))
        return TermAtom(self._parse_term())

    # ------------------------------------------------------------------
    # Terms
    # ------------------------------------------------------------------

    def _parse_term(self) -> Term:
        type_name = OBJECT
        if self._peek().kind == "IDENT" and self._peek(1).kind == "COLON":
            type_name = self._advance().text
            self._advance()  # colon
        base = self._parse_base(type_name)
        if self._peek().kind == "LBRACKET":
            return self._parse_labels(base)
        return base

    def _parse_base(self, type_name: str) -> BaseTerm:
        token = self._peek()
        if token.kind == "VARIABLE":
            self._advance()
            return Var(token.text, type_name)
        if token.kind == "NUMBER":
            self._advance()
            return Const(int(token.text), type_name)
        if token.kind == "STRING":
            self._advance()
            return Const(token.text, type_name)
        if token.kind == "IDENT":
            name = self._advance().text
            if self._peek().kind == "LPAREN":
                args = self._parse_paren_term_list()
                return Func(name, tuple(args), type_name)
            return Const(name, type_name)
        if token.kind == "MINUS" and self._peek(1).kind == "NUMBER":
            self._advance()
            number = self._advance()
            return Const(-int(number.text), type_name)
        raise self._error("expected a term")

    def _parse_paren_term_list(self) -> list[Term]:
        self._expect("LPAREN")
        terms = [self._parse_term()]
        while self._peek().kind == "COMMA":
            self._advance()
            terms.append(self._parse_term())
        self._expect("RPAREN")
        return terms

    def _parse_labels(self, base: BaseTerm) -> LTerm:
        self._expect("LBRACKET")
        specs = [self._parse_spec()]
        while self._peek().kind == "COMMA":
            self._advance()
            specs.append(self._parse_spec())
        self._expect("RBRACKET")
        labelled = LTerm(base, tuple(specs))
        if self._peek().kind == "LBRACKET":
            # t[...][...] is not a term (Example 1).
            raise self._error("a labelled term cannot be labelled again")
        return labelled

    def _parse_spec(self) -> LabelSpec:
        label = self._expect("IDENT").text
        self._expect("ARROW")
        if self._peek().kind == "LBRACE":
            self._advance()
            items = [self._parse_term()]
            while self._peek().kind == "COMMA":
                self._advance()
                items.append(self._parse_term())
            self._expect("RBRACE")
            return LabelSpec(label, Collection(tuple(items)))
        return LabelSpec(label, self._parse_term())

    # ------------------------------------------------------------------
    # Arithmetic expressions
    # ------------------------------------------------------------------

    def _parse_arith(self) -> Term:
        left = self._parse_arith_term()
        return self._continue_add(left)

    def _continue_arith(self, left: Term) -> Term:
        """Continue an arithmetic expression whose first operand has
        already been parsed as a term."""
        left = self._continue_mul(left)
        return self._continue_add(left)

    def _continue_add(self, left: Term) -> Term:
        while self._peek().kind in _ADD_TOKENS:
            op = _ADD_TOKENS[self._advance().kind]
            right = self._parse_arith_term()
            left = Func(op, (left, right))
        return left

    def _parse_arith_term(self) -> Term:
        left = self._parse_arith_factor()
        return self._continue_mul(left)

    def _continue_mul(self, left: Term) -> Term:
        while self._peek().kind in _MUL_TOKENS:
            op = _MUL_TOKENS[self._advance().kind]
            right = self._parse_arith_factor()
            left = Func(op, (left, right))
        return left

    def _parse_arith_factor(self) -> Term:
        token = self._peek()
        if token.kind == "LPAREN":
            self._advance()
            inner = self._parse_arith()
            self._expect("RPAREN")
            return inner
        if token.kind == "MINUS":
            self._advance()
            if self._peek().kind == "NUMBER":
                return Const(-int(self._advance().text))
            operand = self._parse_arith_factor()
            return Func("-", (Const(0), operand))
        if token.kind == "NUMBER":
            self._advance()
            return Const(int(token.text))
        if token.kind == "VARIABLE":
            self._advance()
            return Var(token.text)
        if token.kind == "IDENT":
            # A symbolic constant used in arithmetic position; evaluation
            # will reject it unless bound to a number via unification.
            self._advance()
            return Const(token.text)
        raise self._error("expected an arithmetic expression")


def parse_program(source: str) -> ParsedUnit:
    """Parse a full program source (clauses, subtype declarations and
    optional inline queries)."""
    return Parser(source).parse_program()


def parse_clause(source: str) -> DefiniteClause:
    """Parse one definite clause, e.g. ``"a[l => b] :- c(X)."``."""
    return Parser(source).parse_single_clause()


def parse_query(source: str) -> Query:
    """Parse one query; the leading ``:-``/``?-`` and trailing dot are
    both optional, so ``"path: X[src => S]"`` works."""
    return Parser(source).parse_single_query()


def parse_atom(source: str) -> BodyAtom:
    """Parse one atom (term atom, predicate atom or builtin)."""
    return Parser(source).parse_single_atom()


def parse_term(source: str) -> Term:
    """Parse one term."""
    return Parser(source).parse_single_term()
