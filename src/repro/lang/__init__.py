"""Concrete syntax of C-logic: lexer and parser.

The syntax follows the paper's notation (Sections 2–5) with ASCII
``=>`` for the label arrow; see :mod:`repro.lang.parser` for the full
grammar and the predicate/term disambiguation convention.
"""

from repro.lang.lexer import Token, tokenize
from repro.lang.parser import (
    ParsedUnit,
    Parser,
    parse_atom,
    parse_clause,
    parse_program,
    parse_query,
    parse_term,
)

__all__ = [
    "ParsedUnit",
    "Parser",
    "Token",
    "parse_atom",
    "parse_clause",
    "parse_program",
    "parse_query",
    "parse_term",
    "tokenize",
]
