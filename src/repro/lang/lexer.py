"""Lexer for the concrete syntax of C-logic programs.

Token classes:

* ``IDENT``    — lowercase-initial identifiers (``john``, ``noun_phrase``);
  used for type symbols, labels, constants, functors and predicates.
  (The paper prints hyphenated names like ``noun-phrase``; we use
  underscores so ``-`` can remain the arithmetic minus.)
* ``VARIABLE`` — uppercase- or underscore-initial identifiers (``X``, ``_L0``).
* ``NUMBER``   — nonnegative integer literals.
* ``STRING``   — double-quoted constants (``"John Smith"``).
* punctuation  — ``: [ ] ( ) { } , . < > + - * // ``, the arrows
  ``=>`` and ``:-``/``?-``, comparisons ``=< >= =:= =\\=``, ``=`` and
  the keywords ``is`` and ``mod``.

Comments run from ``%`` to end of line (Prolog convention).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.errors import LexError

__all__ = ["Token", "tokenize", "TOKEN_KINDS"]

TOKEN_KINDS = frozenset(
    {
        "IDENT",
        "VARIABLE",
        "NUMBER",
        "STRING",
        "COLON",
        "LBRACKET",
        "RBRACKET",
        "LPAREN",
        "RPAREN",
        "LBRACE",
        "RBRACE",
        "COMMA",
        "DOT",
        "ARROW",      # =>
        "IMPLIED_BY", # :-
        "QUERY",      # ?-
        "LT",
        "GT",
        "LE",         # =<
        "GE",         # >=
        "EQ",         # =
        "ARITH_EQ",   # =:=
        "ARITH_NE",   # =\=
        "PLUS",
        "MINUS",
        "STAR",
        "INTDIV",     # //
        "IS",
        "MOD",
        "NAF",        # \+ (negation as failure)
        "EOF",
    }
)

_ASCII_DIGITS = frozenset("0123456789")
_ASCII_LETTERS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
)

_KEYWORDS = {"is": "IS", "mod": "MOD"}

# Multi-character operators, longest first so prefixes do not shadow them.
_OPERATORS = [
    ("=\\=", "ARITH_NE"),
    ("\\+", "NAF"),
    ("=:=", "ARITH_EQ"),
    (":-", "IMPLIED_BY"),
    ("?-", "QUERY"),
    ("=>", "ARROW"),
    ("=<", "LE"),
    (">=", "GE"),
    ("//", "INTDIV"),
    (":", "COLON"),
    ("[", "LBRACKET"),
    ("]", "RBRACKET"),
    ("(", "LPAREN"),
    (")", "RPAREN"),
    ("{", "LBRACE"),
    ("}", "RBRACE"),
    (",", "COMMA"),
    (".", "DOT"),
    ("<", "LT"),
    (">", "GT"),
    ("=", "EQ"),
    ("+", "PLUS"),
    ("-", "MINUS"),
    ("*", "STAR"),
]


@dataclass(frozen=True, slots=True)
class Token:
    """One lexical token with its source position (1-based)."""

    kind: str
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source`` into a list ending with an EOF token."""
    return list(_scan(source))


def _scan(source: str) -> Iterator[Token]:
    line = 1
    column = 1
    index = 0
    length = len(source)
    while index < length:
        char = source[index]
        if char == "\n":
            index += 1
            line += 1
            column = 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if char == "%":
            while index < length and source[index] != "\n":
                index += 1
            continue
        if char == '"':
            token, index, consumed = _scan_string(source, index, line, column)
            column += consumed
            yield token
            continue
        if char in _ASCII_DIGITS:
            # ASCII digits only: str.isdigit() also accepts characters
            # like '²' that int() rejects.
            start = index
            while index < length and source[index] in _ASCII_DIGITS:
                index += 1
            text = source[start:index]
            yield Token("NUMBER", text, line, column)
            column += len(text)
            continue
        if char in _ASCII_LETTERS or char == "_":
            start = index
            while index < length and (
                source[index] in _ASCII_LETTERS
                or source[index] in _ASCII_DIGITS
                or source[index] == "_"
            ):
                index += 1
            text = source[start:index]
            if text in _KEYWORDS:
                kind = _KEYWORDS[text]
            elif text[0].isupper() or text[0] == "_":
                kind = "VARIABLE"
            else:
                kind = "IDENT"
            yield Token(kind, text, line, column)
            column += len(text)
            continue
        matched = False
        for text, kind in _OPERATORS:
            if source.startswith(text, index):
                yield Token(kind, text, line, column)
                index += len(text)
                column += len(text)
                matched = True
                break
        if not matched:
            raise LexError(f"unexpected character {char!r}", line, column)
    yield Token("EOF", "", line, column)


def _scan_string(source: str, index: int, line: int, column: int) -> tuple[Token, int, int]:
    """Scan a double-quoted string starting at ``index``; supports the
    escapes ``\\"`` and ``\\\\``.  Returns (token, new_index, columns_consumed)."""
    start = index
    index += 1  # opening quote
    chars: list[str] = []
    while index < len(source):
        char = source[index]
        if char == "\n":
            raise LexError("unterminated string (newline inside quotes)", line, column)
        if char == "\\":
            if index + 1 >= len(source):
                raise LexError("unterminated escape in string", line, column)
            escape = source[index + 1]
            if escape not in ('"', "\\"):
                raise LexError(f"unknown string escape \\{escape}", line, column)
            chars.append(escape)
            index += 2
            continue
        if char == '"':
            index += 1
            return Token("STRING", "".join(chars), line, column), index, index - start
        chars.append(char)
        index += 1
    raise LexError("unterminated string", line, column)
