"""Model-theoretic semantics of languages of objects (Section 3.2),
including the first-order reading of structures used by Theorem 1 and
Herbrand machinery."""

from repro.semantics.herbrand import herbrand_base, herbrand_universe, structure_from_atoms
from repro.semantics.random_gen import (
    Signature,
    random_assignment,
    random_atom,
    random_structure,
    random_term,
)
from repro.semantics.satisfaction import (
    denote_fterm,
    denote_term,
    satisfies,
    satisfies_atom,
    satisfies_fatom,
    satisfies_fol_conjunction,
    satisfies_term,
)
from repro.semantics.structure import Assignment, Structure

__all__ = [
    "Assignment",
    "Signature",
    "Structure",
    "denote_fterm",
    "denote_term",
    "herbrand_base",
    "herbrand_universe",
    "random_assignment",
    "random_atom",
    "random_structure",
    "random_term",
    "satisfies",
    "satisfies_atom",
    "satisfies_fatom",
    "satisfies_fol_conjunction",
    "satisfies_term",
    "structure_from_atoms",
]
