"""Semantic structures for languages of objects (Section 3.2).

A semantic structure is a pair ``M = (M, I)`` where ``M`` is a nonempty
domain and ``I`` interprets:

* every n-ary function symbol as a total function ``M^n -> M``;
* every n-ary predicate symbol as a subset of ``M^n``;
* every label as a subset of ``M^2`` (a binary relation — labels are
  possibly multi-valued, non-functional);
* every type as a subset of ``M`` (a unary relation), such that
  ``I(t1) ⊆ I(t2)`` whenever ``t1 <= t2`` in the type hierarchy.

The same class doubles as a first-order structure for the language L*
(Theorem 1 notes ``M`` and ``M*`` are "essentially the same"): labels
and types are simply looked up as binary/unary predicates.  A structure
for L* is a structure for L exactly when it satisfies the type axioms —
:meth:`Structure.respects_hierarchy` checks that condition.

Domains are finite here (this is a database semantics and the checker
iterates the domain for quantifiers); elements may be any hashable
Python values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Hashable, Iterable, Mapping

from repro.core.errors import SemanticsError
from repro.core.terms import OBJECT
from repro.core.types import TypeHierarchy

__all__ = ["Structure", "Assignment"]

#: A variable assignment ``s : V -> M``.
Assignment = Mapping[str, Hashable]


@dataclass
class Structure:
    """A finite semantic structure ``(M, I)``.

    ``functions`` maps ``(name, arity)`` to a dict from argument tuples
    to domain elements; it must be total on ``domain**arity`` (checked
    lazily on lookup, eagerly by :meth:`validate`).  ``constants`` maps
    zero-ary function symbols to elements.  ``predicates`` maps
    ``(name, arity)`` to sets of tuples; ``labels`` maps label names to
    sets of pairs; ``types`` maps type symbols to sets of elements.

    ``I(object)`` defaults to the whole domain, matching the paper's
    reading of ``object`` as the active domain.
    """

    domain: frozenset[Hashable]
    constants: dict[str, Hashable] = field(default_factory=dict)
    functions: dict[tuple[str, int], dict[tuple[Hashable, ...], Hashable]] = field(
        default_factory=dict
    )
    predicates: dict[tuple[str, int], set[tuple[Hashable, ...]]] = field(default_factory=dict)
    labels: dict[str, set[tuple[Hashable, Hashable]]] = field(default_factory=dict)
    types: dict[str, set[Hashable]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.domain = frozenset(self.domain)
        if not self.domain:
            raise SemanticsError("the domain of a structure must be nonempty")
        self.types.setdefault(OBJECT, set(self.domain))

    # ------------------------------------------------------------------
    # Interpretation lookups
    # ------------------------------------------------------------------

    def constant(self, name: object) -> Hashable:
        """``I(c)`` for a zero-ary function symbol ``c``."""
        try:
            return self.constants[name]  # type: ignore[index]
        except KeyError:
            raise SemanticsError(f"constant {name!r} is not interpreted") from None

    def apply_function(self, name: str, args: tuple[Hashable, ...]) -> Hashable:
        """``I(f)(args)`` for an n-ary function symbol, n >= 1."""
        table = self.functions.get((name, len(args)))
        if table is None:
            raise SemanticsError(f"function {name}/{len(args)} is not interpreted")
        try:
            return table[args]
        except KeyError:
            raise SemanticsError(
                f"function {name}/{len(args)} is not defined on {args!r} "
                "(interpretations must be total)"
            ) from None

    def holds_predicate(self, name: str, args: tuple[Hashable, ...]) -> bool:
        return args in self.predicates.get((name, len(args)), ())

    def holds_label(self, label: str, host: Hashable, value: Hashable) -> bool:
        return (host, value) in self.labels.get(label, ())

    def in_type(self, type_name: str, element: Hashable) -> bool:
        if type_name == OBJECT:
            return element in self.types.get(OBJECT, self.domain)
        return element in self.types.get(type_name, ())

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Eagerly check well-formedness: totality of functions and
        containment of all interpretations in the domain."""
        for name, value in self.constants.items():
            if value not in self.domain:
                raise SemanticsError(f"I({name}) = {value!r} is outside the domain")
        for (name, arity), table in self.functions.items():
            expected = set(product(self.domain, repeat=arity))
            if set(table) != expected:
                raise SemanticsError(f"function {name}/{arity} is not total on the domain")
            for result in table.values():
                if result not in self.domain:
                    raise SemanticsError(f"function {name}/{arity} maps outside the domain")
        for (name, arity), tuples in self.predicates.items():
            for row in tuples:
                if len(row) != arity or any(e not in self.domain for e in row):
                    raise SemanticsError(f"predicate {name}/{arity} has a bad tuple {row!r}")
        for label, pairs in self.labels.items():
            for host, value in pairs:
                if host not in self.domain or value not in self.domain:
                    raise SemanticsError(f"label {label} has a pair outside the domain")
        for type_name, members in self.types.items():
            for member in members:
                if member not in self.domain:
                    raise SemanticsError(f"type {type_name} contains a non-domain element")

    def respects_hierarchy(self, hierarchy: TypeHierarchy) -> bool:
        """True iff ``I(t1) ⊆ I(t2)`` whenever ``t1 <= t2``.

        This is the condition distinguishing structures of L from
        arbitrary structures of L*: Theorem 1's correspondence is
        one-to-one between structures of L and structures of L*
        satisfying the type axioms, and satisfying the type axioms is
        exactly this containment.
        """
        symbols = set(hierarchy.symbols) | set(self.types)
        for sub in symbols:
            sub_ext = self.types.get(sub, set()) if sub != OBJECT else self.types[OBJECT]
            for sup in symbols:
                if sub == sup or not hierarchy.is_subtype(sub, sup):
                    continue
                sup_ext = self.types.get(sup, set()) if sup != OBJECT else self.types[OBJECT]
                if not sub_ext <= sup_ext:
                    return False
        return True

    def enforce_hierarchy(self, hierarchy: TypeHierarchy) -> "Structure":
        """Return a structure whose type interpretations are closed
        upward along the hierarchy (the least repair)."""
        closed: dict[str, set[Hashable]] = {t: set(m) for t, m in self.types.items()}
        for sub, members in self.types.items():
            for sup in hierarchy.supertypes(sub):
                if sup == sub:
                    continue
                closed.setdefault(sup, set()).update(members)
        closed.setdefault(OBJECT, set()).update(self.domain)
        return Structure(
            self.domain,
            dict(self.constants),
            {k: dict(v) for k, v in self.functions.items()},
            {k: set(v) for k, v in self.predicates.items()},
            {k: set(v) for k, v in self.labels.items()},
            closed,
        )

    # ------------------------------------------------------------------
    # Assignments
    # ------------------------------------------------------------------

    def assignments(self, variables: Iterable[str]) -> Iterable[Assignment]:
        """All assignments of domain elements to the given variables."""
        names = sorted(set(variables))
        for values in product(self.domain, repeat=len(names)):
            yield dict(zip(names, values))
