"""Seeded random generation of structures and atomic formulas.

Used by the E10 experiment (and reusable in tests): Theorem 1 is
checked by sampling random finite structures ``M``, random atomic
formulas ``alpha`` and random assignments ``s``, and verifying
``M |= alpha[s]  iff  M* |= alpha*[s]`` where ``M*`` is the same
structure read as a first-order structure of L*.

Everything is driven by an explicit :class:`random.Random` so runs are
reproducible; no global randomness is used.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import product
from typing import Hashable

from repro.core.formulas import Atom, PredAtom, TermAtom
from repro.core.terms import Collection, Const, Func, LabelSpec, LTerm, OBJECT, Term, Var
from repro.core.types import TypeHierarchy
from repro.semantics.structure import Assignment, Structure

__all__ = ["Signature", "random_structure", "random_term", "random_atom", "random_assignment"]


@dataclass(frozen=True)
class Signature:
    """A small object-language signature to draw from."""

    constants: tuple[str, ...] = ("a", "b", "c")
    functors: tuple[tuple[str, int], ...] = (("f", 1), ("g", 2))
    predicates: tuple[tuple[str, int], ...] = (("p", 1), ("q", 2))
    labels: tuple[str, ...] = ("src", "dest", "children")
    types: tuple[str, ...] = (OBJECT, "person", "student", "path")
    variables: tuple[str, ...] = ("X", "Y", "Z")
    subtype_pairs: tuple[tuple[str, str], ...] = (("student", "person"),)

    def hierarchy(self) -> TypeHierarchy:
        hierarchy = TypeHierarchy()
        for symbol in self.types:
            if symbol != OBJECT:
                hierarchy.add_symbol(symbol)
        for sub, sup in self.subtype_pairs:
            hierarchy.declare(sub, sup)
        return hierarchy


def random_structure(
    rng: random.Random, signature: Signature, domain_size: int = 4, density: float = 0.35
) -> Structure:
    """A random finite structure over ``signature`` whose type
    interpretations respect the hierarchy (closed upward)."""
    domain = frozenset(range(domain_size))
    elements = sorted(domain)
    constants: dict[Hashable, Hashable] = {
        name: rng.choice(elements) for name in signature.constants
    }
    functions: dict[tuple[str, int], dict[tuple, Hashable]] = {}
    for functor, arity in signature.functors:
        table = {
            args: rng.choice(elements) for args in product(elements, repeat=arity)
        }
        functions[(functor, arity)] = table
    predicates: dict[tuple[str, int], set[tuple]] = {}
    for pred, arity in signature.predicates:
        predicates[(pred, arity)] = {
            args for args in product(elements, repeat=arity) if rng.random() < density
        }
    labels: dict[str, set[tuple[Hashable, Hashable]]] = {}
    for label in signature.labels:
        labels[label] = {
            pair for pair in product(elements, repeat=2) if rng.random() < density
        }
    types: dict[str, set[Hashable]] = {OBJECT: set(elements)}
    for type_name in signature.types:
        if type_name == OBJECT:
            continue
        types[type_name] = {e for e in elements if rng.random() < 0.6}
    structure = Structure(domain, constants, functions, predicates, labels, types)
    return structure.enforce_hierarchy(signature.hierarchy())


def random_term(
    rng: random.Random,
    signature: Signature,
    depth: int = 3,
    allow_labels: bool = True,
) -> Term:
    """A random term of the language of objects, depth-bounded."""
    base = _random_base(rng, signature, depth)
    if allow_labels and depth > 0 and rng.random() < 0.6:
        spec_count = rng.randint(1, 3)
        specs = []
        for _ in range(spec_count):
            label = rng.choice(signature.labels)
            if rng.random() < 0.3:
                items = tuple(
                    random_term(rng, signature, depth - 1, allow_labels=False)
                    for _ in range(rng.randint(1, 3))
                )
                specs.append(LabelSpec(label, Collection(items)))
            else:
                specs.append(
                    LabelSpec(label, random_term(rng, signature, depth - 1, allow_labels=True))
                )
        return LTerm(base, tuple(specs))
    return base


def _random_base(rng: random.Random, signature: Signature, depth: int):
    type_name = rng.choice(signature.types)
    choice = rng.random()
    if choice < 0.35:
        return Var(rng.choice(signature.variables), type_name)
    if choice < 0.7 or depth <= 1:
        return Const(rng.choice(signature.constants), type_name)
    functor, arity = rng.choice(signature.functors)
    args = tuple(
        random_term(rng, signature, depth - 1, allow_labels=rng.random() < 0.3)
        for _ in range(arity)
    )
    return Func(functor, args, type_name)


def random_atom(rng: random.Random, signature: Signature, depth: int = 3) -> Atom:
    """A random atomic formula: a term atom or a predicate atom."""
    if rng.random() < 0.5:
        return TermAtom(random_term(rng, signature, depth))
    pred, arity = rng.choice(signature.predicates)
    args = tuple(random_term(rng, signature, depth - 1) for _ in range(arity))
    return PredAtom(pred, args)


def random_assignment(
    rng: random.Random, structure: Structure, variables: set[str]
) -> Assignment:
    elements = sorted(structure.domain)
    return {name: rng.choice(elements) for name in variables}
