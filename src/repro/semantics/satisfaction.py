"""Term denotation and the satisfaction relation (Section 3.2).

A term has *two* meanings: it denotes an object
(:func:`denote_term` — the extension ``s_M`` of a variable assignment
to all terms) and, used as a formula, it asserts that the denoted
object is in the annotated type and has the labelled values
(:func:`satisfies_atom`).  General formulas are evaluated by
:func:`satisfies` over the finite domain.

The same module evaluates the first-order side (:func:`denote_fterm`,
:func:`satisfies_fatom`), which is what makes Theorem 1 a directly
checkable statement here: for the structure ``M* = (M, I)`` read as a
structure of L*, ``M |= alpha[s]`` iff ``M* |= alpha*[s]`` — see
``tests/transform/test_theorem1.py`` and the E10 experiment.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.errors import SemanticsError
from repro.core.formulas import (
    And,
    Exists,
    ForAll,
    Formula,
    Implies,
    Not,
    Or,
    PredAtom,
    TermAtom,
)
from repro.core.terms import Const, Func, LTerm, Term, Var
from repro.fol.atoms import FAtom
from repro.fol.terms import FApp, FConst, FTerm, FVar
from repro.semantics.structure import Assignment, Structure

__all__ = [
    "denote_term",
    "satisfies_term",
    "satisfies_atom",
    "satisfies",
    "denote_fterm",
    "satisfies_fatom",
    "satisfies_fol_conjunction",
]


# ----------------------------------------------------------------------
# The object side (language L)
# ----------------------------------------------------------------------

def denote_term(term: Term, structure: Structure, assignment: Assignment) -> Hashable:
    """The extension ``s_M`` of an assignment to all terms.

    Labels never affect denotation: ``s_M(t[l1 => e1, ...]) = s_M(t)``.
    """
    if isinstance(term, Var):
        try:
            return assignment[term.name]
        except KeyError:
            raise SemanticsError(f"variable {term.name} is unassigned") from None
    if isinstance(term, Const):
        return structure.constant(term.value)
    if isinstance(term, Func):
        args = tuple(denote_term(arg, structure, assignment) for arg in term.args)
        return structure.apply_function(term.functor, args)
    if isinstance(term, LTerm):
        return denote_term(term.base, structure, assignment)
    raise SemanticsError(f"not a term: {term!r}")


def satisfies_term(term: Term, structure: Structure, assignment: Assignment) -> bool:
    """``M |= t[s]`` for a term used as an atomic formula."""
    if isinstance(term, (Var, Const)):
        return structure.in_type(term.type, denote_term(term, structure, assignment))
    if isinstance(term, Func):
        if not structure.in_type(term.type, denote_term(term, structure, assignment)):
            return False
        return all(satisfies_term(arg, structure, assignment) for arg in term.args)
    if isinstance(term, LTerm):
        if not satisfies_term(term.base, structure, assignment):
            return False
        host = denote_term(term.base, structure, assignment)
        for spec in term.specs:
            for value in spec.value_terms():
                if not satisfies_term(value, structure, assignment):
                    return False
                if not structure.holds_label(
                    spec.label, host, denote_term(value, structure, assignment)
                ):
                    return False
        return True
    raise SemanticsError(f"not a term: {term!r}")


def satisfies_atom(atom: Formula, structure: Structure, assignment: Assignment) -> bool:
    """``M |= alpha[s]`` for an atomic formula."""
    if isinstance(atom, TermAtom):
        return satisfies_term(atom.term, structure, assignment)
    if isinstance(atom, PredAtom):
        for arg in atom.args:
            if not satisfies_term(arg, structure, assignment):
                return False
        row = tuple(denote_term(arg, structure, assignment) for arg in atom.args)
        return structure.holds_predicate(atom.pred, row)
    raise SemanticsError(f"not an atomic formula: {atom!r}")


def satisfies(formula: Formula, structure: Structure, assignment: Assignment) -> bool:
    """``M |= phi[s]`` for a general formula (finite-domain quantifiers)."""
    if isinstance(formula, (TermAtom, PredAtom)):
        return satisfies_atom(formula, structure, assignment)
    if isinstance(formula, Not):
        return not satisfies(formula.operand, structure, assignment)
    if isinstance(formula, And):
        return satisfies(formula.left, structure, assignment) and satisfies(
            formula.right, structure, assignment
        )
    if isinstance(formula, Or):
        return satisfies(formula.left, structure, assignment) or satisfies(
            formula.right, structure, assignment
        )
    if isinstance(formula, Implies):
        return (not satisfies(formula.antecedent, structure, assignment)) or satisfies(
            formula.consequent, structure, assignment
        )
    if isinstance(formula, (ForAll, Exists)):
        extended = dict(assignment)
        results = []
        for element in structure.domain:
            extended[formula.variable] = element
            results.append(satisfies(formula.body, structure, extended))
        return all(results) if isinstance(formula, ForAll) else any(results)
    raise SemanticsError(f"not a formula: {formula!r}")


# ----------------------------------------------------------------------
# The first-order side (language L*)
# ----------------------------------------------------------------------

def denote_fterm(fterm: FTerm, structure: Structure, assignment: Assignment) -> Hashable:
    """``s_{M*}(t')`` — denotation of an individual term of L*."""
    if isinstance(fterm, FVar):
        try:
            return assignment[fterm.name]
        except KeyError:
            raise SemanticsError(f"variable {fterm.name} is unassigned") from None
    if isinstance(fterm, FConst):
        return structure.constant(fterm.value)
    if isinstance(fterm, FApp):
        args = tuple(denote_fterm(arg, structure, assignment) for arg in fterm.args)
        return structure.apply_function(fterm.functor, args)
    raise SemanticsError(f"not an FOL term: {fterm!r}")


def satisfies_fatom(atom: FAtom, structure: Structure, assignment: Assignment) -> bool:
    """``M* |= p(t1,...,tn)[s]`` where ``p`` may be a predicate symbol,
    a label (binary) or a type (unary) of the source language.

    Section 3.1 assumes the symbol sets are disjoint, so the dispatch
    below is unambiguous: an explicit predicate interpretation wins,
    otherwise unary symbols are read as types and binary ones as labels
    when the structure interprets them that way.
    """
    row = tuple(denote_fterm(arg, structure, assignment) for arg in atom.args)
    if (atom.pred, len(row)) in structure.predicates:
        return structure.holds_predicate(atom.pred, row)
    if len(row) == 1 and atom.pred in structure.types:
        return structure.in_type(atom.pred, row[0])
    if len(row) == 2 and atom.pred in structure.labels:
        return structure.holds_label(atom.pred, row[0], row[1])
    if len(row) == 1:
        return structure.in_type(atom.pred, row[0])
    if len(row) == 2:
        return structure.holds_label(atom.pred, row[0], row[1])
    return structure.holds_predicate(atom.pred, row)


def satisfies_fol_conjunction(
    atoms: list[FAtom], structure: Structure, assignment: Assignment
) -> bool:
    """``M* |= a1 & ... & ak [s]``."""
    return all(satisfies_fatom(atom, structure, assignment) for atom in atoms)
