"""Herbrand universes, bases and structures for the language L*.

Section 3.3 notes that the transformation "indirectly establishes (by
the Herbrand theorem of first-order logic) that mechanical reasoning
about complex objects corresponds to complete pure logic deduction".
This module provides the Herbrand machinery that statement relies on:

* :func:`herbrand_universe` — all ground individual terms over given
  constants and function symbols, up to a depth bound (the universe is
  infinite as soon as a function symbol exists);
* :func:`herbrand_base` — all ground atoms over a universe slice;
* :func:`structure_from_atoms` — a finite Herbrand-style structure whose
  domain is the set of ground terms occurring in a fact set, with
  free interpretation of constants and functions.  Functions are
  defined on exactly the argument tuples whose applications occur in
  the domain, which suffices to model-check ground formulas over the
  fact set (the use in E10).
"""

from __future__ import annotations

from itertools import product
from typing import Hashable, Iterable, Iterator, Sequence

from repro.fol.atoms import FAtom
from repro.fol.terms import FApp, FConst, FTerm, walk_fterm
from repro.semantics.structure import Structure

__all__ = ["herbrand_universe", "herbrand_base", "structure_from_atoms"]


def herbrand_universe(
    constants: Iterable[str | int],
    functors: Iterable[tuple[str, int]],
    depth: int,
) -> list[FTerm]:
    """All ground terms of nesting depth <= ``depth``.

    ``depth=1`` yields only the constants; each extra level closes once
    under all function symbols.  Deterministic (sorted) output.
    """
    constant_list = sorted(set(constants), key=lambda v: (str(type(v)), str(v)))
    functor_list = sorted(set(functors))
    universe: list[FTerm] = [FConst(value) for value in constant_list]
    seen: set[FTerm] = set(universe)
    frontier = list(universe)
    for _ in range(max(0, depth - 1)):
        additions: list[FTerm] = []
        for functor, arity in functor_list:
            for args in product(universe, repeat=arity):
                # At least one argument from the frontier keeps each
                # level genuinely new.
                if frontier and not any(arg in set(frontier) for arg in args):
                    continue
                term = FApp(functor, args)
                if term not in seen:
                    seen.add(term)
                    additions.append(term)
        universe = universe + additions
        frontier = additions
        if not additions:
            break
    return universe


def herbrand_base(
    universe: Sequence[FTerm], predicates: Iterable[tuple[str, int]]
) -> Iterator[FAtom]:
    """All ground atoms over a universe slice (labels and types are
    predicates of L*, so they are included via ``predicates``)."""
    for pred, arity in sorted(set(predicates)):
        for args in product(universe, repeat=arity):
            yield FAtom(pred, tuple(args))


def structure_from_atoms(
    atoms: Iterable[FAtom],
    type_symbols: Iterable[str] = (),
    labels: Iterable[str] = (),
    extra_domain: Iterable[FTerm] = (),
) -> Structure:
    """A finite Herbrand structure whose atoms are exactly ``atoms``.

    The domain is every ground term occurring (at any depth) in the
    atoms plus ``extra_domain``.  Constants denote themselves
    (``I(c) = FConst(c)``) and function tables are the free-term
    construction restricted to the domain.  Unary atoms whose predicate
    is in ``type_symbols`` populate ``types``; binary atoms whose
    predicate is in ``labels`` populate ``labels``; everything else
    populates ``predicates``.
    """
    atom_list = list(atoms)
    type_set = set(type_symbols)
    label_set = set(labels)
    domain: set[FTerm] = set(extra_domain)
    for atom in atom_list:
        for arg in atom.args:
            domain.update(walk_fterm(arg))
    if not domain:
        domain = {FConst("nothing")}

    constants: dict[Hashable, Hashable] = {}
    functions: dict[tuple[str, int], dict[tuple, Hashable]] = {}
    for element in domain:
        if isinstance(element, FConst):
            constants[element.value] = element
        elif isinstance(element, FApp):
            table = functions.setdefault((element.functor, element.arity), {})
            table[element.args] = element

    structure = Structure(frozenset(domain), constants, functions)
    for atom in atom_list:
        row = tuple(atom.args)
        if len(row) == 1 and atom.pred in type_set:
            structure.types.setdefault(atom.pred, set()).add(row[0])
        elif len(row) == 2 and atom.pred in label_set:
            structure.labels.setdefault(atom.pred, set()).add((row[0], row[1]))
        else:
            structure.predicates.setdefault((atom.pred, len(row)), set()).add(row)
    return structure
