"""repro — a reproduction of Chen & Warren, *C-Logic of Complex Objects*
(PODS 1989).

The package implements the full system the paper describes:

* :mod:`repro.core` — the language of objects (terms, types, clauses);
* :mod:`repro.lang` — the concrete-syntax parser;
* :mod:`repro.semantics` — model-theoretic semantics (Section 3.2);
* :mod:`repro.fol` — the first-order substrate;
* :mod:`repro.transform` — the Theorem-1 transformation and Section 4's
  redundancy elimination;
* :mod:`repro.engine` — bottom-up, top-down, tabled and *direct*
  deduction engines;
* :mod:`repro.db` — the complex-object store with description merging
  and subsumption;
* :mod:`repro.olog` — Maier's O-logic baseline (functional labels);
* :mod:`repro.obs` — evaluation observability: tracing, metrics and
  EXPLAIN reports across all five engines;
* :mod:`repro.interface` — the high-level knowledge-base API, including
  declarative skolem-identity policies (Section 2.1).

Quickstart::

    from repro import KnowledgeBase

    kb = KnowledgeBase.from_source('''
        person: john[children => {bob, bill}].
    ''')
    answers = kb.ask("person: john[children => X]")
"""

from repro.version import __version__

__all__ = [
    "__version__",
    "KnowledgeBase",
    "QueryResult",
    "Governor",
    "PartialResult",
    "ExplainReport",
    "MetricsRegistry",
    "Tracer",
]


def __getattr__(name: str):
    # Lazy import so `import repro` stays light and avoids import cycles
    # while submodules are loaded directly.
    if name in ("KnowledgeBase", "QueryResult"):
        import repro.interface as interface

        return getattr(interface, name)
    if name in ("Governor", "PartialResult"):
        import repro.runtime as runtime

        return getattr(runtime, name)
    if name in ("ExplainReport", "MetricsRegistry", "Tracer"):
        import repro.obs as obs

        return getattr(obs, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
