"""Nested, timed spans over an evaluation run.

Usage::

    tracer = Tracer()
    with tracer.span("seminaive.fixpoint") as run:
        with tracer.span("seminaive.round", round=3) as round_span:
            round_span.count("facts_new", 17)
    print(tracer.format_tree())
    tracer.write_jsonl("trace.jsonl")

Spans nest by dynamic scope (the context-manager stack), carry
free-form attributes given at creation and integer counters accumulated
while open, and are timed with an injectable clock so tests are
deterministic.  The JSONL export writes one object per span with
explicit ``id``/``parent`` links; :func:`read_jsonl` reconstructs the
forest, and the round trip preserves everything but object identity.
"""

from __future__ import annotations

import json
import time
from typing import Callable, Iterator, Optional

__all__ = ["Span", "Tracer", "read_jsonl"]


class Span:
    """One timed region: name, attributes, counters, children."""

    __slots__ = (
        "span_id",
        "name",
        "attributes",
        "counters",
        "children",
        "parent_id",
        "start",
        "duration",
    )

    def __init__(
        self,
        span_id: int,
        name: str,
        attributes: dict,
        parent_id: Optional[int],
        start: float,
    ) -> None:
        self.span_id = span_id
        self.name = name
        self.attributes = attributes
        self.counters: dict[str, int] = {}
        self.children: list[Span] = []
        self.parent_id = parent_id
        self.start = start
        self.duration: float = 0.0

    def count(self, name: str, amount: int = 1) -> None:
        """Accumulate an integer counter on this span."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def set(self, name: str, value) -> None:
        """Set (or overwrite) an attribute after creation."""
        self.attributes[name] = value

    def to_record(self) -> dict:
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attrs": self.attributes,
            "counters": self.counters,
        }

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.attributes}, {self.counters})"


class _SpanContext:
    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, *exc_info) -> None:
        self._tracer.finish(self.span)


class Tracer:
    """A span collector with an injectable clock.

    ``clock`` must be a monotonically non-decreasing zero-argument
    callable returning seconds; tests inject a fake that steps by a
    fixed amount per call, making durations deterministic.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._stack: list[Span] = []
        self._next_id = 0
        self.roots: list[Span] = []

    # ------------------------------------------------------------------

    def start(self, name: str, **attributes) -> Span:
        """Open a span imperatively (engine loops); pair with
        :meth:`finish`.  The span becomes a child of the innermost open
        span (or a root)."""
        parent = self._stack[-1] if self._stack else None
        span = Span(
            self._next_id,
            name,
            dict(attributes),
            parent.span_id if parent is not None else None,
            self._clock(),
        )
        self._next_id += 1
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def finish(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise RuntimeError(f"span {span.name!r} closed out of order")
        self._stack.pop()
        span.duration = self._clock() - span.start

    def span(self, name: str, **attributes) -> _SpanContext:
        """Open a span as a context manager (``with tracer.span(...)``)."""
        return _SpanContext(self, self.start(name, **attributes))

    def current(self) -> Optional[Span]:
        """The innermost open span, if any (for attaching counters from
        deep inside an engine without threading the span through)."""
        return self._stack[-1] if self._stack else None

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def spans(self) -> Iterator[Span]:
        """All spans, depth-first in creation order."""
        for root in self.roots:
            yield from root.walk()

    def to_jsonl(self) -> str:
        """One JSON object per span, parents before children."""
        return "\n".join(json.dumps(span.to_record()) for span in self.spans())

    def write_jsonl(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            text = self.to_jsonl()
            if text:
                handle.write(text + "\n")

    def format_tree(self, durations: bool = True) -> str:
        """The span forest as an indented text tree."""
        lines: list[str] = []
        for root in self.roots:
            _format_span(root, 0, lines, durations)
        return "\n".join(lines)


def _format_span(span: Span, depth: int, lines: list[str], durations: bool) -> None:
    attrs = " ".join(f"{k}={v}" for k, v in span.attributes.items())
    counters = " ".join(f"{k}={v}" for k, v in sorted(span.counters.items()))
    parts = [span.name]
    if attrs:
        parts.append(f"[{attrs}]")
    if counters:
        parts.append(counters)
    if durations:
        parts.append(f"({span.duration * 1e3:.2f} ms)")
    lines.append("  " * depth + " ".join(parts))
    for child in span.children:
        _format_span(child, depth + 1, lines, durations)


def read_jsonl(text: str) -> list[Span]:
    """Rebuild the span forest from :meth:`Tracer.to_jsonl` output (or a
    trace file's contents); returns the roots."""
    by_id: dict[int, Span] = {}
    roots: list[Span] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        span = Span(
            record["id"],
            record["name"],
            dict(record["attrs"]),
            record["parent"],
            record["start"],
        )
        span.duration = record["duration"]
        span.counters = {str(k): int(v) for k, v in record["counters"].items()}
        by_id[span.span_id] = span
        if span.parent_id is None:
            roots.append(span)
        else:
            by_id[span.parent_id].children.append(span)
    return roots
