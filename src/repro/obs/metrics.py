"""Named counters, gauges and timers for the evaluation engines.

A :class:`MetricsRegistry` is a flat namespace of metrics created on
first use (``registry.counter("seminaive.facts_new").add(3)``).  It
subsumes the per-engine stat dataclasses (:class:`EvaluationStats`,
``SLDStats``, ``TablingStats``, ``DirectStats``): those stay as cheap
hot-loop facades and publish into a registry at run boundaries via
:func:`publish_dataclass`.

The clock is injectable so timer tests are deterministic.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Iterator, Optional, Union

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "Timer",
    "publish_dataclass",
]

MetricValue = Union[int, float]


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (e.g. facts in the store after a round)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: MetricValue = 0

    def set(self, value: MetricValue) -> None:
        self.value = value


class Timer:
    """Accumulated wall time and activation count for a code region."""

    __slots__ = ("name", "total", "count", "_clock")

    def __init__(self, name: str, clock: Callable[[], float]) -> None:
        self.name = name
        self.total = 0.0
        self.count = 0
        self._clock = clock

    def time(self) -> "_TimerContext":
        return _TimerContext(self)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class _TimerContext:
    __slots__ = ("_timer", "_start")

    def __init__(self, timer: Timer) -> None:
        self._timer = timer
        self._start = 0.0

    def __enter__(self) -> "_TimerContext":
        self._start = self._timer._clock()
        return self

    def __exit__(self, *exc_info) -> None:
        self._timer.total += self._timer._clock() - self._start
        self._timer.count += 1


class MetricsRegistry:
    """A flat, create-on-first-use namespace of metrics."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._timers: dict[str, Timer] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def timer(self, name: str) -> Timer:
        metric = self._timers.get(name)
        if metric is None:
            metric = self._timers[name] = Timer(name, self._clock)
        return metric

    def __iter__(self) -> Iterator[str]:
        yield from self._counters
        yield from self._gauges
        yield from self._timers

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._timers)

    def snapshot(self) -> dict[str, MetricValue]:
        """A flat name -> value dict (timers contribute ``.total`` in
        seconds and ``.count``), suitable for JSON or result records."""
        out: dict[str, MetricValue] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            out[name] = gauge.value
        for name, timer in self._timers.items():
            out[f"{name}.total_s"] = timer.total
            out[f"{name}.count"] = timer.count
        return out

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's counts into this one."""
        for name, counter in other._counters.items():
            self.counter(name).add(counter.value)
        for name, gauge in other._gauges.items():
            self.gauge(name).set(gauge.value)
        for name, timer in other._timers.items():
            mine = self.timer(name)
            mine.total += timer.total
            mine.count += timer.count


def publish_dataclass(
    registry: MetricsRegistry, stats: object, prefix: str, counters: Optional[set] = None
) -> None:
    """Publish every numeric field of a stats dataclass as
    ``{prefix}.{field}`` counters — the bridge from the engines' cheap
    hot-loop dataclasses into the shared registry."""
    for field in dataclasses.fields(stats):
        value = getattr(stats, field.name)
        if not isinstance(value, (int, float)):
            continue
        if counters is not None and field.name not in counters:
            continue
        metric = registry.counter(f"{prefix}.{field.name}")
        metric.add(int(value))
