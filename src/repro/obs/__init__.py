"""Evaluation observability: tracing, metrics, EXPLAIN reports.

Section 4 of the paper is about *evaluation strategies* — where the
work goes when complex-object programs are evaluated bottom-up,
top-down, or directly over clustered terms.  This package is the
instrumentation that makes those costs visible:

* :class:`Tracer` — nested, timed spans with counters attached,
  exportable as JSONL (one span per line) or a pretty text tree;
* :class:`MetricsRegistry` — named counters, gauges and timers; the
  engines' ad-hoc stat dataclasses publish into it;
* :class:`ExplainReport` — a per-rule, per-round account of a fixpoint
  run: instantiations tried, facts produced, the join orders chosen by
  :mod:`repro.engine.join`, and the index hit rates of
  :meth:`repro.engine.factbase.FactBase.candidates`.

Everything here is dependency-free and optional: every engine accepts
``tracer=None, report=None`` and pays only a ``None`` check when
observability is off.
"""

from repro.obs.metrics import Counter, Gauge, MetricsRegistry, Timer
from repro.obs.report import ExplainReport, IndexStats, RuleStats
from repro.obs.tracer import Span, Tracer, read_jsonl

__all__ = [
    "Counter",
    "ExplainReport",
    "Gauge",
    "IndexStats",
    "MetricsRegistry",
    "RuleStats",
    "Span",
    "Timer",
    "Tracer",
    "read_jsonl",
]
