"""EXPLAIN reports: a per-rule, per-round account of a fixpoint run.

Databases answer "why is this query slow?" with EXPLAIN; the bottom-up
engines here answer the same question for a saturation run:

* per rule and per round — instantiations tried (body evaluations),
  facts derived, facts actually new;
* per rule — the join order chosen by the greedy planner in
  :mod:`repro.engine.join`, with the candidate counts that justified
  it;
* per rule and globally — the hit rates of the adaptive argument
  indexes behind :meth:`repro.engine.factbase.FactBase.candidates` (a
  lookup *hits* when some bound-argument index answered it instead of
  a whole-predicate scan; the report also lists each index that was
  built on demand, and counts semi-naive delta/old partition fetches
  separately so they do not dilute the hit rate).

An :class:`ExplainReport` is filled by an engine when passed as its
``report=`` argument and rendered with :meth:`ExplainReport.render`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Optional

__all__ = ["ExplainReport", "IndexStats", "RoundRow", "RuleStats"]


@dataclass
class IndexStats:
    """Counters for fact-base candidate lookups (the index side).

    ``lookups``/``indexed``/``scans``/``candidates_returned`` describe
    :meth:`~repro.engine.factbase.FactBase.candidates` fetches only.
    The semi-naive delta/old partition probes
    (``candidates_since``/``candidates_before``) are counted apart in
    ``partition_probes``/``partition_candidates`` — they are served from
    round segments, not the argument indexes, and folding them into the
    lookup counters would distort the hit rate with facts the partition
    immediately discards.  ``per_index`` carries the per-index account
    keyed by ``pred/arity[positions]``: how many fetches that adaptive
    index answered and how many candidates it handed back.
    """

    lookups: int = 0
    indexed: int = 0
    scans: int = 0
    candidates_returned: int = 0
    partition_probes: int = 0
    partition_candidates: int = 0
    indexes_built: int = 0
    per_index: dict[str, list[int]] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served by an argument index."""
        return self.indexed / self.lookups if self.lookups else 0.0

    def record_index(self, name: str, candidates: int) -> None:
        """One fetch answered by the named multi-argument index."""
        entry = self.per_index.get(name)
        if entry is None:
            self.per_index[name] = [1, candidates]
        else:
            entry[0] += 1
            entry[1] += candidates

    def record_index_built(self, name: str) -> None:
        """An index was built on demand.  The per-index entry is seeded
        at zero lookups so an index built during a partition probe (and
        possibly never probed by :meth:`FactBase.candidates` at all)
        still shows up in EXPLAIN instead of silently vanishing — or
        worse, dividing by its zero probe count."""
        self.indexes_built += 1
        self.per_index.setdefault(name, [0, 0])

    def index_hit_rate(self, name: str) -> float:
        """Fraction of all candidate lookups the named index served.

        Zero-probe safe: an index that exists but never answered a
        lookup — or a run with no lookups at all — rates 0.0 rather
        than raising ``ZeroDivisionError`` or propagating ``nan``.
        """
        entry = self.per_index.get(name)
        if entry is None or not entry[0] or not self.lookups:
            return 0.0
        return entry[0] / self.lookups

    def snapshot(self) -> tuple:
        return (
            self.lookups,
            self.indexed,
            self.scans,
            self.candidates_returned,
            self.partition_probes,
            self.partition_candidates,
            self.indexes_built,
            {name: tuple(entry) for name, entry in self.per_index.items()},
        )

    def add_since(self, snapshot: tuple, into: "IndexStats") -> None:
        """Accumulate the change since ``snapshot`` into ``into``."""
        into.lookups += self.lookups - snapshot[0]
        into.indexed += self.indexed - snapshot[1]
        into.scans += self.scans - snapshot[2]
        into.candidates_returned += self.candidates_returned - snapshot[3]
        into.partition_probes += self.partition_probes - snapshot[4]
        into.partition_candidates += self.partition_candidates - snapshot[5]
        into.indexes_built += self.indexes_built - snapshot[6]
        before = snapshot[7]
        for name, entry in self.per_index.items():
            old = before.get(name, (0, 0))
            d_lookups, d_candidates = entry[0] - old[0], entry[1] - old[1]
            if d_lookups or d_candidates:
                target = into.per_index.get(name)
                if target is None:
                    into.per_index[name] = [d_lookups, d_candidates]
                else:
                    target[0] += d_lookups
                    target[1] += d_candidates

    def describe(self) -> str:
        if not self.lookups and not self.partition_probes:
            return "no index lookups"
        text = (
            f"{self.lookups} lookups, {self.hit_rate * 100:.1f}% argument-"
            f"indexed ({self.scans} full scans), "
            f"{self.candidates_returned} candidates returned"
        )
        if self.partition_probes:
            text += (
                f"; {self.partition_probes} partition probes, "
                f"{self.partition_candidates} delta/old candidates"
            )
        return text

    def describe_indexes(self) -> list[str]:
        """One line per adaptive index, most-used first; indexes that
        were built but never probed say so explicitly."""
        ranked = sorted(
            self.per_index.items(), key=lambda item: item[1][0], reverse=True
        )
        lines = []
        for name, entry in ranked:
            if not entry[0]:
                lines.append(f"{name}: built, never probed")
                continue
            lines.append(
                f"{name}: {entry[0]} lookups "
                f"({self.index_hit_rate(name) * 100:.1f}% of fetches), "
                f"{entry[1]} candidates"
            )
        return lines


@dataclass
class RoundRow:
    """One rule's work in one fixpoint round."""

    instantiations: int = 0
    facts_derived: int = 0
    facts_new: int = 0


@dataclass
class RuleStats:
    """Everything the report knows about one rule."""

    rule: str
    join_order: Optional[list[tuple[str, int]]] = None
    rounds: dict[int, RoundRow] = field(default_factory=dict)
    index: IndexStats = field(default_factory=IndexStats)

    def round(self, number: int) -> RoundRow:
        row = self.rounds.get(number)
        if row is None:
            row = self.rounds[number] = RoundRow()
        return row

    @property
    def instantiations(self) -> int:
        return sum(row.instantiations for row in self.rounds.values())

    @property
    def facts_derived(self) -> int:
        return sum(row.facts_derived for row in self.rounds.values())

    @property
    def facts_new(self) -> int:
        return sum(row.facts_new for row in self.rounds.values())


class ExplainReport:
    """A fixpoint run's per-rule, per-round account (see module doc)."""

    #: Maintenance counters shown when :attr:`maintenance` is set, as
    #: ``(label, attribute)`` pairs read off the stats object (the
    #: incremental engine's ``MaintenanceStats`` — duck-typed so this
    #: module stays dependency-free).
    MAINTENANCE_FIELDS = (
        ("edb inserted", "edb_inserted"),
        ("edb retracted", "edb_retracted"),
        ("derived new", "facts_new"),
        ("deleted", "facts_deleted"),
        ("overdeleted", "facts_overdeleted"),
        ("rederived", "facts_rederived"),
        ("count decrements", "counts_decremented"),
    )

    def __init__(self, engine: str = "") -> None:
        self.engine = engine
        self.rounds = 0
        self.index = IndexStats()
        self.facts_total = 0
        #: Set by the incremental maintenance engine: an object carrying
        #: the counters named in :data:`MAINTENANCE_FIELDS` plus
        #: ``operation``/``strata``/``recursive_strata``/``fallback``.
        self.maintenance = None
        #: Set by a governed run (:class:`repro.runtime.Governor`): an
        #: object with ``describe()`` plus ``elapsed``/``steps``/
        #: ``interrupted``/``reason``/``strict`` — duck-typed like
        #: :attr:`maintenance` so this module stays dependency-free.
        self.governance = None
        self._rules: dict[Hashable, RuleStats] = {}

    # ------------------------------------------------------------------
    # Filling (engine side)
    # ------------------------------------------------------------------

    def rule(self, key: Hashable, rendering: str) -> RuleStats:
        """Get or create the stats slot for one rule; ``key`` is stable
        per rule (the engines use the clause index), ``rendering`` its
        pretty-printed source."""
        stats = self._rules.get(key)
        if stats is None:
            stats = self._rules[key] = RuleStats(rule=rendering)
        return stats

    @property
    def rules(self) -> list[RuleStats]:
        return list(self._rules.values())

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def render(self) -> str:
        lines: list[str] = []
        title = f"EXPLAIN — {self.engine}" if self.engine else "EXPLAIN"
        lines.append(title)
        lines.append("=" * len(title))
        lines.append(
            f"rounds: {self.rounds}   facts in model: {self.facts_total}   "
            f"index: {self.index.describe()}"
        )
        if self.index.per_index or self.index.indexes_built:
            lines.append(
                f"adaptive indexes (built on demand: {self.index.indexes_built})"
            )
            for entry in self.index.describe_indexes():
                lines.append(f"  {entry}")
        if self.governance is not None:
            gov = self.governance
            lines.append("")
            interrupted = getattr(gov, "interrupted", "")
            strict = getattr(gov, "strict", False)
            mode = "strict" if strict else "degrade to partial result"
            lines.append(f"governance — {mode}")
            describe = getattr(gov, "describe", None)
            if callable(describe):
                lines.append(f"  limits: {describe()}")
            lines.append(
                f"  consumed: {getattr(gov, 'elapsed', 0.0):.3f}s, "
                f"{getattr(gov, 'steps', 0)} step(s)"
            )
            if interrupted:
                lines.append(f"  INTERRUPTED by {interrupted} limit")
                reason = getattr(gov, "reason", "")
                if reason:
                    lines.append(f"    {reason}")
                lines.append(
                    "    the account below describes the run up to the "
                    "interruption; the model/answers are partial"
                )
            else:
                lines.append("  completed within limits")
        if self.maintenance is not None:
            stats = self.maintenance
            lines.append("")
            operation = getattr(stats, "operation", "") or "update"
            lines.append(f"maintenance — {operation}")
            fallback = getattr(stats, "fallback", "")
            if fallback:
                lines.append(f"  full recompute fallback: {fallback}")
            counters = "   ".join(
                f"{label}: {getattr(stats, attr, 0)}"
                for label, attr in self.MAINTENANCE_FIELDS
            )
            lines.append(f"  {counters}")
            strata = getattr(stats, "strata", 0)
            if strata:
                lines.append(
                    f"  strata: {strata} "
                    f"({getattr(stats, 'recursive_strata', 0)} recursive, "
                    f"maintained by delete/rederive; the rest by "
                    f"derivation counting)"
                )
        for number, stats in enumerate(self._rules.values(), start=1):
            lines.append("")
            lines.append(f"rule {number}: {stats.rule}")
            if stats.join_order is not None:
                rendered = " -> ".join(
                    f"{atom} (~{cost})" for atom, cost in stats.join_order
                )
                lines.append(f"  join order (greedy, final round): {rendered}")
            if stats.index.lookups:
                lines.append(f"  index: {stats.index.describe()}")
            if not stats.rounds:
                lines.append("  (never instantiated)")
                continue
            lines.append("  round  instantiations  derived  new")
            for round_number in sorted(stats.rounds):
                row = stats.rounds[round_number]
                lines.append(
                    f"  {round_number:>5}  {row.instantiations:>14}  "
                    f"{row.facts_derived:>7}  {row.facts_new:>3}"
                )
            lines.append(
                f"  total  {stats.instantiations:>14}  "
                f"{stats.facts_derived:>7}  {stats.facts_new:>3}"
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
