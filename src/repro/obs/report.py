"""EXPLAIN reports: a per-rule, per-round account of a fixpoint run.

Databases answer "why is this query slow?" with EXPLAIN; the bottom-up
engines here answer the same question for a saturation run:

* per rule and per round — instantiations tried (body evaluations),
  facts derived, facts actually new;
* per rule — the join order chosen by the greedy planner in
  :mod:`repro.engine.join`, with the candidate counts that justified
  it;
* per rule and globally — the hit rate of the first-argument index
  behind :meth:`repro.engine.factbase.FactBase.candidates` (a lookup
  *hits* when the pattern's first argument was ground enough to use
  the index instead of scanning the whole predicate).

An :class:`ExplainReport` is filled by an engine when passed as its
``report=`` argument and rendered with :meth:`ExplainReport.render`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Optional

__all__ = ["ExplainReport", "IndexStats", "RoundRow", "RuleStats"]


@dataclass
class IndexStats:
    """Counters for fact-base candidate lookups (the index side)."""

    lookups: int = 0
    indexed: int = 0
    scans: int = 0
    candidates_returned: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served by the first-argument index."""
        return self.indexed / self.lookups if self.lookups else 0.0

    def snapshot(self) -> tuple[int, int, int, int]:
        return (self.lookups, self.indexed, self.scans, self.candidates_returned)

    def add_since(self, snapshot: tuple[int, int, int, int], into: "IndexStats") -> None:
        """Accumulate the change since ``snapshot`` into ``into``."""
        into.lookups += self.lookups - snapshot[0]
        into.indexed += self.indexed - snapshot[1]
        into.scans += self.scans - snapshot[2]
        into.candidates_returned += self.candidates_returned - snapshot[3]

    def describe(self) -> str:
        if not self.lookups:
            return "no index lookups"
        return (
            f"{self.lookups} lookups, {self.hit_rate * 100:.1f}% first-arg "
            f"indexed ({self.scans} full scans), "
            f"{self.candidates_returned} candidates returned"
        )


@dataclass
class RoundRow:
    """One rule's work in one fixpoint round."""

    instantiations: int = 0
    facts_derived: int = 0
    facts_new: int = 0


@dataclass
class RuleStats:
    """Everything the report knows about one rule."""

    rule: str
    join_order: Optional[list[tuple[str, int]]] = None
    rounds: dict[int, RoundRow] = field(default_factory=dict)
    index: IndexStats = field(default_factory=IndexStats)

    def round(self, number: int) -> RoundRow:
        row = self.rounds.get(number)
        if row is None:
            row = self.rounds[number] = RoundRow()
        return row

    @property
    def instantiations(self) -> int:
        return sum(row.instantiations for row in self.rounds.values())

    @property
    def facts_derived(self) -> int:
        return sum(row.facts_derived for row in self.rounds.values())

    @property
    def facts_new(self) -> int:
        return sum(row.facts_new for row in self.rounds.values())


class ExplainReport:
    """A fixpoint run's per-rule, per-round account (see module doc)."""

    def __init__(self, engine: str = "") -> None:
        self.engine = engine
        self.rounds = 0
        self.index = IndexStats()
        self.facts_total = 0
        self._rules: dict[Hashable, RuleStats] = {}

    # ------------------------------------------------------------------
    # Filling (engine side)
    # ------------------------------------------------------------------

    def rule(self, key: Hashable, rendering: str) -> RuleStats:
        """Get or create the stats slot for one rule; ``key`` is stable
        per rule (the engines use the clause index), ``rendering`` its
        pretty-printed source."""
        stats = self._rules.get(key)
        if stats is None:
            stats = self._rules[key] = RuleStats(rule=rendering)
        return stats

    @property
    def rules(self) -> list[RuleStats]:
        return list(self._rules.values())

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def render(self) -> str:
        lines: list[str] = []
        title = f"EXPLAIN — {self.engine}" if self.engine else "EXPLAIN"
        lines.append(title)
        lines.append("=" * len(title))
        lines.append(
            f"rounds: {self.rounds}   facts in model: {self.facts_total}   "
            f"index: {self.index.describe()}"
        )
        for number, stats in enumerate(self._rules.values(), start=1):
            lines.append("")
            lines.append(f"rule {number}: {stats.rule}")
            if stats.join_order is not None:
                rendered = " -> ".join(
                    f"{atom} (~{cost})" for atom, cost in stats.join_order
                )
                lines.append(f"  join order (greedy, final round): {rendered}")
            if stats.index.lookups:
                lines.append(f"  index: {stats.index.describe()}")
            if not stats.rounds:
                lines.append("  (never instantiated)")
                continue
            lines.append("  round  instantiations  derived  new")
            for round_number in sorted(stats.rounds):
                row = stats.rounds[round_number]
                lines.append(
                    f"  {round_number:>5}  {row.instantiations:>14}  "
                    f"{row.facts_derived:>7}  {row.facts_new:>3}"
                )
            lines.append(
                f"  total  {stats.instantiations:>14}  "
                f"{stats.facts_derived:>7}  {stats.facts_new:>3}"
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
