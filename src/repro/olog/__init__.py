"""Maier's O-logic baseline: functional labels, global inconsistency,
and the lattice-based alternative (Section 2.2)."""

from repro.olog.olog import (
    TOP,
    FunctionalityViolation,
    ValueLattice,
    check_consistency,
    lattice_label_value,
    require_consistent,
    violations_in_store,
)

__all__ = [
    "TOP",
    "FunctionalityViolation",
    "ValueLattice",
    "check_consistency",
    "lattice_label_value",
    "require_consistent",
    "violations_in_store",
]
