"""Maier's O-logic as a baseline: labels as partial functions (Section 2.2).

"In O-logic, labels are considered semantically as partial functions
from objects to objects.  A program containing a multiply-defined label
would have no models.  So even if a program contains only Horn-like
rules, it may still be inconsistent.  Consistency checking of a program
essentially requires evaluating the whole program ..."

This module reproduces exactly that behaviour on top of the C-logic
machinery: an O-logic program *is* a C-logic program, but consistency
additionally demands that in the minimal model every label is
functional (at most one value per object).  :func:`check_consistency`
therefore saturates the program with the direct engine — evaluating the
whole program, as the paper says one must — and reports every
functionality violation.  :func:`require_consistent` raises
:class:`~repro.core.errors.ConsistencyError` on the first violation,
modelling "the program has no models".

The module also implements the *lattice-based* alternative the paper
discusses (after [6, 18]): with a top object ``T``, a multiply-defined
label derives ``T`` as its value, making inconsistency local.
:func:`lattice_label_value` computes the label value under that
semantics — the least upper bound of the asserted values in a
user-supplied value lattice, ``T`` when none exists — and
demonstrates the derivability gap the paper points out (the
``john[name => "David"]`` sub-object of ``john[name => T]`` is true in
that semantics but unreachable by resolution-like rules).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core.clauses import Program
from repro.core.errors import ConsistencyError
from repro.core.terms import BaseTerm
from repro.core.types import TypeHierarchy
from repro.db.store import ObjectStore
from repro.engine.direct import DirectEngine

__all__ = [
    "FunctionalityViolation",
    "check_consistency",
    "require_consistent",
    "TOP",
    "ValueLattice",
    "lattice_label_value",
]

#: The top object of the lattice-based semantics.
TOP = "T"


@dataclass(frozen=True, slots=True)
class FunctionalityViolation:
    """A label with more than one value on one object."""

    label: str
    host: BaseTerm
    values: tuple[BaseTerm, ...]

    def __str__(self) -> str:
        from repro.core.pretty import pretty_term

        rendered = ", ".join(pretty_term(v) for v in self.values)
        return (
            f"label {self.label!r} is multiply defined on "
            f"{pretty_term(self.host)}: {{{rendered}}}"
        )


def check_consistency(program: Program) -> list[FunctionalityViolation]:
    """Evaluate the whole program and collect functionality violations.

    An empty result means the program is O-logic consistent (it has a
    model with functional labels).  Note the cost the paper warns
    about: this *saturates the program* — checking consistency of an
    O-logic program is as hard as evaluating it.
    """
    engine = DirectEngine(program)
    store = engine.saturate()
    return violations_in_store(store)


def violations_in_store(store: ObjectStore) -> list[FunctionalityViolation]:
    """Functionality violations present in a saturated store."""
    out: list[FunctionalityViolation] = []
    for label in sorted(store.labels()):
        hosts: dict[BaseTerm, list[BaseTerm]] = {}
        for host, value in store.label_pairs(label):
            hosts.setdefault(host, []).append(value)
        for host, values in hosts.items():
            if len(values) > 1:
                out.append(
                    FunctionalityViolation(label, host, tuple(sorted(values, key=repr)))
                )
    return sorted(out, key=lambda v: (v.label, repr(v.host)))


def require_consistent(program: Program) -> ObjectStore:
    """Saturate under O-logic semantics; raise on any multiply-defined
    label (the program "has no models")."""
    engine = DirectEngine(program)
    store = engine.saturate()
    violations = violations_in_store(store)
    if violations:
        raise ConsistencyError(
            "O-logic program is inconsistent: " + "; ".join(str(v) for v in violations)
        )
    return store


class ValueLattice:
    """A finite value lattice with top ``T`` for the lattice-based
    alternative semantics (Kifer & Wu's repair of O-logic, [18]).

    Built from super-object declarations: ``declare(a, b)`` states that
    ``b`` is a super-object of ``a``.  ``T`` is implicitly above
    everything.  (Structurally identical to a type hierarchy; kept
    separate because its elements are *objects*, not types.)
    """

    def __init__(self, pairs: Iterable[tuple[str, str]] = ()) -> None:
        self._hierarchy = TypeHierarchy()
        for sub, sup in pairs:
            self.declare(sub, sup)

    def declare(self, obj: str, super_obj: str) -> None:
        self._hierarchy.declare(obj, super_obj)

    def upper_bounds(self, a: str, b: str) -> frozenset[str]:
        ups_a = {TOP if s == "object" else s for s in self._hierarchy.supertypes(a)}
        ups_b = {TOP if s == "object" else s for s in self._hierarchy.supertypes(b)}
        return frozenset(ups_a & ups_b)

    def join(self, a: str, b: str) -> str:
        """The least upper bound, ``T`` when only the top is common."""
        if a == b:
            return a
        common = self.upper_bounds(a, b)
        non_top = {
            c
            for c in common
            if c != TOP
            and not any(
                other != c and self._hierarchy.is_subtype(other, c)
                for other in common
                if other != TOP
            )
        }
        if len(non_top) == 1:
            return next(iter(non_top))
        return TOP


def lattice_label_value(
    values: Iterable[str], lattice: Optional[ValueLattice] = None
) -> str:
    """The label's value under the lattice semantics: the join of all
    asserted values; ``T`` for unrelated values.

    With ``john[name => "John"]`` and ``john[name => "John Smith"]``
    and no common super-object, the result is ``T`` — inconsistency made
    local to the object and label concerned, per the paper's discussion.
    """
    lattice = lattice if lattice is not None else ValueLattice()
    result: Optional[str] = None
    for value in values:
        result = value if result is None else lattice.join(result, value)
    if result is None:
        raise ConsistencyError("lattice_label_value requires at least one value")
    return result
