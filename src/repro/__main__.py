"""``python -m repro`` — the interactive C-logic shell."""

from repro.cli import main

raise SystemExit(main())
