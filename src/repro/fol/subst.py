"""Substitutions over first-order terms.

A :class:`Substitution` is an immutable finite mapping from variable
names to FOL terms, with the usual operations: application, composition
and restriction.  Unification (:mod:`repro.fol.unify`) produces
substitutions in *triangular* (fully applied, idempotent) form: no
bound variable occurs in any binding's value.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Optional

from repro.core.errors import SyntaxKindError
from repro.fol.terms import FTerm, FVar, fterm_variables, substitute_fterm

__all__ = ["Substitution"]


class Substitution(Mapping[str, FTerm]):
    """An immutable variable-to-term mapping.

    Identity bindings (``X -> X``) are dropped on construction so that
    the empty substitution has a unique representation and idempotence
    checks are syntactic.
    """

    __slots__ = ("_binding",)

    def __init__(self, binding: Optional[Mapping[str, FTerm]] = None) -> None:
        cleaned: dict[str, FTerm] = {}
        for name, value in (binding or {}).items():
            if isinstance(value, FVar) and value.name == name:
                continue
            cleaned[name] = value
        self._binding = cleaned

    # -- Mapping protocol ------------------------------------------------

    def __getitem__(self, name: str) -> FTerm:
        return self._binding[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._binding)

    def __len__(self) -> int:
        return len(self._binding)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Substitution):
            return self._binding == other._binding
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._binding.items()))

    def __repr__(self) -> str:
        items = ", ".join(f"{k}: {v!r}" for k, v in sorted(self._binding.items()))
        return f"Substitution({{{items}}})"

    # -- Operations ------------------------------------------------------

    def apply(self, term: FTerm) -> FTerm:
        """Apply this substitution to a term."""
        return substitute_fterm(term, self._binding)

    def compose(self, other: "Substitution") -> "Substitution":
        """``self`` then ``other``: ``(self.compose(other)).apply(t) ==
        other.apply(self.apply(t))``."""
        binding: dict[str, FTerm] = {
            name: other.apply(value) for name, value in self._binding.items()
        }
        for name, value in other.items():
            if name not in self._binding:
                binding[name] = value
        return Substitution(binding)

    def bind(self, name: str, value: FTerm) -> "Substitution":
        """Extend with one binding, applying it to existing values."""
        if name in self._binding:
            raise SyntaxKindError(f"variable {name!r} is already bound")
        return self.compose(Substitution({name: value}))

    @property
    def raw(self) -> Mapping[str, FTerm]:
        """The underlying binding mapping (read-only view for hot paths)."""
        return self._binding

    def extended(self, new: Mapping[str, FTerm]) -> "Substitution":
        """Fast extension with disjoint, already-resolved bindings.

        Used by the matcher's hot path: callers guarantee the new names
        are unbound in ``self`` and the values contain no bound
        variables (they come from stored facts), so no composition or
        identity-cleanup pass is needed.
        """
        if not new:
            return self
        merged = dict(self._binding)
        merged.update(new)
        out = Substitution.__new__(Substitution)
        out._binding = merged
        return out

    def restrict(self, names: set[str]) -> "Substitution":
        """Keep only the bindings for ``names`` (answer projection)."""
        return Substitution({k: v for k, v in self._binding.items() if k in names})

    def is_idempotent(self) -> bool:
        """True iff no bound variable occurs in any binding value."""
        bound = set(self._binding)
        for value in self._binding.values():
            if fterm_variables(value) & bound:
                return False
        return True

    def is_renaming(self) -> bool:
        """True iff the substitution maps variables injectively to variables."""
        targets = []
        for value in self._binding.values():
            if not isinstance(value, FVar):
                return False
            targets.append(value.name)
        return len(set(targets)) == len(targets)

    @staticmethod
    def empty() -> "Substitution":
        return _EMPTY


_EMPTY = Substitution()
