"""First-order terms — the target language of the Theorem-1 transformation.

Given a language of objects L, the corresponding first-order language L*
has the same variables and function symbols, a binary predicate symbol
per label and a unary predicate symbol per type (Section 3.3).  Its
*individual terms* are the usual FOL terms, built here from
:class:`FVar`, :class:`FConst` and :class:`FApp`.

These are deliberately separate classes from :mod:`repro.core.terms`:
FOL terms carry no type annotations and no labels, which keeps the
deduction engines simple and makes the transformation an explicit,
testable mapping rather than an in-place reinterpretation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Union

from repro.core.errors import SyntaxKindError

__all__ = [
    "FVar",
    "FConst",
    "FApp",
    "FTerm",
    "fterm_variables",
    "fterm_is_ground",
    "substitute_fterm",
    "rename_fterm",
    "fterm_size",
    "walk_fterm",
]


@dataclass(frozen=True, slots=True)
class FVar:
    """A first-order variable."""

    name: str

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise SyntaxKindError(f"variable name must be a nonempty string, got {self.name!r}")

    def __repr__(self) -> str:
        return f"FVar({self.name!r})"


@dataclass(frozen=True, slots=True)
class FConst:
    """A constant (zero-ary function symbol); value is str or int."""

    value: Union[str, int]

    def __post_init__(self) -> None:
        if isinstance(self.value, bool) or not isinstance(self.value, (str, int)):
            raise SyntaxKindError(f"constant value must be str or int, got {self.value!r}")

    def __repr__(self) -> str:
        return f"FConst({self.value!r})"


@dataclass(frozen=True, slots=True)
class FApp:
    """An n-ary function application, n >= 1."""

    functor: str
    args: tuple["FTerm", ...]

    def __post_init__(self) -> None:
        if not isinstance(self.functor, str) or not self.functor:
            raise SyntaxKindError(f"functor must be a nonempty string, got {self.functor!r}")
        args = tuple(self.args)
        object.__setattr__(self, "args", args)
        if not args:
            raise SyntaxKindError("FApp requires at least one argument; use FConst for arity 0")
        for arg in args:
            if not isinstance(arg, (FVar, FConst, FApp)):
                raise SyntaxKindError(f"function argument must be an FOL term, got {arg!r}")

    @property
    def arity(self) -> int:
        return len(self.args)

    def __repr__(self) -> str:
        return f"FApp({self.functor!r}, {self.args!r})"


FTerm = Union[FVar, FConst, FApp]


def fterm_variables(term: FTerm) -> set[str]:
    """Variable names occurring in ``term``."""
    out: set[str] = set()
    stack = [term]
    while stack:
        current = stack.pop()
        if isinstance(current, FVar):
            out.add(current.name)
        elif isinstance(current, FApp):
            stack.extend(current.args)
    return out


def fterm_is_ground(term: FTerm) -> bool:
    stack = [term]
    while stack:
        current = stack.pop()
        if isinstance(current, FVar):
            return False
        if isinstance(current, FApp):
            stack.extend(current.args)
    return True


def substitute_fterm(term: FTerm, binding: Mapping[str, FTerm]) -> FTerm:
    """Apply a variable binding, returning the original object when no
    variable in ``term`` is bound (cheap identity fast path)."""
    if isinstance(term, FVar):
        return binding.get(term.name, term)
    if isinstance(term, FConst):
        return term
    new_args = tuple(substitute_fterm(arg, binding) for arg in term.args)
    if new_args == term.args:
        return term
    return FApp(term.functor, new_args)


def rename_fterm(term: FTerm, suffix: str) -> FTerm:
    """Rename every variable by appending ``suffix`` (for standardizing
    clauses apart)."""
    if isinstance(term, FVar):
        return FVar(term.name + suffix)
    if isinstance(term, FConst):
        return term
    return FApp(term.functor, tuple(rename_fterm(arg, suffix) for arg in term.args))


def fterm_size(term: FTerm) -> int:
    count = 0
    stack = [term]
    while stack:
        current = stack.pop()
        count += 1
        if isinstance(current, FApp):
            stack.extend(current.args)
    return count


def walk_fterm(term: FTerm) -> Iterator[FTerm]:
    """Pre-order iteration over all subterms."""
    stack = [term]
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, FApp):
            stack.extend(reversed(current.args))
