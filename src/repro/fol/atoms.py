"""First-order atoms, builtins and clauses.

In the language L* obtained from a language of objects L (Section 3.3),
every label becomes a binary predicate and every type a unary
predicate, so a single atom class :class:`FAtom` covers predicates,
labels and types alike.  Clauses come in two flavours:

* :class:`HornClause` — an ordinary first-order definite clause;
* :class:`GeneralizedClause` — a *generalized definite clause*
  (Section 4): a conjunction of atoms as head, one body.  These arise
  naturally from the transformation because one complex-object rule
  asserts several first-order facts per body instance; splitting turns
  one generalized clause into one Horn clause per head atom.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Union

from repro.core.clauses import BUILTIN_OPS
from repro.core.errors import SyntaxKindError
from repro.fol.terms import (
    FTerm,
    FVar,
    FApp,
    FConst,
    fterm_is_ground,
    fterm_variables,
    rename_fterm,
    substitute_fterm,
)

__all__ = [
    "FAtom",
    "FBuiltin",
    "FBodyAtom",
    "NegAtom",
    "HornClause",
    "GeneralizedClause",
    "FOLProgram",
    "atom_variables",
    "atom_is_ground",
    "substitute_fatom",
    "substitute_fbody",
    "rename_clause",
    "rename_generalized",
]


@dataclass(frozen=True, slots=True)
class FAtom:
    """An atomic formula ``p(t1, ..., tn)`` (n may be 0 is excluded: the
    transformation only produces atoms of arity >= 1)."""

    pred: str
    args: tuple[FTerm, ...]
    _hash: int = field(default=0, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.pred, str) or not self.pred:
            raise SyntaxKindError(f"predicate symbol must be a nonempty string, got {self.pred!r}")
        args = tuple(self.args)
        object.__setattr__(self, "args", args)
        if not args:
            raise SyntaxKindError("FAtom requires at least one argument")
        for arg in args:
            if not isinstance(arg, (FVar, FConst, FApp)):
                raise SyntaxKindError(f"atom argument must be an FOL term, got {arg!r}")

    def __hash__(self) -> int:
        # Ground atoms live in large sets and index buckets; caching
        # avoids re-hashing the whole term tree on every membership op.
        cached = self._hash
        if cached == 0:
            cached = hash((self.pred, self.args)) or 1
            object.__setattr__(self, "_hash", cached)
        return cached

    @property
    def arity(self) -> int:
        return len(self.args)

    @property
    def signature(self) -> tuple[str, int]:
        return (self.pred, len(self.args))


@dataclass(frozen=True, slots=True)
class FBuiltin:
    """A builtin body atom (``is``, comparisons, ``=``) at the FOL level."""

    op: str
    args: tuple[FTerm, ...]

    def __post_init__(self) -> None:
        if self.op not in BUILTIN_OPS:
            raise SyntaxKindError(f"unknown builtin operator {self.op!r}")
        args = tuple(self.args)
        object.__setattr__(self, "args", args)
        if len(args) != 2:
            raise SyntaxKindError(f"builtin {self.op!r} takes exactly two arguments")


@dataclass(frozen=True, slots=True)
class NegAtom:
    """A negated body atom ``\\+ p(...)`` (negation as failure).

    Used by the stratified-negation extension the paper points to in
    Section 4; the positive fragment never produces one.
    """

    atom: FAtom

    def __post_init__(self) -> None:
        if not isinstance(self.atom, FAtom):
            raise SyntaxKindError(f"NegAtom wraps an FAtom, got {self.atom!r}")

    @property
    def signature(self) -> tuple[str, int]:
        return self.atom.signature

    @property
    def args(self) -> tuple[FTerm, ...]:
        return self.atom.args


FBodyAtom = Union[FAtom, FBuiltin, NegAtom]


@dataclass(frozen=True, slots=True)
class HornClause:
    """``head :- body`` with a single head atom."""

    head: FAtom
    body: tuple[FBodyAtom, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.head, FAtom):
            raise SyntaxKindError(f"Horn clause head must be an FAtom, got {self.head!r}")
        object.__setattr__(self, "body", tuple(self.body))

    @property
    def is_fact(self) -> bool:
        return not self.body

    def variables(self) -> set[str]:
        out = atom_variables(self.head)
        for atom in self.body:
            out |= atom_variables(atom)
        return out


@dataclass(frozen=True, slots=True)
class GeneralizedClause:
    """``h1, ..., hk :- body`` — a generalized definite clause.

    Section 4: "each rule of complex object specification naturally
    corresponds to a generalized or multi-head first-order clause.
    Therefore, in bottom-up computation, each successful evaluation of
    the body may produce multiple results."
    """

    heads: tuple[FAtom, ...]
    body: tuple[FBodyAtom, ...] = ()

    def __post_init__(self) -> None:
        heads = tuple(self.heads)
        object.__setattr__(self, "heads", heads)
        object.__setattr__(self, "body", tuple(self.body))
        if not heads:
            raise SyntaxKindError("a generalized clause requires at least one head atom")
        for atom in heads:
            if not isinstance(atom, FAtom):
                raise SyntaxKindError(f"generalized head atom must be an FAtom, got {atom!r}")

    @property
    def is_fact(self) -> bool:
        return not self.body

    def split(self) -> list[HornClause]:
        """One Horn clause per head atom, sharing the body.

        This realizes the paper's observation that "a generalized
        (definite) clause can be further transformed into a finite
        number of first-order (definite) clauses"; every occurrence of a
        shared variable is universally quantified per clause, so the
        split preserves the meaning.
        """
        return [HornClause(head, self.body) for head in self.heads]

    def variables(self) -> set[str]:
        out: set[str] = set()
        for atom in self.heads:
            out |= atom_variables(atom)
        for atom in self.body:
            out |= atom_variables(atom)
        return out


@dataclass(frozen=True, slots=True)
class FOLProgram:
    """A finite set of Horn clauses (the final transformation target)."""

    clauses: tuple[HornClause, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "clauses", tuple(self.clauses))
        for clause in self.clauses:
            if not isinstance(clause, HornClause):
                raise SyntaxKindError(f"not a Horn clause: {clause!r}")

    def facts(self) -> Iterator[HornClause]:
        return (clause for clause in self.clauses if clause.is_fact)

    def rules(self) -> Iterator[HornClause]:
        return (clause for clause in self.clauses if not clause.is_fact)

    def predicates(self) -> set[tuple[str, int]]:
        out: set[tuple[str, int]] = set()
        for clause in self.clauses:
            out.add(clause.head.signature)
            for atom in clause.body:
                if isinstance(atom, FAtom):
                    out.add(atom.signature)
        return out

    def __len__(self) -> int:
        return len(self.clauses)


def atom_variables(atom: FBodyAtom) -> set[str]:
    out: set[str] = set()
    for arg in atom.args:
        out |= fterm_variables(arg)
    return out


def atom_is_ground(atom: FBodyAtom) -> bool:
    return all(fterm_is_ground(arg) for arg in atom.args)


def substitute_fatom(atom: FBodyAtom, binding: Mapping[str, FTerm]) -> FBodyAtom:
    if isinstance(atom, NegAtom):
        inner = substitute_fatom(atom.atom, binding)
        assert isinstance(inner, FAtom)
        return atom if inner is atom.atom else NegAtom(inner)
    new_args = tuple(substitute_fterm(arg, binding) for arg in atom.args)
    if new_args == atom.args:
        return atom
    if isinstance(atom, FAtom):
        return FAtom(atom.pred, new_args)
    return FBuiltin(atom.op, new_args)


def substitute_fbody(
    body: tuple[FBodyAtom, ...], binding: Mapping[str, FTerm]
) -> tuple[FBodyAtom, ...]:
    return tuple(substitute_fatom(atom, binding) for atom in body)


def _rename_atom(atom: FBodyAtom, suffix: str) -> FBodyAtom:
    if isinstance(atom, NegAtom):
        inner = _rename_atom(atom.atom, suffix)
        assert isinstance(inner, FAtom)
        return NegAtom(inner)
    new_args = tuple(rename_fterm(arg, suffix) for arg in atom.args)
    if isinstance(atom, FAtom):
        return FAtom(atom.pred, new_args)
    return FBuiltin(atom.op, new_args)


def rename_clause(clause: HornClause, suffix: str) -> HornClause:
    """Standardize a clause apart by renaming all its variables."""
    head = _rename_atom(clause.head, suffix)
    assert isinstance(head, FAtom)
    return HornClause(head, tuple(_rename_atom(atom, suffix) for atom in clause.body))


def rename_generalized(clause: GeneralizedClause, suffix: str) -> GeneralizedClause:
    heads = tuple(_rename_atom(atom, suffix) for atom in clause.heads)
    return GeneralizedClause(
        tuple(h for h in heads if isinstance(h, FAtom)),
        tuple(_rename_atom(atom, suffix) for atom in clause.body),
    )
