"""Pretty-printer for the first-order side (Prolog-like notation).

Used in the examples and in EXPERIMENTS.md output so translated
programs look like the paper's Section 4 listings, e.g.::

    common_np(np(Det, Noun)), object(3), pers(np(Det, Noun), 3) :-
        determiner(Det), object(N), num(Det, N).
"""

from __future__ import annotations

import re

from repro.fol.atoms import (
    FBodyAtom,
    FBuiltin,
    FOLProgram,
    GeneralizedClause,
    HornClause,
    NegAtom,
)
from repro.fol.terms import FConst, FTerm, FVar

__all__ = [
    "pretty_fterm",
    "pretty_fatom",
    "pretty_horn",
    "pretty_generalized",
    "pretty_fol_program",
]

_IDENT_RE = re.compile(r"[a-z][A-Za-z0-9_]*\Z")
_ARITH_INFIX = {"+", "-", "*", "//", "mod"}


def pretty_fterm(term: FTerm) -> str:
    if isinstance(term, FVar):
        return term.name
    if isinstance(term, FConst):
        if isinstance(term.value, int):
            return str(term.value)
        if _IDENT_RE.match(term.value):
            return term.value
        escaped = term.value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if term.functor in _ARITH_INFIX and len(term.args) == 2:
        lhs, rhs = term.args
        return f"({pretty_fterm(lhs)} {term.functor} {pretty_fterm(rhs)})"
    args = ", ".join(pretty_fterm(arg) for arg in term.args)
    return f"{term.functor}({args})"


def pretty_fatom(atom: FBodyAtom) -> str:
    if isinstance(atom, FBuiltin):
        lhs, rhs = atom.args
        return f"{pretty_fterm(lhs)} {atom.op} {pretty_fterm(rhs)}"
    if isinstance(atom, NegAtom):
        return f"\\+ {pretty_fatom(atom.atom)}"
    args = ", ".join(pretty_fterm(arg) for arg in atom.args)
    return f"{atom.pred}({args})"


def _pretty_atoms(atoms: tuple[FBodyAtom, ...]) -> str:
    return ", ".join(pretty_fatom(atom) for atom in atoms)


def pretty_horn(clause: HornClause) -> str:
    if clause.is_fact:
        return f"{pretty_fatom(clause.head)}."
    return f"{pretty_fatom(clause.head)} :- {_pretty_atoms(clause.body)}."


def pretty_generalized(clause: GeneralizedClause) -> str:
    heads = _pretty_atoms(clause.heads)
    if clause.is_fact:
        return f"{heads}."
    return f"{heads} :- {_pretty_atoms(clause.body)}."


def pretty_fol_program(program: FOLProgram) -> str:
    return "\n".join(pretty_horn(clause) for clause in program.clauses)
