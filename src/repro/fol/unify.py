"""Unification of first-order terms and atoms.

Implements Robinson-style unification with an optional occurs check
(enabled by default — the transformation of recursive object rules can
produce cyclic constraints, and soundness of SLD resolution requires
the check).  Also provides one-way *matching* (only the pattern's
variables may be bound), used by the bottom-up engines when joining
rule bodies against ground facts.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.fol.atoms import FAtom
from repro.fol.subst import Substitution
from repro.fol.terms import FApp, FConst, FTerm, FVar

__all__ = ["unify", "unify_terms", "unify_atoms", "match", "match_atom"]


def unify(
    left: FTerm, right: FTerm, subst: Optional[Substitution] = None, occurs_check: bool = True
) -> Optional[Substitution]:
    """Most general unifier of two terms under an initial substitution.

    Returns an idempotent substitution extending ``subst``, or ``None``
    if the terms do not unify.
    """
    binding = dict(subst or ())
    if _unify_into(left, right, binding, occurs_check):
        return Substitution(binding)
    return None


def unify_terms(
    lefts: Sequence[FTerm],
    rights: Sequence[FTerm],
    subst: Optional[Substitution] = None,
    occurs_check: bool = True,
) -> Optional[Substitution]:
    """Simultaneously unify two equal-length term sequences."""
    if len(lefts) != len(rights):
        return None
    binding = dict(subst or ())
    for left, right in zip(lefts, rights):
        if not _unify_into(left, right, binding, occurs_check):
            return None
    return Substitution(binding)


def unify_atoms(
    left: FAtom, right: FAtom, subst: Optional[Substitution] = None, occurs_check: bool = True
) -> Optional[Substitution]:
    """Unify two atoms: same predicate symbol and arity, arguments unify."""
    if left.pred != right.pred or len(left.args) != len(right.args):
        return None
    return unify_terms(left.args, right.args, subst, occurs_check)


def _resolve(term: FTerm, binding: dict[str, FTerm]) -> FTerm:
    """Follow variable bindings to the representative term (no rebuild)."""
    while isinstance(term, FVar):
        bound = binding.get(term.name)
        if bound is None:
            return term
        term = bound
    return term


def _occurs(name: str, term: FTerm, binding: dict[str, FTerm]) -> bool:
    stack = [term]
    while stack:
        current = _resolve(stack.pop(), binding)
        if isinstance(current, FVar):
            if current.name == name:
                return True
        elif isinstance(current, FApp):
            stack.extend(current.args)
    return False


def _unify_into(left: FTerm, right: FTerm, binding: dict[str, FTerm], occurs_check: bool) -> bool:
    """Union-find style unification into a mutable binding.

    The binding is kept triangular lazily; callers normalize through
    :class:`Substitution`, which fully applies bindings on construction
    via :func:`_deep_apply`.
    """
    stack = [(left, right)]
    while stack:
        l, r = stack.pop()
        l = _resolve(l, binding)
        r = _resolve(r, binding)
        if l is r:
            continue
        if isinstance(l, FVar):
            if isinstance(r, FVar) and r.name == l.name:
                continue
            if occurs_check and _occurs(l.name, r, binding):
                return False
            binding[l.name] = r
            continue
        if isinstance(r, FVar):
            if occurs_check and _occurs(r.name, l, binding):
                return False
            binding[r.name] = l
            continue
        if isinstance(l, FConst) and isinstance(r, FConst):
            if l.value != r.value or type(l.value) is not type(r.value):
                return False
            continue
        if isinstance(l, FApp) and isinstance(r, FApp):
            if l.functor != r.functor or len(l.args) != len(r.args):
                return False
            stack.extend(zip(l.args, r.args))
            continue
        return False
    # Normalize to an idempotent (fully applied) binding.
    _triangularize(binding)
    return True


def _triangularize(binding: dict[str, FTerm]) -> None:
    """Rewrite the binding in place so no bound variable occurs in any
    value (assumes acyclicity, guaranteed by the occurs check; without
    it, a depth fuse prevents non-termination)."""
    for name in list(binding):
        binding[name] = _deep_apply(binding[name], binding, depth=0)


def _deep_apply(term: FTerm, binding: dict[str, FTerm], depth: int) -> FTerm:
    if depth > 10_000:  # fuse for occurs_check=False misuse
        return term
    if isinstance(term, FVar):
        bound = binding.get(term.name)
        if bound is None:
            return term
        return _deep_apply(bound, binding, depth + 1)
    if isinstance(term, FConst):
        return term
    new_args = tuple(_deep_apply(arg, binding, depth + 1) for arg in term.args)
    if new_args == term.args:
        return term
    return FApp(term.functor, new_args)


def _match_into(
    pattern: FTerm,
    instance: FTerm,
    base: "dict[str, FTerm] | None",
    new: dict[str, FTerm],
) -> bool:
    """Shared matching core: collect pattern-variable bindings into
    ``new`` without copying ``base`` (the engines' hottest loop)."""
    stack = [(pattern, instance)]
    while stack:
        p, i = stack.pop()
        if isinstance(p, FVar):
            bound = new.get(p.name)
            if bound is None and base is not None:
                bound = base.get(p.name)
            if bound is None:
                new[p.name] = i
                continue
            if bound != i:
                return False
            continue
        if isinstance(p, FConst):
            if (
                not isinstance(i, FConst)
                or p.value != i.value
                or type(p.value) is not type(i.value)
            ):
                return False
            continue
        if isinstance(p, FApp):
            if (
                not isinstance(i, FApp)
                or p.functor != i.functor
                or len(p.args) != len(i.args)
            ):
                return False
            stack.extend(zip(p.args, i.args))
            continue
        return False
    return True


def match(
    pattern: FTerm, instance: FTerm, subst: Optional[Substitution] = None
) -> Optional[Substitution]:
    """One-way matching: bind only the pattern's variables.

    ``instance`` is typically ground (a stored fact); its variables, if
    any, are treated as constants.
    """
    new: dict[str, FTerm] = {}
    base = subst.raw if subst is not None else None
    if not _match_into(pattern, instance, base, new):
        return None
    if subst is None:
        return Substitution(new)
    return subst.extended(new)


def match_atom(
    pattern: FAtom, instance: FAtom, subst: Optional[Substitution] = None
) -> Optional[Substitution]:
    """One-way matching of atoms (pattern variables only)."""
    if pattern.pred != instance.pred or len(pattern.args) != len(instance.args):
        return None
    new: dict[str, FTerm] = {}
    base = subst.raw if subst is not None else None
    for p, i in zip(pattern.args, instance.args):
        if not _match_into(p, i, base, new):
            return None
    if subst is None:
        return Substitution(new)
    return subst.extended(new)
