"""First-order logic substrate: terms, atoms, clauses, unification.

This is the target language L* of the Section 3.3 transformation and
the substrate the generic deduction engines run on.
"""

from repro.fol.atoms import (
    FAtom,
    FBodyAtom,
    FBuiltin,
    FOLProgram,
    GeneralizedClause,
    HornClause,
    atom_is_ground,
    atom_variables,
    rename_clause,
    rename_generalized,
    substitute_fatom,
    substitute_fbody,
)
from repro.fol.pretty import (
    pretty_fatom,
    pretty_fol_program,
    pretty_fterm,
    pretty_generalized,
    pretty_horn,
)
from repro.fol.subst import Substitution
from repro.fol.terms import (
    FApp,
    FConst,
    FTerm,
    FVar,
    fterm_is_ground,
    fterm_variables,
    rename_fterm,
    substitute_fterm,
)
from repro.fol.unify import match, match_atom, unify, unify_atoms, unify_terms

__all__ = [
    "FApp",
    "FAtom",
    "FBodyAtom",
    "FBuiltin",
    "FConst",
    "FOLProgram",
    "FTerm",
    "FVar",
    "GeneralizedClause",
    "HornClause",
    "Substitution",
    "atom_is_ground",
    "atom_variables",
    "fterm_is_ground",
    "fterm_variables",
    "match",
    "match_atom",
    "pretty_fatom",
    "pretty_fol_program",
    "pretty_fterm",
    "pretty_generalized",
    "pretty_horn",
    "rename_clause",
    "rename_fterm",
    "rename_generalized",
    "substitute_fatom",
    "substitute_fbody",
    "substitute_fterm",
    "unify",
    "unify_atoms",
    "unify_terms",
]
