"""Package version, kept in one place for pyproject and runtime use."""

__version__ = "1.0.0"
