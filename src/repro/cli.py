"""The ``repro`` command line: an interactive C-logic shell plus
observability subcommands (``python -m repro [SUBCOMMAND] ...``).

Subcommands::

    repl [FILE ...]     the interactive shell (default; bare file
                        arguments also land here, pre-loaded)
    query FILE          evaluate queries against a program file; add
                        --explain for the per-rule/per-round report,
                        --trace for the span tree, --trace-out for JSONL
    trace FILE          like query, with --explain and --trace implied
    update FILE         apply --insert/--retract fact batches as one
                        transaction (incremental maintenance), report
                        what the maintenance run did, then evaluate
                        --query queries against the updated base

``query``/``trace`` accept either a ``.cl`` program in the paper's
concrete syntax (inline ``:- body.`` queries are run unless ``--query``
overrides them) or a ``.py`` example module exposing ``TRACE_SOURCE``
(program text), optional ``TRACE_IDENTITIES`` (keyword dicts for
:meth:`~repro.interface.KnowledgeBase.declare_identity`) and
``TRACE_QUERIES``.

The REPL reads clauses or subtype declarations to assert them, queries
to evaluate them, and ``:commands`` to inspect the knowledge base.

Commands::

    :help               this text
    :load FILE          consult a program file
    :engine NAME        switch evaluation strategy (direct, bottomup,
                        seminaive, sld, tabled)
    :objects            list every object's merged description
    :fol [opt]          show the first-order translation ("opt" applies
                        the Section 4 redundancy elimination)
    :program            show the current program
    :existential        list undeclared existential object variables
    :identity VAR DEPS  declare VAR existentially dependent on DEPS
                        (comma-separated), e.g. :identity C X,Y
    :why QUERY          derivation trees for every answer
    :explain QUERY      EXPLAIN report for one evaluation (per rule,
                        per round, with index and join statistics)
    :quit               leave

Input lines are classified by shape: ``a < b.`` is a subtype
declaration, ``head :- body.`` or ``fact.`` asserts, ``:- body.`` or
``?- body.`` (or any body without a final period) queries.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Optional, TextIO

from repro.core.errors import (
    CLogicError,
    ConsistencyError,
    EngineError,
    LexError,
    ParseError,
    ResourceExhausted,
    SemanticsError,
    StoreError,
    SyntaxKindError,
    TransformError,
    TypeOrderError,
    UnsupportedFeatureError,
)
from repro.core.pretty import pretty_program, pretty_query, pretty_term
from repro.interface.kb import ENGINES, KnowledgeBase
from repro.obs import ExplainReport, Tracer
from repro.runtime.governor import Governor

__all__ = ["Repl", "SUBCOMMANDS", "error_exit_code", "main"]

# ----------------------------------------------------------------------
# Error families -> exit codes.  One nonzero code per family so shell
# scripts can branch on `$?` without parsing stderr; stderr always gets
# exactly one diagnostic line, `error [FamilyError]: message`.
# ----------------------------------------------------------------------

EXIT_SYNTAX = 2  #: lexer/parser/grammar violations (argparse also uses 2)
EXIT_SEMANTIC = 3  #: type order, semantics, transformation, consistency
EXIT_ENGINE = 4  #: evaluation failures other than resource limits
EXIT_RESOURCE = 5  #: a governor limit tripped in strict mode
EXIT_STORE = 6  #: object-store misuse (non-ground facts, bad journal)

_SYNTAX_ERRORS = (LexError, ParseError, SyntaxKindError)
_SEMANTIC_ERRORS = (
    TypeOrderError,
    SemanticsError,
    TransformError,
    ConsistencyError,
    UnsupportedFeatureError,
)


def error_exit_code(error: CLogicError) -> int:
    """The exit code for one error's family (most specific first)."""
    if isinstance(error, ResourceExhausted):
        return EXIT_RESOURCE
    if isinstance(error, EngineError):
        return EXIT_ENGINE
    if isinstance(error, _SYNTAX_ERRORS):
        return EXIT_SYNTAX
    if isinstance(error, _SEMANTIC_ERRORS):
        return EXIT_SEMANTIC
    if isinstance(error, StoreError):
        return EXIT_STORE
    return 1


def _fail(error: CLogicError) -> int:
    """One-line stderr diagnostic; returns the family's exit code."""
    print(f"error [{type(error).__name__}]: {error}", file=sys.stderr)
    return error_exit_code(error)

PROMPT = "c-logic> "
BANNER = (
    "C-logic shell — Chen & Warren, PODS 1989 reproduction.\n"
    "Assert clauses ('fact.', 'head :- body.'), query (':- body.' or\n"
    "just 'body'), or use :help for commands.\n"
)


class Repl:
    """The interpreter loop, parameterized over streams for testing."""

    def __init__(
        self,
        kb: Optional[KnowledgeBase] = None,
        out: TextIO = sys.stdout,
    ) -> None:
        self.kb = kb if kb is not None else KnowledgeBase()
        self.out = out
        self.running = True

    def write(self, text: str = "") -> None:
        print(text, file=self.out)

    # ------------------------------------------------------------------

    def handle(self, line: str) -> None:
        """Process one input line."""
        line = line.strip()
        if not line or line.startswith("%"):
            return
        try:
            if line.startswith(":") and not line.startswith(":-"):
                self._command(line[1:])
            elif self._looks_like_query(line):
                self._query(line)
            else:
                self._assert(line)
        except CLogicError as error:
            self.write(f"error: {error}")

    @staticmethod
    def _looks_like_query(line: str) -> bool:
        if line.startswith((":-", "?-")):
            return True
        # A clause ends with a period; anything else is read as a query.
        return not line.rstrip().endswith(".")

    def _assert(self, line: str) -> None:
        before = len(self.kb.program)
        before_subtypes = len(self.kb.program.subtypes)
        self.kb.add_source(line)
        added = len(self.kb.program) - before
        added_subtypes = len(self.kb.program.subtypes) - before_subtypes
        parts = []
        if added:
            parts.append(f"{added} clause(s)")
        if added_subtypes:
            parts.append(f"{added_subtypes} subtype declaration(s)")
        self.write("asserted " + (", ".join(parts) if parts else "nothing"))
        pending = self.kb.existential_variables()
        if pending:
            names = sorted({v for _, vars_ in pending for v in vars_})
            self.write(
                f"note: existential object variable(s) {names} need "
                ":identity declarations before evaluation"
            )

    def _query(self, line: str) -> None:
        answers = self.kb.ask(line)
        if not answers:
            self.write("no")
            return
        if all(not answer.keys() for answer in answers):
            self.write("yes")
            return
        for answer in answers:
            rendered = ", ".join(f"{k} = {v}" for k, v in answer.pretty().items())
            self.write(rendered if rendered else "yes")
        self.write(f"({len(answers)} answer(s))")

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------

    def _command(self, text: str) -> None:
        parts = text.split()
        if not parts:
            self.write("empty command; try :help")
            return
        name, args = parts[0], parts[1:]
        handler: Optional[Callable[[list[str]], None]] = {
            "help": self._cmd_help,
            "load": self._cmd_load,
            "engine": self._cmd_engine,
            "objects": self._cmd_objects,
            "fol": self._cmd_fol,
            "program": self._cmd_program,
            "existential": self._cmd_existential,
            "identity": self._cmd_identity,
            "why": self._cmd_why,
            "explain": self._cmd_explain,
            "quit": self._cmd_quit,
            "exit": self._cmd_quit,
        }.get(name)
        if handler is None:
            self.write(f"unknown command :{name}; try :help")
            return
        handler(args)

    def _cmd_help(self, args: list[str]) -> None:
        self.write(__doc__.split("Commands::")[1].split("Input lines")[0])

    def _cmd_load(self, args: list[str]) -> None:
        if len(args) != 1:
            self.write("usage: :load FILE")
            return
        try:
            with open(args[0], "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as error:
            self.write(f"cannot read {args[0]}: {error}")
            return
        self._assert(source)

    def _cmd_engine(self, args: list[str]) -> None:
        if len(args) != 1 or args[0] not in ENGINES:
            self.write(f"usage: :engine {{{', '.join(ENGINES)}}}")
            return
        self.kb.default_engine = args[0]
        self.write(f"engine set to {args[0]}")

    def _cmd_objects(self, args: list[str]) -> None:
        descriptions = self.kb.objects()
        if not descriptions:
            self.write("(no objects)")
        for description in descriptions:
            self.write(pretty_term(description))

    def _cmd_fol(self, args: list[str]) -> None:
        optimize = bool(args) and args[0] == "opt"
        self.write(self.kb.to_fol_source(optimize=optimize))

    def _cmd_program(self, args: list[str]) -> None:
        text = pretty_program(self.kb.program)
        self.write(text if text else "(empty program)")

    def _cmd_existential(self, args: list[str]) -> None:
        pending = self.kb.existential_variables()
        if not pending:
            self.write("(none)")
        for index, names in pending:
            self.write(f"clause {index}: {sorted(names)}")

    def _cmd_identity(self, args: list[str]) -> None:
        if len(args) != 2:
            self.write("usage: :identity VAR DEP1,DEP2,...")
            return
        variable, deps_text = args
        deps = tuple(d for d in deps_text.split(",") if d)
        count = self.kb.declare_identity(variable, deps)
        self.write(f"skolemized {count} clause(s): {variable} -> id({deps_text})")

    def _cmd_why(self, args: list[str]) -> None:
        if not args:
            self.write("usage: :why QUERY")
            return
        trees = self.kb.explain(" ".join(args))
        if not trees:
            self.write("no (nothing to explain)")
        for tree in trees:
            self.write(tree)
            self.write()

    def _cmd_explain(self, args: list[str]) -> None:
        if not args:
            self.write("usage: :explain QUERY")
            return
        report = ExplainReport()
        answers = self.kb.ask(" ".join(args), report=report)
        self.write(f"({len(answers)} answer(s))")
        self.write(report.render())

    def _cmd_quit(self, args: list[str]) -> None:
        self.running = False

    # ------------------------------------------------------------------

    def run(self, stream: TextIO) -> None:
        """Read-eval-print over ``stream`` until :quit or EOF."""
        self.write(BANNER)
        while self.running:
            if stream is sys.stdin and stream.isatty():
                try:
                    line = input(PROMPT)
                except EOFError:
                    break
            else:
                line = stream.readline()
                if not line:
                    break
            self.handle(line)


# ----------------------------------------------------------------------
# Subcommands: query / trace / repl
# ----------------------------------------------------------------------


def load_workload(path: str) -> tuple[KnowledgeBase, list[str]]:
    """Build a knowledge base plus default queries from a workload file.

    ``.py`` files are executed (with ``__name__`` set so their own
    ``main()`` guard does not fire) and must expose ``TRACE_SOURCE``;
    ``TRACE_IDENTITIES`` and ``TRACE_QUERIES`` are optional.  Any other
    file is parsed as concrete C-logic syntax, and its inline
    ``:- body.`` queries become the defaults.
    """
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    if path.endswith(".py"):
        namespace: dict = {"__name__": "__repro_workload__", "__file__": path}
        exec(compile(source, path, "exec"), namespace)
        if "TRACE_SOURCE" not in namespace:
            raise CLogicError(f"{path} defines no TRACE_SOURCE program text")
        kb = KnowledgeBase.from_source(namespace["TRACE_SOURCE"])
        for declaration in namespace.get("TRACE_IDENTITIES", ()):
            kb.declare_identity(**declaration)
        return kb, list(namespace.get("TRACE_QUERIES", ()))
    from repro.lang.parser import parse_program

    unit = parse_program(source)
    kb = KnowledgeBase(unit.program)
    rendered = [pretty_query(query) for query in unit.queries]
    return kb, [text.removeprefix(":- ").removesuffix(".") for text in rendered]


def _observe_args(prog: str, description: str) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog=prog, description=description)
    parser.add_argument("file", help="a .cl program or a .py TRACE_* module")
    parser.add_argument(
        "--engine", choices=ENGINES, default=None, help="evaluation strategy"
    )
    parser.add_argument(
        "--query",
        action="append",
        default=None,
        metavar="QUERY",
        help="query to evaluate (repeatable; overrides the file's own)",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="print the per-rule, per-round EXPLAIN report",
    )
    parser.add_argument(
        "--trace", action="store_true", help="print the timed span tree"
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write the spans as JSONL to PATH",
    )
    _governance_args(parser)
    return parser


def _governance_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock limit; on overrun the partial answers found "
        "so far are printed and marked incomplete",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=None,
        metavar="STEPS",
        help="evaluation-step limit (body evaluations / resolution "
        "attempts); degrades to a partial result like --deadline",
    )
    parser.add_argument(
        "--strict-limits",
        action="store_true",
        help="fail (exit code 5) when a limit trips instead of "
        "degrading to a partial result",
    )


def _governor_from(args: argparse.Namespace) -> Optional[Governor]:
    if args.deadline is None and args.budget is None:
        return None
    return Governor(
        deadline=args.deadline,
        budget=args.budget,
        strict=args.strict_limits,
    )


def _run_observed(
    args: argparse.Namespace, out: TextIO, explain: bool, trace: bool
) -> int:
    try:
        kb, queries = load_workload(args.file)
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except CLogicError as error:
        return _fail(error)
    if args.query:
        queries = list(args.query)
    if not queries:
        print(
            f"error: {args.file} has no queries; pass --query", file=sys.stderr
        )
        return 1
    governed = args.deadline is not None or args.budget is not None
    tracer = Tracer() if trace or args.trace_out else None
    for query in queries:
        report = ExplainReport() if explain else None
        try:
            if governed:
                result = kb.query(
                    query,
                    engine=args.engine,
                    deadline=args.deadline,
                    budget=args.budget,
                    strict=args.strict_limits,
                    tracer=tracer,
                    report=report,
                )
                answers = result.answers
            else:
                result = None
                answers = kb.ask(
                    query, engine=args.engine, tracer=tracer, report=report
                )
        except CLogicError as error:
            return _fail(error)
        print(f"?- {query}", file=out)
        for answer in answers:
            rendered = ", ".join(f"{k} = {v}" for k, v in answer.pretty().items())
            print(f"  {rendered if rendered else 'yes'}", file=out)
        print(f"  ({len(answers)} answer(s))", file=out)
        if result is not None and result.incomplete:
            print(
                f"  INCOMPLETE — {result.limit} limit: {result.reason}",
                file=out,
            )
        if report is not None:
            print(file=out)
            print(report.render(), file=out)
        print(file=out)
    if tracer is not None and trace:
        print("-- trace --", file=out)
        print(tracer.format_tree(), file=out)
    if tracer is not None and args.trace_out:
        try:
            tracer.write_jsonl(args.trace_out)
        except OSError as error:
            print(f"error: cannot write {args.trace_out}: {error}", file=sys.stderr)
            return 1
        count = sum(1 for _ in tracer.spans())
        print(f"wrote {count} span(s) to {args.trace_out}", file=out)
    return 0


def cmd_query(argv: list[str], out: TextIO = sys.stdout) -> int:
    """Evaluate queries from/against a program file."""
    args = _observe_args("repro query", cmd_query.__doc__).parse_args(argv)
    return _run_observed(args, out, explain=args.explain, trace=args.trace)


def cmd_trace(argv: list[str], out: TextIO = sys.stdout) -> int:
    """Like ``query``, with --explain and --trace implied."""
    args = _observe_args("repro trace", cmd_trace.__doc__).parse_args(argv)
    return _run_observed(args, out, explain=True, trace=True)


def cmd_update(argv: list[str], out: TextIO = sys.stdout) -> int:
    """Apply fact insertions/retractions as one transaction."""
    parser = argparse.ArgumentParser(
        prog="repro update", description=cmd_update.__doc__
    )
    parser.add_argument("file", help="a .cl program or a .py TRACE_* module")
    parser.add_argument(
        "--insert",
        action="append",
        default=[],
        metavar="FACT",
        help="fact clause to insert (repeatable)",
    )
    parser.add_argument(
        "--retract",
        action="append",
        default=[],
        metavar="FACT",
        help="fact clause to retract (repeatable)",
    )
    parser.add_argument(
        "--engine", choices=ENGINES, default=None, help="evaluation strategy"
    )
    parser.add_argument(
        "--query",
        action="append",
        default=None,
        metavar="QUERY",
        help="query to evaluate after the commit (repeatable)",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="print the maintenance EXPLAIN report",
    )
    parser.add_argument(
        "--trace", action="store_true", help="print the timed span tree"
    )
    _governance_args(parser)
    args = parser.parse_args(argv)
    if not args.insert and not args.retract:
        print("error: nothing to apply; pass --insert/--retract", file=sys.stderr)
        return 1
    try:
        kb, _ = load_workload(args.file)
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except CLogicError as error:
        return _fail(error)
    tracer = Tracer() if args.trace else None
    report = ExplainReport() if args.explain else None
    try:
        txn = kb.transaction()
        for text in args.insert:
            txn.insert(text if text.rstrip().endswith(".") else text + ".")
        for text in args.retract:
            txn.retract(text if text.rstrip().endswith(".") else text + ".")
        stats = txn.commit(
            tracer=tracer, report=report, governor=_governor_from(args)
        )
    except CLogicError as error:
        return _fail(error)
    from repro.runtime.governor import PartialResult

    if isinstance(stats, PartialResult):
        # A limit tripped mid-maintenance: the commit rolled back; the
        # knowledge base is exactly its pre-transaction self.
        print(
            f"NOT committed (version {kb.version} unchanged): "
            f"{stats.limit} limit tripped after {stats.elapsed:.3f}s, "
            f"{stats.steps} step(s) — the transaction rolled back",
            file=out,
        )
        print(f"  {stats.reason}", file=out)
        if report is not None:
            print(file=out)
            print(report.render(), file=out)
        return EXIT_RESOURCE
    print(
        f"committed (version {kb.version}): "
        f"+{stats.edb_inserted} -{stats.edb_retracted} asserted fact(s); "
        f"{stats.facts_new} derived fact(s) added, "
        f"{stats.facts_deleted} deleted "
        f"({stats.facts_overdeleted} overdeleted, "
        f"{stats.facts_rederived} rederived)",
        file=out,
    )
    if stats.retracts_ignored:
        print(
            f"  {stats.retracts_ignored} retract(s) ignored (not asserted)",
            file=out,
        )
    if stats.fallback:
        print(f"  fallback: {stats.fallback}", file=out)
    if report is not None:
        print(file=out)
        print(report.render(), file=out)
    for query in args.query or ():
        try:
            answers = kb.ask(query, engine=args.engine)
        except CLogicError as error:
            return _fail(error)
        print(f"?- {query}", file=out)
        for answer in answers:
            rendered = ", ".join(f"{k} = {v}" for k, v in answer.pretty().items())
            print(f"  {rendered if rendered else 'yes'}", file=out)
        print(f"  ({len(answers)} answer(s))", file=out)
    if tracer is not None:
        print("-- trace --", file=out)
        print(tracer.format_tree(), file=out)
    return 0


def cmd_repl(argv: list[str], out: TextIO = sys.stdout) -> int:
    """Load any files given, then run the interactive shell."""
    repl = Repl(out=out)
    for path in argv:
        repl._cmd_load([path])
    repl.run(sys.stdin)
    return 0


#: subcommand name -> implementation; the docs checker
#: (tools/check_docs_cli.py) validates ``repro ...`` examples against
#: this table, so keep it in sync with what main() dispatches.
SUBCOMMANDS: dict[str, Callable[[list[str]], int]] = {
    "repl": cmd_repl,
    "query": cmd_query,
    "trace": cmd_trace,
    "update": cmd_update,
}


def main(argv: Optional[list[str]] = None) -> int:
    """Entry point.  ``repro SUBCOMMAND ...`` dispatches; no arguments,
    or bare file arguments (back-compat), start the REPL."""
    argv = argv if argv is not None else sys.argv[1:]
    try:
        if argv and argv[0] in SUBCOMMANDS:
            return SUBCOMMANDS[argv[0]](argv[1:])
        if argv and argv[0] in ("-h", "--help"):
            print(__doc__.split("The REPL reads")[0])
            return 0
        return cmd_repl(argv)
    except CLogicError as error:
        # The last-resort boundary: subcommands handle their own errors
        # at the call sites above; anything that escapes still exits
        # with its family's code and a single diagnostic line.
        return _fail(error)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
