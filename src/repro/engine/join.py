"""Nested-loop body joins over a fact base, with greedy join ordering.

The shared evaluation core of the bottom-up engines and of bottom-up
query answering: given a clause body (a sequence of atoms and builtins)
and a :class:`~repro.engine.factbase.FactBase`, enumerate all
substitutions that satisfy the body.

Atoms are joined in *greedy selectivity order*: at each step the
evaluator picks a ready builtin if any (cost zero), otherwise the
pattern with the fewest indexed fact candidates under the current
substitution.  Translated C-logic bodies are full of wide ``object(X)``
typing atoms whose variables the adjacent label atoms bind cheaply —
textual order would enumerate the whole active domain before filtering,
the exact blow-up Section 4 attributes to the translation.  Join order
never affects the answer set, so this is a pure optimization;
``reorder=False`` restores textual order for experiments that need the
paper's worst case.

For semi-naive evaluation, one body position can be designated the
*delta position*: the atom there only matches facts first derived at or
after a given round, and it is always joined first (it is the most
selective by construction).
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.core.errors import BuiltinError, SafetyError
from repro.fol.atoms import (
    FAtom,
    FBodyAtom,
    FBuiltin,
    NegAtom,
    atom_is_ground,
    atom_variables,
    substitute_fatom,
)
from repro.fol.subst import Substitution
from repro.fol.terms import fterm_variables
from repro.engine.builtins import builtin_is_ready, solve_builtin
from repro.engine.factbase import FactBase
from repro.fol.unify import match_atom

__all__ = ["join_body", "check_range_restricted", "plan_order"]


#: Candidate-source modes for one body atom in a partitioned join.
_ALL, _OLD = "all", "old"


def join_body(
    body: Sequence[FBodyAtom],
    facts: FactBase,
    initial: Optional[Substitution] = None,
    delta_position: Optional[int] = None,
    delta_round: int = 0,
    reorder: bool = True,
) -> Iterator[Substitution]:
    """Yield every substitution satisfying ``body`` against ``facts``.

    With ``delta_position`` set, the standard semi-naive *partition*
    applies: the atom at that index matches only facts stamped
    ``>= delta_round`` (and is joined first, being the most selective),
    atoms at *earlier* indexes match only strictly older facts, and
    later indexes are unrestricted.  Summed over all positions this
    covers every instantiation that touches a new fact exactly once.
    """
    subst = initial if initial is not None else Substitution.empty()
    if delta_position is not None:
        delta_atom = body[delta_position]
        if isinstance(delta_atom, (FBuiltin, NegAtom)):
            raise SafetyError("the delta position must be a positive atom")
        rest = []
        for index, atom in enumerate(body):
            if index == delta_position:
                continue
            restrict_old = index < delta_position and not isinstance(
                atom, (FBuiltin, NegAtom)
            )
            rest.append((atom, _OLD if restrict_old else _ALL))
        pattern = substitute_fatom(delta_atom, subst)
        assert isinstance(pattern, FAtom)
        for fact in facts.candidates_since(pattern, delta_round):
            extended = match_atom(pattern, fact, subst)
            if extended is not None:
                yield from _join(list(rest), facts, extended, reorder, delta_round)
        return
    yield from _join([(atom, _ALL) for atom in body], facts, subst, reorder, 0)


def _pick(
    remaining: list[tuple[FBodyAtom, str]],
    facts: FactBase,
    subst: Substitution,
    reorder: bool,
) -> int:
    """Choose the next atom to solve; -1 signals 'nothing runnable'."""
    if not reorder:
        return 0
    best_index = -1
    best_cost: float = float("inf")
    for index, (atom, __) in enumerate(remaining):
        if isinstance(atom, FBuiltin):
            if builtin_is_ready(atom, subst):
                return index
            continue
        if isinstance(atom, NegAtom):
            grounded = substitute_fatom(atom.atom, subst)
            assert isinstance(grounded, FAtom)
            if atom_is_ground(grounded):
                return index  # a ground test costs nothing
            continue
        pattern = substitute_fatom(atom, subst)
        assert isinstance(pattern, FAtom)
        cost = facts.candidate_count(pattern)
        if cost == 0:
            return index  # fails immediately: prune this branch now
        if cost < best_cost:
            best_cost = cost
            best_index = index
    return best_index


def _join(
    remaining: list[tuple[FBodyAtom, str]],
    facts: FactBase,
    subst: Substitution,
    reorder: bool,
    old_before: int,
) -> Iterator[Substitution]:
    if not remaining:
        yield subst
        return
    index = _pick(remaining, facts, subst, reorder)
    if index < 0:
        # Only unready builtins / non-ground negations remain.
        leftover = remaining[0][0]
        if isinstance(leftover, FBuiltin):
            # Raise the standard instantiation error.
            solve_builtin(leftover, subst)
            raise BuiltinError("builtin could not be scheduled")  # pragma: no cover
        raise SafetyError(
            "negative atoms could not be grounded by the positive goals "
            "(unsafe rule)"
        )
    atom, mode = remaining[index]
    rest = remaining[:index] + remaining[index + 1 :]
    if isinstance(atom, FBuiltin):
        solved = solve_builtin(atom, subst)
        if solved is not None:
            yield from _join(rest, facts, solved, reorder, old_before)
        return
    if isinstance(atom, NegAtom):
        # Negation as failure against the facts derived so far.  Sound
        # for query answering over a completed model and for stratified
        # evaluation (the stratified engine orders the strata); the
        # positive-only fixpoints refuse rules containing NegAtom.
        ground = substitute_fatom(atom.atom, subst)
        assert isinstance(ground, FAtom)
        if not atom_is_ground(ground):
            raise SafetyError(
                f"negative atom {ground.pred}/{ground.arity} is not ground "
                "when reached (bind its variables in earlier goals)"
            )
        if ground not in facts:
            yield from _join(rest, facts, subst, reorder, old_before)
        return
    pattern = substitute_fatom(atom, subst)
    assert isinstance(pattern, FAtom)
    if mode == _OLD:
        candidates = facts.candidates_before(pattern, old_before)
    else:
        candidates = facts.candidates(pattern)
    for fact in candidates:
        extended = match_atom(pattern, fact, subst)
        if extended is not None:
            yield from _join(rest, facts, extended, reorder, old_before)


def plan_order(
    body: Sequence[FBodyAtom], facts: FactBase
) -> list[tuple[str, int]]:
    """The greedy join order for ``body`` against the current facts, as
    ``(pretty atom, estimated candidates)`` pairs — what the EXPLAIN
    report prints.

    This is the plan for the *first* instantiation attempt (empty
    substitution), so the costs are the planner's initial selectivity
    estimates; once bindings flow, later picks get cheaper than shown.
    Builtins and ground negations cost 0; atoms the planner cannot
    schedule from an empty substitution (unready builtins, non-ground
    negations) are appended in textual order with cost -1.
    """
    from repro.fol.pretty import pretty_fatom

    remaining: list[tuple[FBodyAtom, str]] = [(atom, _ALL) for atom in body]
    subst = Substitution.empty()
    plan: list[tuple[str, int]] = []
    while remaining:
        index = _pick(remaining, facts, subst, reorder=True)
        if index < 0:
            plan.extend((pretty_fatom(atom), -1) for atom, __ in remaining)
            break
        atom, __ = remaining.pop(index)
        if isinstance(atom, (FBuiltin, NegAtom)):
            cost = 0
        else:
            pattern = substitute_fatom(atom, subst)
            assert isinstance(pattern, FAtom)
            cost = facts.candidate_count(pattern)
        plan.append((pretty_fatom(atom), cost))
    return plan


def check_range_restricted(head_atoms: Sequence[FAtom], body: Sequence[FBodyAtom]) -> None:
    """Raise :class:`SafetyError` unless every head variable occurs in a
    positive body atom or is bound by an ``is``/``=`` builtin.

    Bottom-up evaluation instantiates rules from facts, so an unsafe
    head variable would produce non-ground derived facts.
    """
    bound: set[str] = set()
    for atom in body:
        if isinstance(atom, FBuiltin):
            if atom.op in ("is", "="):
                bound |= fterm_variables(atom.args[0])
                if atom.op == "=":
                    bound |= fterm_variables(atom.args[1])
            continue
        if isinstance(atom, NegAtom):
            continue  # negative atoms test, they do not bind
        bound |= atom_variables(atom)
    for head in head_atoms:
        unsafe = atom_variables(head) - bound
        if unsafe:
            raise SafetyError(
                f"head variables {sorted(unsafe)} of {head.pred}/{head.arity} "
                "do not occur in the body (clause is not range-restricted)"
            )
