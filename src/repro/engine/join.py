"""Compiled body joins over a fact base, with greedy join ordering.

The shared evaluation core of the bottom-up engines and of bottom-up
query answering: given a clause body (a sequence of atoms and builtins)
and a :class:`~repro.engine.factbase.FactBase`, enumerate all
substitutions that satisfy the body.

A body is compiled once into a :class:`JoinPlan` — per-step kinds and
variable sets are resolved at compile time — and the plan is executed
with an explicit stack of join frames instead of Python recursion and
per-step list slicing.  Candidate windows come back from the fact base
as immutable :class:`~repro.engine.factbase.FactView` slices, so the
inner loop indexes the backing row list directly without copying.

Atoms are joined in *greedy selectivity order*: at each step the
executor picks a ready builtin or ground negation if any (cost zero),
otherwise the pattern with the fewest indexed fact candidates under the
current substitution.  Translated C-logic bodies are full of wide
``object(X)`` typing atoms whose variables the adjacent label atoms
bind cheaply — textual order would enumerate the whole active domain
before filtering, the exact blow-up Section 4 attributes to the
translation.  Join order never affects the answer set, so this is a
pure optimization; ``reorder=False`` restores textual order for
experiments that need the paper's worst case.

For semi-naive evaluation, one body position can be designated the
*delta position*: the atom there only matches facts first derived at or
after a given round, and it is always joined first (it is the most
selective by construction).
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.core.errors import BuiltinError, SafetyError
from repro.fol.atoms import (
    FAtom,
    FBodyAtom,
    FBuiltin,
    NegAtom,
    atom_is_ground,
    atom_variables,
    substitute_fatom,
)
from repro.fol.subst import Substitution
from repro.fol.terms import fterm_variables
from repro.engine.builtins import builtin_is_ready, solve_builtin
from repro.engine.factbase import FactBase, FactView
from repro.fol.unify import match_atom

__all__ = [
    "JoinPlan",
    "compile_body",
    "join_body",
    "check_range_restricted",
    "plan_order",
]


#: Candidate-source modes for one body atom in a partitioned join.
_ALL, _OLD = "all", "old"

#: Step kinds resolved at compile time.
_ATOM, _BUILTIN, _NEG = 0, 1, 2


class _Step:
    """One compiled body position: the atom, its kind, and (for
    negations) the variables that must be bound before it can run."""

    __slots__ = ("atom", "kind", "vars")

    def __init__(self, atom: FBodyAtom, kind: int, vars_: frozenset) -> None:
        self.atom = atom
        self.kind = kind
        self.vars = vars_


class JoinPlan:
    """A clause body compiled for repeated execution.

    Compile once per rule (the fixpoint engines do this at entry), then
    call :meth:`run` every round — the per-step classification work is
    never repeated.  Plans are immutable and safe to share.
    """

    __slots__ = ("body", "steps", "_modes")

    def __init__(self, body: tuple, steps: tuple) -> None:
        self.body = body
        self.steps = steps
        self._modes: dict[int, tuple] = {}

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def run(
        self,
        facts: FactBase,
        initial: Optional[Substitution] = None,
        reorder: bool = True,
    ) -> Iterator[Substitution]:
        """All substitutions satisfying the body against ``facts``."""
        subst = initial if initial is not None else Substitution.empty()
        return self._run(facts, subst, reorder, None, 0, [False] * len(self.steps), 0)

    def run_delta(
        self,
        facts: FactBase,
        delta_position: int,
        delta_round: int,
        initial: Optional[Substitution] = None,
        reorder: bool = True,
    ) -> Iterator[Substitution]:
        """The semi-naive partition: the atom at ``delta_position``
        matches only facts stamped ``>= delta_round`` (joined first,
        being the most selective), earlier positive positions match only
        strictly older facts, later positions are unrestricted."""
        subst = initial if initial is not None else Substitution.empty()
        steps = self.steps
        step = steps[delta_position]
        if step.kind != _ATOM:
            raise SafetyError("the delta position must be a positive atom")
        modes = self._modes_for(delta_position)
        pattern = substitute_fatom(step.atom, subst)
        n = len(steps)
        for fact in facts.candidates_since(pattern, delta_round):
            extended = match_atom(pattern, fact, subst)
            if extended is not None:
                used = [False] * n
                used[delta_position] = True
                yield from self._run(
                    facts, extended, reorder, modes, delta_round, used, 1
                )

    def order(self, facts: FactBase) -> list[tuple[str, int]]:
        """The greedy join order against the current facts — see
        :func:`plan_order`."""
        from repro.fol.pretty import pretty_fatom

        steps = self.steps
        used = [False] * len(steps)
        subst = Substitution.empty()
        plan: list[tuple[str, int]] = []
        for _ in range(len(steps)):
            index = self._select(used, facts, subst)
            if index < 0:
                plan.extend(
                    (pretty_fatom(step.atom), -1)
                    for position, step in enumerate(steps)
                    if not used[position]
                )
                break
            used[index] = True
            step = steps[index]
            if step.kind == _ATOM:
                pattern = substitute_fatom(step.atom, subst)
                cost = facts.candidate_count(pattern)
            else:
                cost = 0
            plan.append((pretty_fatom(step.atom), cost))
        return plan

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _modes_for(self, delta_position: int) -> tuple:
        modes = self._modes.get(delta_position)
        if modes is None:
            modes = tuple(
                _OLD if index < delta_position and step.kind == _ATOM else _ALL
                for index, step in enumerate(self.steps)
            )
            self._modes[delta_position] = modes
        return modes

    def _select(self, used: list, facts: FactBase, subst: Substitution) -> int:
        """Greedy choice of the next unused step; -1 when only unready
        builtins / non-ground negations remain."""
        steps = self.steps
        bound = subst.raw.keys()
        best = -1
        best_cost = 0
        for index, step in enumerate(steps):
            if used[index]:
                continue
            kind = step.kind
            if kind == _BUILTIN:
                if builtin_is_ready(step.atom, subst):
                    return index
                continue
            if kind == _NEG:
                if step.vars <= bound:
                    grounded = substitute_fatom(step.atom.atom, subst)
                    if atom_is_ground(grounded):
                        return index  # a ground test costs nothing
                continue
            pattern = substitute_fatom(step.atom, subst)
            cost = facts.candidate_count(pattern)
            if cost == 0:
                return index  # fails immediately: prune this branch now
            if best < 0 or cost < best_cost:
                best_cost = cost
                best = index
        return best

    def _raise_unschedulable(self, used: list, subst: Substitution) -> None:
        for index, step in enumerate(self.steps):
            if not used[index]:
                if step.kind == _BUILTIN:
                    # Raise the standard instantiation error.
                    solve_builtin(step.atom, subst)
                    raise BuiltinError(
                        "builtin could not be scheduled"
                    )  # pragma: no cover
                break
        raise SafetyError(
            "negative atoms could not be grounded by the positive goals "
            "(unsafe rule)"
        )

    def _run(
        self,
        facts: FactBase,
        subst: Substitution,
        reorder: bool,
        modes: Optional[tuple],
        old_before: int,
        used: list,
        n_used: int,
    ) -> Iterator[Substitution]:
        """Iterative executor: an explicit stack of join frames, with
        deterministic steps (builtins, ground negations) applied inline
        between choice points and unwound on backtrack."""
        steps = self.steps
        n = len(steps)
        # One frame per open positive atom:
        # [step index, pattern, rows, next position, stop, base subst,
        #  deterministic steps consumed on the way to this frame]
        stack: list[list] = []

        def descend(current: Substitution):
            """Extend ``current`` through deterministic steps until the
            body completes (answer), a positive atom opens a frame, or a
            test fails.  Returns ``(code, answer, dets)`` with code
            0=answer, 1=frame pushed, 2=dead branch."""
            nonlocal n_used
            dets: list[int] = []
            while n_used < n:
                if reorder:
                    index = self._select(used, facts, current)
                    if index < 0:
                        self._raise_unschedulable(used, current)
                else:
                    index = used.index(False)
                step = steps[index]
                kind = step.kind
                if kind == _ATOM:
                    pattern = substitute_fatom(step.atom, current)
                    if modes is not None and modes[index] == _OLD:
                        window = facts.candidates_before(pattern, old_before)
                    else:
                        window = facts.candidates(pattern)
                    if type(window) is FactView:
                        rows, position, stop = window.raw()
                    else:
                        rows, position, stop = window, 0, len(window)
                    used[index] = True
                    n_used += 1
                    stack.append(
                        [index, pattern, rows, position, stop, current, dets]
                    )
                    return 1, None, dets
                used[index] = True
                n_used += 1
                dets.append(index)
                if kind == _BUILTIN:
                    solved = solve_builtin(step.atom, current)
                    if solved is None:
                        return 2, None, dets
                    current = solved
                    continue
                # Negation as failure against the facts derived so far.
                # Sound for query answering over a completed model and
                # for stratified evaluation (the stratified engine
                # orders the strata); the positive-only fixpoints refuse
                # rules containing NegAtom.
                ground = substitute_fatom(step.atom.atom, current)
                if not atom_is_ground(ground):
                    raise SafetyError(
                        f"negative atom {ground.pred}/{ground.arity} is not "
                        "ground when reached (bind its variables in earlier "
                        "goals)"
                    )
                if ground in facts:
                    return 2, None, dets
            return 0, current, dets

        code, answer, dets = descend(subst)
        while True:
            if code == 0:
                yield answer
            if code != 1:
                # Dead branch or delivered answer: release the
                # deterministic tail of that descent.
                for det in dets:
                    used[det] = False
                n_used -= len(dets)
            # Advance the deepest open frame to its next candidate.
            while stack:
                frame = stack[-1]
                pattern, rows, position, stop, base = (
                    frame[1],
                    frame[2],
                    frame[3],
                    frame[4],
                    frame[5],
                )
                extended = None
                while position < stop:
                    fact = rows[position]
                    position += 1
                    extended = match_atom(pattern, fact, base)
                    if extended is not None:
                        break
                if extended is not None:
                    frame[3] = position
                    code, answer, dets = descend(extended)
                    break
                # Frame exhausted: release its atom and the
                # deterministic prefix that led to it.
                stack.pop()
                used[frame[0]] = False
                n_used -= 1
                for det in frame[6]:
                    used[det] = False
                n_used -= len(frame[6])
            else:
                return


#: Compiled plans keyed by body tuple (bodies are immutable and
#: hashable).  Engines precompile per rule; this cache serves the
#: ad-hoc `join_body` callers (queries, tests) the same plan reuse.
_PLAN_CACHE: dict[tuple, JoinPlan] = {}
_PLAN_CACHE_LIMIT = 1024


def compile_body(body: Sequence[FBodyAtom]) -> JoinPlan:
    """Compile ``body`` into a reusable :class:`JoinPlan` (cached)."""
    key = tuple(body)
    plan = _PLAN_CACHE.get(key)
    if plan is None:
        steps = []
        for atom in key:
            if isinstance(atom, FBuiltin):
                steps.append(_Step(atom, _BUILTIN, frozenset(atom_variables(atom))))
            elif isinstance(atom, NegAtom):
                steps.append(
                    _Step(atom, _NEG, frozenset(atom_variables(atom.atom)))
                )
            else:
                steps.append(_Step(atom, _ATOM, frozenset(atom_variables(atom))))
        plan = JoinPlan(key, tuple(steps))
        if len(_PLAN_CACHE) >= _PLAN_CACHE_LIMIT:
            _PLAN_CACHE.clear()
        _PLAN_CACHE[key] = plan
    return plan


def join_body(
    body: Sequence[FBodyAtom],
    facts: FactBase,
    initial: Optional[Substitution] = None,
    delta_position: Optional[int] = None,
    delta_round: int = 0,
    reorder: bool = True,
) -> Iterator[Substitution]:
    """Yield every substitution satisfying ``body`` against ``facts``.

    With ``delta_position`` set, the standard semi-naive *partition*
    applies: the atom at that index matches only facts stamped
    ``>= delta_round`` (and is joined first, being the most selective),
    atoms at *earlier* indexes match only strictly older facts, and
    later indexes are unrestricted.  Summed over all positions this
    covers every instantiation that touches a new fact exactly once.
    """
    plan = compile_body(body)
    if delta_position is not None:
        return plan.run_delta(facts, delta_position, delta_round, initial, reorder)
    return plan.run(facts, initial, reorder)


def plan_order(
    body: Sequence[FBodyAtom], facts: FactBase
) -> list[tuple[str, int]]:
    """The greedy join order for ``body`` against the current facts, as
    ``(pretty atom, estimated candidates)`` pairs — what the EXPLAIN
    report prints.

    This is the plan for the *first* instantiation attempt (empty
    substitution), so the costs are the planner's initial selectivity
    estimates; once bindings flow, later picks get cheaper than shown.
    Builtins and ground negations cost 0; atoms the planner cannot
    schedule from an empty substitution (unready builtins, non-ground
    negations) are appended in textual order with cost -1.
    """
    return compile_body(body).order(facts)


def check_range_restricted(head_atoms: Sequence[FAtom], body: Sequence[FBodyAtom]) -> None:
    """Raise :class:`SafetyError` unless every head variable occurs in a
    positive body atom or is bound by an ``is``/``=`` builtin.

    Bottom-up evaluation instantiates rules from facts, so an unsafe
    head variable would produce non-ground derived facts.
    """
    bound: set[str] = set()
    for atom in body:
        if isinstance(atom, FBuiltin):
            if atom.op in ("is", "="):
                bound |= fterm_variables(atom.args[0])
                if atom.op == "=":
                    bound |= fterm_variables(atom.args[1])
            continue
        if isinstance(atom, NegAtom):
            continue  # negative atoms test, they do not bind
        bound |= atom_variables(atom)
    for head in head_atoms:
        unsafe = atom_variables(head) - bound
        if unsafe:
            raise SafetyError(
                f"head variables {sorted(unsafe)} of {head.pred}/{head.arity} "
                "do not occur in the body (clause is not range-restricted)"
            )
