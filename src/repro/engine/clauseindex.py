"""First-argument clause indexing shared by the top-down engines.

The WAM trick on the *rule* side: clauses are bucketed by the principal
functor of their head's first argument, with variable-first-argument
clauses kept apart (they match any call).  A call with a ground-enough
first argument then resolves only against the clauses that can possibly
unify, in program order — the same discipline
:class:`~repro.engine.factbase.FactBase` applies to facts.

Used by :class:`~repro.engine.topdown.SLDEngine` and
:class:`~repro.engine.tabling.TabledEngine`; both previously kept their
own (or no) clause index.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.fol.atoms import FAtom, HornClause
from repro.engine.factbase import principal_functor

__all__ = ["ClauseIndex"]


class ClauseIndex:
    """Clauses of one program, indexed by head signature and first-
    argument principal functor.  Immutable after construction."""

    __slots__ = ("_by_pred", "_by_first", "_open_first")

    def __init__(self, clauses: Iterable[HornClause]) -> None:
        self._by_pred: dict[tuple[str, int], list[HornClause]] = {}
        # Entries carry the program position so merged candidate lists
        # preserve program order.
        self._by_first: dict[tuple, list[tuple[int, HornClause]]] = {}
        self._open_first: dict[tuple[str, int], list[tuple[int, HornClause]]] = {}
        for position, clause in enumerate(clauses):
            signature = clause.head.signature
            self._by_pred.setdefault(signature, []).append(clause)
            key = (
                principal_functor(clause.head.args[0])
                if clause.head.args
                else None
            )
            if key is None:
                self._open_first.setdefault(signature, []).append(
                    (position, clause)
                )
            else:
                self._by_first.setdefault((signature, key), []).append(
                    (position, clause)
                )

    def all_for(self, signature: tuple[str, int]) -> Sequence[HornClause]:
        """Every clause whose head has the signature, in program order."""
        return self._by_pred.get(signature, [])

    def candidates(self, pattern: FAtom) -> Sequence[HornClause]:
        """Candidate clauses for a goal, narrowed by the indexes; kept
        in program order (merge of indexed and open-first-argument
        lists)."""
        signature = pattern.signature
        key = principal_functor(pattern.args[0]) if pattern.args else None
        if key is None:
            return self._by_pred.get(signature, [])
        indexed = self._by_first.get((signature, key), [])
        open_first = self._open_first.get(signature, [])
        if not open_first:
            return [clause for _, clause in indexed]
        if not indexed:
            return [clause for _, clause in open_first]
        merged = sorted(indexed + open_first, key=lambda entry: entry[0])
        return [clause for _, clause in merged]
