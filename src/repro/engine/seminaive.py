"""Semi-naive bottom-up evaluation.

Same fixpoint as :func:`repro.engine.bottomup.naive_fixpoint`, but each
round only considers rule instantiations that use at least one fact
derived in the previous round.  The standard Datalog partition is used
per body position ``i``: the atom at ``i`` joins against the *delta*
(facts stamped with the previous round), atoms at earlier positions
against strictly older facts, later positions against everything — so
each new instantiation is produced by exactly one position, without
materializing delta relations (the fact stamps in the
:class:`~repro.engine.factbase.FactBase` carry the partition).

Multi-head (generalized) clauses are supported directly; the E11
experiment checks the fixpoint equals the naive one and measures the
saved body evaluations.
"""

from __future__ import annotations

from typing import Iterable, Union

from repro.core.errors import EngineError
from repro.fol.atoms import FAtom, FBuiltin, FOLProgram, substitute_fatom
from repro.engine.bottomup import ClauseLike, EvaluationStats, normalize_clauses
from repro.engine.factbase import FactBase
from repro.engine.join import check_range_restricted, join_body

__all__ = ["seminaive_fixpoint"]


def seminaive_fixpoint(
    clauses: Union[FOLProgram, Iterable[ClauseLike]],
    max_rounds: int = 10_000,
    stats: EvaluationStats | None = None,
) -> FactBase:
    """The minimal model of ``clauses``, computed semi-naively."""
    generalized = normalize_clauses(clauses)
    from repro.engine.bottomup import _reject_negation

    _reject_negation(generalized)
    for clause in generalized:
        check_range_restricted(clause.heads, clause.body)
    facts = FactBase()
    stats = stats if stats is not None else EvaluationStats()
    for clause in generalized:
        if clause.is_fact:
            for head in clause.heads:
                if facts.add(head):
                    stats.facts_new += 1
                stats.facts_derived += 1
    rules = [clause for clause in generalized if not clause.is_fact]
    # Precompute the joinable (non-builtin) positions of each rule.
    positions = [
        [i for i, atom in enumerate(clause.body) if not isinstance(atom, FBuiltin)]
        for clause in rules
    ]
    delta_round = 0  # facts stamped >= this round are "new"
    for _ in range(max_rounds):
        stats.rounds += 1
        current_round = facts.next_round()
        changed = False
        for clause, delta_positions in zip(rules, positions):
            if not delta_positions:
                # Pure-builtin body: evaluate once, in the first round.
                if stats.rounds > 1:
                    continue
                iterator = join_body(clause.body, facts)
                for subst in iterator:
                    stats.body_evaluations += 1
                    changed |= _derive(clause.heads, subst, facts, stats)
                continue
            # The old/delta/all partition in join_body yields each new
            # instantiation from exactly one position: no dedup needed.
            for position in delta_positions:
                for subst in join_body(
                    clause.body, facts, delta_position=position, delta_round=delta_round
                ):
                    stats.body_evaluations += 1
                    changed |= _derive(clause.heads, subst, facts, stats)
        delta_round = current_round
        if not changed:
            return facts
    raise EngineError(f"no fixpoint within {max_rounds} rounds (non-terminating program?)")


def _derive(heads, subst, facts: FactBase, stats: EvaluationStats) -> bool:
    new = False
    for head in heads:
        derived = substitute_fatom(head, subst)
        assert isinstance(derived, FAtom)
        stats.facts_derived += 1
        if facts.add(derived):
            stats.facts_new += 1
            new = True
    return new
