"""Semi-naive bottom-up evaluation.

Same fixpoint as :func:`repro.engine.bottomup.naive_fixpoint`, but each
round only considers rule instantiations that use at least one fact
derived in the previous round.  The standard Datalog partition is used
per body position ``i``: the atom at ``i`` joins against the *delta*
(facts stamped with the previous round), atoms at earlier positions
against strictly older facts, later positions against everything — so
each new instantiation is produced by exactly one position, without
materializing delta relations (the fact stamps in the
:class:`~repro.engine.factbase.FactBase` carry the partition).

Multi-head (generalized) clauses are supported directly; the E11
experiment checks the fixpoint equals the naive one and measures the
saved body evaluations.
"""

from __future__ import annotations

from typing import Iterable, Union

from repro.core.errors import BudgetExceeded, ResourceExhausted
from repro.fol.atoms import FAtom, FBuiltin, FOLProgram, substitute_fatom
from repro.engine.bottomup import (
    ClauseLike,
    EvaluationStats,
    finish_report,
    normalize_clauses,
    prepare_report,
)
from repro.engine.factbase import FactBase
from repro.engine.join import check_range_restricted, compile_body

__all__ = ["seminaive_fixpoint"]


def seminaive_fixpoint(
    clauses: Union[FOLProgram, Iterable[ClauseLike]],
    max_rounds: int = 10_000,
    stats: EvaluationStats | None = None,
    tracer=None,
    report=None,
    governor=None,
):
    """The minimal model of ``clauses``, computed semi-naively.

    ``tracer``/``report`` are the observability hooks of
    :mod:`repro.obs` — one span per round, and the per-rule, per-round
    EXPLAIN account; both default off.

    ``governor`` bounds the run exactly as in
    :func:`~repro.engine.bottomup.naive_fixpoint`: one tick per body
    evaluation, fact-count check per rule per round, and graceful
    degradation to a :class:`repro.runtime.PartialResult` on a
    non-strict limit trip.
    """
    generalized = normalize_clauses(clauses)
    from repro.engine.bottomup import _reject_negation

    _reject_negation(generalized)
    for clause in generalized:
        check_range_restricted(clause.heads, clause.body)
    facts = FactBase()
    stats = stats if stats is not None else EvaluationStats()
    for clause in generalized:
        if clause.is_fact:
            for head in clause.heads:
                if facts.add(head):
                    stats.facts_new += 1
                stats.facts_derived += 1
    rules = [clause for clause in generalized if not clause.is_fact]
    plans = [compile_body(clause.body) for clause in rules]
    rule_slots = prepare_report(report, "seminaive", rules, facts)
    if rule_slots is not None:
        # Plan once at entry; refreshed on the final round below so the
        # report shows the converged selectivities without paying a
        # re-plan per rule per round (which used to distort the very
        # timings EXPLAIN reports).
        for slot, plan in zip(rule_slots, plans):
            slot.join_order = plan.order(facts)
    # Precompute the joinable (non-builtin) positions of each rule.
    positions = [
        [i for i, atom in enumerate(clause.body) if not isinstance(atom, FBuiltin)]
        for clause in rules
    ]
    delta_round = 0  # facts stamped >= this round are "new"
    if governor is not None:
        governor.start()
    try:
        for _ in range(max_rounds):
            stats.rounds += 1
            current_round = facts.next_round()
            round_span = (
                tracer.start("seminaive.round", round=stats.rounds)
                if tracer is not None
                else None
            )
            new_before_round = stats.facts_new
            changed = False
            for rule_index, (clause, delta_positions) in enumerate(zip(rules, positions)):
                row = None
                if rule_slots is not None:
                    row = rule_slots[rule_index].round(stats.rounds)
                    index_before = report.index.snapshot()
                    derived_before, new_before = stats.facts_derived, stats.facts_new
                evals_before = stats.body_evaluations
                plan = plans[rule_index]
                if not delta_positions:
                    # Pure-builtin body: evaluate once, in the first round.
                    if stats.rounds > 1:
                        continue
                    for subst in plan.run(facts):
                        if governor is not None:
                            governor.tick()
                        stats.body_evaluations += 1
                        changed |= _derive(clause.heads, subst, facts, stats)
                else:
                    # The old/delta/all partition in run_delta yields each
                    # new instantiation from exactly one position: no dedup
                    # needed.
                    for position in delta_positions:
                        for subst in plan.run_delta(facts, position, delta_round):
                            if governor is not None:
                                governor.tick()
                            stats.body_evaluations += 1
                            changed |= _derive(clause.heads, subst, facts, stats)
                if governor is not None:
                    governor.tick()
                    governor.check_facts(len(facts))
                if row is not None:
                    row.instantiations += stats.body_evaluations - evals_before
                    row.facts_derived += stats.facts_derived - derived_before
                    row.facts_new += stats.facts_new - new_before
                    report.index.add_since(index_before, rule_slots[rule_index].index)
            delta_round = current_round
            if round_span is not None:
                round_span.count("facts_new", stats.facts_new - new_before_round)
                round_span.set("changed", changed)
                tracer.finish(round_span)
            if not changed:
                if rule_slots is not None:
                    for slot, plan in zip(rule_slots, plans):
                        slot.join_order = plan.order(facts)
                finish_report(report, stats, facts)
                return facts
        raise BudgetExceeded(
            f"no fixpoint within {max_rounds} rounds (non-terminating program?)"
        )
    except (ResourceExhausted, RecursionError) as exc:
        from repro.runtime.governor import as_resource_error, degrade

        exc = as_resource_error(exc)
        finish_report(report, stats, facts)
        return degrade(governor, exc, facts, report)


def _derive(heads, subst, facts: FactBase, stats: EvaluationStats) -> bool:
    new = False
    for head in heads:
        derived = substitute_fatom(head, subst)
        assert isinstance(derived, FAtom)
        stats.facts_derived += 1
        if facts.add(derived):
            stats.facts_new += 1
            new = True
    return new
