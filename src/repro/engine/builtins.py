"""Builtin evaluation: arithmetic ``is``, comparisons and ``=``.

The paper's path example uses ``L is L0 + 1``; deductive-database
practice adds the comparisons.  Builtins are *evaluation devices*: they
are solved when reached, against the current substitution, and require
their inputs to be sufficiently instantiated (``is`` needs a ground
right-hand side; comparisons need both sides ground), raising
:class:`~repro.core.errors.BuiltinError` otherwise — the standard
"insufficiently instantiated" behaviour of Prolog systems.
"""

from __future__ import annotations

from typing import Optional

from repro.core.errors import BuiltinError
from repro.fol.atoms import FBuiltin
from repro.fol.subst import Substitution
from repro.fol.terms import FApp, FConst, FTerm, FVar
from repro.fol.unify import unify

__all__ = ["eval_arith", "solve_builtin", "builtin_is_ready"]

_ARITH = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "//": lambda a, b: _int_div(a, b),
    "mod": lambda a, b: _int_mod(a, b),
}

_COMPARE = {
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "=<": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
    "=:=": lambda a, b: a == b,
    "=\\=": lambda a, b: a != b,
}


def _int_div(a: int, b: int) -> int:
    if b == 0:
        raise BuiltinError("integer division by zero")
    return a // b


def _int_mod(a: int, b: int) -> int:
    if b == 0:
        raise BuiltinError("mod by zero")
    return a % b


def eval_arith(term: FTerm) -> int:
    """Evaluate a ground arithmetic expression to an integer."""
    if isinstance(term, FConst):
        if isinstance(term.value, int):
            return term.value
        raise BuiltinError(f"non-numeric constant {term.value!r} in arithmetic")
    if isinstance(term, FVar):
        raise BuiltinError(f"unbound variable {term.name} in arithmetic")
    if isinstance(term, FApp):
        op = _ARITH.get(term.functor)
        if op is None or len(term.args) != 2:
            raise BuiltinError(f"unknown arithmetic functor {term.functor}/{len(term.args)}")
        return op(eval_arith(term.args[0]), eval_arith(term.args[1]))
    raise BuiltinError(f"not an arithmetic term: {term!r}")


def builtin_is_ready(builtin: FBuiltin, subst: Substitution) -> bool:
    """True iff the builtin can be evaluated under ``subst`` without an
    instantiation error (used by engines that may reorder goals)."""
    lhs, rhs = (subst.apply(arg) for arg in builtin.args)
    if builtin.op == "=":
        return True
    if builtin.op == "is":
        return _ground_arith(rhs)
    return _ground_arith(lhs) and _ground_arith(rhs)


def _ground_arith(term: FTerm) -> bool:
    if isinstance(term, FVar):
        return False
    if isinstance(term, FConst):
        return isinstance(term.value, int)
    return all(_ground_arith(arg) for arg in term.args)


def solve_builtin(builtin: FBuiltin, subst: Substitution) -> Optional[Substitution]:
    """Solve a builtin under a substitution.

    Returns the (possibly extended) substitution on success, ``None`` on
    failure, and raises :class:`BuiltinError` when the arguments are
    insufficiently instantiated.
    """
    lhs, rhs = (subst.apply(arg) for arg in builtin.args)
    if builtin.op == "=":
        return unify(lhs, rhs, subst)
    if builtin.op == "is":
        value = FConst(eval_arith(rhs))
        return unify(lhs, value, subst)
    compare = _COMPARE.get(builtin.op)
    if compare is None:
        raise BuiltinError(f"unknown builtin {builtin.op!r}")  # pragma: no cover
    if compare(eval_arith(lhs), eval_arith(rhs)):
        return subst
    return None
