"""Tabled top-down evaluation (answer memoization with fixpoint).

Plain SLD loops on recursive programs like the translated path example
(``path`` calls ``path``).  Tabling — the OLDT/SLG family pioneered at
Stony Brook, where this paper was written — memoizes subgoals and their
answers.  This implementation uses the simple *answer-iteration*
scheme:

* every call is canonicalized (variables renamed by first occurrence)
  into a table key;
* a call whose key is already being produced consumes the answers
  currently in its table instead of re-entering the clause resolution
  (this cuts the loops);
* the top-level query is re-run until no table gained an answer — a
  fixpoint, after which the collected answers are complete for programs
  with finite minimal models.

Not the fastest tabling discipline (answers are re-joined per
iteration), but terminating, complete, and easy to audit; the engine-
agreement tests check it against bottom-up and the direct engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Union

from repro.core.errors import BudgetExceeded, ResourceExhausted
from repro.fol.atoms import (
    FAtom,
    FBodyAtom,
    FBuiltin,
    FOLProgram,
    HornClause,
    atom_variables,
    rename_clause,
    substitute_fatom,
)
from repro.fol.subst import Substitution
from repro.fol.terms import FApp, FConst, FTerm, FVar
from repro.fol.unify import unify_atoms
from repro.engine.builtins import solve_builtin
from repro.engine.clauseindex import ClauseIndex

__all__ = ["TabledEngine", "TablingStats", "canonical_atom"]


@dataclass
class TablingStats:
    iterations: int = 0
    tables: int = 0
    answers: int = 0
    consumed: int = 0


def canonical_atom(atom: FAtom) -> FAtom:
    """Rename variables to ``V0, V1, ...`` by first occurrence, so two
    variant atoms share one table."""
    mapping: dict[str, FVar] = {}

    def rename(term: FTerm) -> FTerm:
        if isinstance(term, FVar):
            fresh = mapping.get(term.name)
            if fresh is None:
                fresh = FVar(f"V{len(mapping)}")
                mapping[term.name] = fresh
            return fresh
        if isinstance(term, FConst):
            return term
        return FApp(term.functor, tuple(rename(arg) for arg in term.args))

    return FAtom(atom.pred, tuple(rename(arg) for arg in atom.args))


class TabledEngine:
    """A tabled prover over a fixed program."""

    def __init__(self, program: Union[FOLProgram, Iterable[HornClause]]) -> None:
        clauses = program.clauses if isinstance(program, FOLProgram) else tuple(program)
        # First-argument clause indexing, shared with the SLD engine: a
        # ground-enough call resolves only against clauses whose head
        # can possibly unify.
        self._index = ClauseIndex(clauses)
        self._table: dict[FAtom, set[FAtom]] = {}
        self._active: set[FAtom] = set()
        self._produced: set[FAtom] = set()
        self._changed = False
        self._rename_counter = 0
        self._governor = None
        self.stats = TablingStats()

    def solve(
        self,
        goals: Sequence[FBodyAtom],
        max_iterations: int = 10_000,
        tracer=None,
        governor=None,
    ):
        """All answers to the goal list, restricted to its variables.

        With a ``tracer`` (:class:`repro.obs.Tracer`), each pass of the
        answer-iteration fixpoint is one ``tabling.iteration`` span
        carrying the table/answer counters.

        A ``governor`` ticks once per resolution step; a tripped
        non-strict limit degrades to a
        :class:`repro.runtime.PartialResult` carrying the answers of the
        last *completed* iteration (each iteration's answer set is sound
        — tables only ever contain derivable facts — so the partial
        answers are true, just possibly not all of them).
        """
        variables: set[str] = set()
        for goal in goals:
            variables |= atom_variables(goal)
        self._governor = governor
        if governor is not None:
            governor.start()
        collected: set[Substitution] = set()
        try:
            for _ in range(max_iterations):
                self.stats.iterations += 1
                iter_span = (
                    tracer.start("tabling.iteration", iteration=self.stats.iterations)
                    if tracer is not None
                    else None
                )
                consumed_before = self.stats.consumed
                self._changed = False
                self._produced.clear()
                answers: set[Substitution] = set()
                for subst in self._solve_goals(list(goals), Substitution.empty()):
                    answers.add(subst.restrict(variables))
                collected = answers
                if iter_span is not None:
                    iter_span.count("tables", len(self._table))
                    iter_span.count(
                        "table_answers", sum(len(v) for v in self._table.values())
                    )
                    iter_span.count("consumed", self.stats.consumed - consumed_before)
                    iter_span.set("changed", self._changed)
                    tracer.finish(iter_span)
                if not self._changed:
                    self.stats.tables = len(self._table)
                    self.stats.answers = sum(len(v) for v in self._table.values())
                    return sorted(answers, key=repr)
            raise BudgetExceeded(
                f"tabling did not reach a fixpoint within {max_iterations} iterations"
            )
        except (ResourceExhausted, RecursionError) as exc:
            from repro.runtime.governor import as_resource_error, degrade

            exc = as_resource_error(exc)
            self.stats.tables = len(self._table)
            self.stats.answers = sum(len(v) for v in self._table.values())
            return degrade(governor, exc, sorted(collected, key=repr))
        finally:
            self._governor = None

    def has_answer(self, goals: Sequence[FBodyAtom]) -> bool:
        return bool(self.solve(goals))

    # ------------------------------------------------------------------

    def _fresh_suffix(self) -> str:
        self._rename_counter += 1
        return f"_t{self._rename_counter}"

    def _solve_goals(
        self, goals: list[FBodyAtom], subst: Substitution
    ) -> Iterator[Substitution]:
        if not goals:
            yield subst
            return
        if self._governor is not None:
            self._governor.tick()
        goal, rest = goals[0], goals[1:]
        if isinstance(goal, FBuiltin):
            solved = solve_builtin(goal, subst)
            if solved is not None:
                yield from self._solve_goals(rest, solved)
            return
        pattern = substitute_fatom(goal, subst)
        assert isinstance(pattern, FAtom)
        for answer in self._answers_for(pattern):
            # Standardize the stored answer apart before unifying.
            suffix = self._fresh_suffix()
            renamed = substitute_fatom(
                answer, {name: FVar(name + suffix) for name in atom_variables(answer)}
            )
            assert isinstance(renamed, FAtom)
            self.stats.consumed += 1
            unifier = unify_atoms(pattern, renamed, subst)
            if unifier is not None:
                yield from self._solve_goals(rest, unifier)

    def _answers_for(self, pattern: FAtom) -> list[FAtom]:
        key = canonical_atom(pattern)
        entry = self._table.get(key)
        if entry is None:
            entry = set()
            self._table[key] = entry
        if key in self._active or key in self._produced:
            # A recursive variant call, or a table already produced this
            # iteration: consume the current answers only.  Answers it
            # may still be missing are picked up by the next outer
            # iteration (the fixpoint loop re-runs until no table grows).
            return list(entry)
        self._active.add(key)
        self._produced.add(key)
        try:
            suffix = self._fresh_suffix()
            fresh_goal = substitute_fatom(
                key, {name: FVar(name + suffix) for name in atom_variables(key)}
            )
            assert isinstance(fresh_goal, FAtom)
            for clause in self._index.candidates(fresh_goal):
                if self._governor is not None:
                    self._governor.tick()
                renamed = rename_clause(clause, self._fresh_suffix())
                unifier = unify_atoms(fresh_goal, renamed.head, None)
                if unifier is None:
                    continue
                for subst in self._solve_goals(list(renamed.body), unifier):
                    answer_atom = substitute_fatom(fresh_goal, subst)
                    assert isinstance(answer_atom, FAtom)
                    canonical = canonical_atom(answer_atom)
                    if canonical not in entry:
                        entry.add(canonical)
                        self._changed = True
        finally:
            self._active.discard(key)
        return list(entry)
