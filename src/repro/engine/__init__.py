"""Deduction engines: naive/semi-naive bottom-up, SLD, tabled SLD over
the first-order translation, and the direct C-logic engine (Section 4)."""

from repro.engine.bottomup import (
    EvaluationStats,
    answer_query_bottomup,
    naive_fixpoint,
    normalize_clauses,
)
from repro.engine.builtins import builtin_is_ready, eval_arith, solve_builtin
from repro.engine.clauseindex import ClauseIndex
from repro.engine.cunify import apply_binding, strip_identity, unify_identities
from repro.engine.direct import Answer, DirectEngine, DirectStats
from repro.engine.explain import Derivation, Explainer, format_derivation
from repro.engine.factbase import FactBase, FactView, principal_functor
from repro.engine.join import (
    JoinPlan,
    check_range_restricted,
    compile_body,
    join_body,
    plan_order,
)
from repro.engine.negation import (
    NegClause,
    StratificationError,
    stratified_fixpoint,
    stratify,
)
from repro.engine.seminaive import seminaive_fixpoint
from repro.engine.tabling import TabledEngine, TablingStats, canonical_atom
from repro.engine.topdown import SLDEngine, SLDStats, solve_iterative_deepening

__all__ = [
    "Answer",
    "ClauseIndex",
    "Derivation",
    "DirectEngine",
    "DirectStats",
    "Explainer",
    "format_derivation",
    "EvaluationStats",
    "FactBase",
    "FactView",
    "JoinPlan",
    "NegClause",
    "SLDEngine",
    "StratificationError",
    "SLDStats",
    "TabledEngine",
    "TablingStats",
    "answer_query_bottomup",
    "apply_binding",
    "builtin_is_ready",
    "canonical_atom",
    "check_range_restricted",
    "compile_body",
    "eval_arith",
    "join_body",
    "plan_order",
    "naive_fixpoint",
    "normalize_clauses",
    "principal_functor",
    "seminaive_fixpoint",
    "solve_builtin",
    "solve_iterative_deepening",
    "stratified_fixpoint",
    "stratify",
    "strip_identity",
    "unify_identities",
]
