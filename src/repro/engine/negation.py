"""Stratified negation — the extension Section 4 points to.

"(Negation can also be added although we do not include it in this
paper.)"  This module adds it the standard deductive-database way:

* clause bodies may contain *negative* atoms (``\\+ A`` in the concrete
  syntax, :class:`NegAtom` in the AST);
* a program is *stratifiable* when its predicate dependency graph has
  no cycle through a negative edge; :func:`stratify` computes the
  strata or raises :class:`StratificationError`;
* :func:`stratified_fixpoint` evaluates stratum by stratum with
  negation-as-failure against the lower strata (the perfect model).

Negative atoms must be *safe*: every variable in a negative atom must
occur in a positive body atom of the same clause.

The implementation works on the first-order side (where the dependency
graph is crisp); C-logic programs with negation are translated first —
type predicates and labels participate in stratification like any other
predicate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Union

from repro.core.errors import (
    BudgetExceeded,
    EngineError,
    ResourceExhausted,
    SafetyError,
)
from repro.fol.atoms import (
    FAtom,
    FBuiltin,
    FOLProgram,
    GeneralizedClause,
    HornClause,
    NegAtom,
    atom_variables,
    substitute_fatom,
)
from repro.engine.bottomup import EvaluationStats
from repro.engine.factbase import FactBase
from repro.engine.join import compile_body

__all__ = [
    "NegAtom",
    "NegClause",
    "StratificationError",
    "stratify",
    "stratified_fixpoint",
]


class StratificationError(EngineError):
    """The program has a cycle through negation: no stratification."""


NegBodyAtom = Union[FAtom, FBuiltin, NegAtom]


@dataclass(frozen=True, slots=True)
class NegClause:
    """A definite clause whose body may contain negative atoms."""

    heads: tuple[FAtom, ...]
    body: tuple[NegBodyAtom, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "heads", tuple(self.heads))
        object.__setattr__(self, "body", tuple(self.body))
        if not self.heads:
            raise EngineError("a clause requires at least one head atom")
        self._check_safety()

    def _check_safety(self) -> None:
        positive_vars: set[str] = set()
        for atom in self.body:
            if isinstance(atom, FAtom):
                positive_vars |= atom_variables(atom)
        for atom in self.body:
            if isinstance(atom, NegAtom):
                unsafe = atom_variables(atom.atom) - positive_vars
                if unsafe:
                    raise SafetyError(
                        f"variables {sorted(unsafe)} of negative atom "
                        f"{atom.atom.pred}/{atom.atom.arity} do not occur in a "
                        "positive body atom"
                    )
        head_vars: set[str] = set()
        for head in self.heads:
            head_vars |= atom_variables(head)
        bound = set(positive_vars)
        for atom in self.body:
            if isinstance(atom, FBuiltin) and atom.op in ("is", "="):
                from repro.fol.terms import fterm_variables

                bound |= fterm_variables(atom.args[0])
                if atom.op == "=":
                    bound |= fterm_variables(atom.args[1])
        unsafe = head_vars - bound
        if unsafe and self.body:
            raise SafetyError(f"head variables {sorted(unsafe)} are unbound")
        if unsafe and not self.body:
            raise SafetyError(f"fact with variables {sorted(unsafe)}")


ClauseLike = Union[HornClause, GeneralizedClause, NegClause]


def _to_neg_clauses(clauses: Union[FOLProgram, Iterable[ClauseLike]]) -> list[NegClause]:
    if isinstance(clauses, FOLProgram):
        source: Iterable[ClauseLike] = clauses.clauses
    else:
        source = clauses
    out: list[NegClause] = []
    for clause in source:
        if isinstance(clause, NegClause):
            out.append(clause)
        elif isinstance(clause, HornClause):
            out.append(NegClause((clause.head,), clause.body))
        elif isinstance(clause, GeneralizedClause):
            out.append(NegClause(clause.heads, clause.body))
        else:
            raise EngineError(f"not a clause: {clause!r}")
    return out


def stratify(clauses: Union[FOLProgram, Iterable[ClauseLike]]) -> list[list[NegClause]]:
    """Partition the clauses into strata.

    Stratum numbers are the least solution of: a head predicate is at
    least the stratum of every positive body predicate, and *strictly
    above* the stratum of every negated body predicate.  A cycle through
    negation makes the numbers diverge and raises
    :class:`StratificationError`.
    """
    neg_clauses = _to_neg_clauses(clauses)
    # `object/1` is the active domain of the source C-logic program: it
    # accumulates monotonically (every type axiom feeds it), so it is
    # pinned at stratum 0 and negating it is rejected — mirroring the
    # direct engine's policy.
    domain_signature = ("object", 1)
    predicates: set[tuple[str, int]] = set()
    for clause in neg_clauses:
        for head in clause.heads:
            predicates.add(head.signature)
        for atom in clause.body:
            if isinstance(atom, NegAtom) and atom.signature == domain_signature:
                raise StratificationError(
                    "negating object/1 (the active domain) is not supported"
                )
            if isinstance(atom, (FAtom, NegAtom)):
                predicates.add(atom.signature)
    predicates.discard(domain_signature)
    stratum = {pred: 0 for pred in predicates}
    # Bellman-Ford style relaxation; > |P| iterations means divergence.
    def level_of(signature: tuple[str, int]) -> int:
        return stratum.get(signature, 0)

    for iteration in range(len(predicates) + 1):
        changed = False
        for clause in neg_clauses:
            for head in clause.heads:
                if head.signature == domain_signature:
                    continue
                required = 0
                for atom in clause.body:
                    if isinstance(atom, NegAtom):
                        required = max(required, level_of(atom.signature) + 1)
                    elif isinstance(atom, FAtom):
                        required = max(required, level_of(atom.signature))
                if stratum[head.signature] < required:
                    stratum[head.signature] = required
                    changed = True
        if not changed:
            break
    else:
        raise StratificationError(
            "the program is not stratifiable (a recursive cycle passes "
            "through negation)"
        )
    height = max(stratum.values(), default=0) + 1
    strata: list[list[NegClause]] = [[] for _ in range(height)]
    for clause in neg_clauses:
        level = max(level_of(head.signature) for head in clause.heads)
        strata[level].append(clause)
    return [level_clauses for level_clauses in strata]


def stratified_fixpoint(
    clauses: Union[FOLProgram, Iterable[ClauseLike]],
    max_rounds: int = 10_000,
    stats: EvaluationStats | None = None,
    tracer=None,
    report=None,
    governor=None,
):
    """The perfect model of a stratified program.

    Strata are evaluated bottom-up in order; a negative atom is checked
    by absence from the facts derived so far, which is sound because the
    negated predicate's definition is complete in lower strata.

    ``tracer``/``report`` are the :mod:`repro.obs` hooks: one span per
    stratum (with round spans nested inside) and a per-rule EXPLAIN
    account.  This engine joins in textual order, so the report carries
    no join-order plans.

    A ``governor`` ticks per body evaluation across every stratum (the
    deadline/budget covers the whole perfect-model computation).  On a
    non-strict limit trip the run degrades to a
    :class:`repro.runtime.PartialResult` — note the partial facts of the
    *interrupted* stratum are only sound with respect to the completed
    lower strata; the ``incomplete`` marker is what tells callers not to
    trust negative conclusions drawn from them.
    """
    stats = stats if stats is not None else EvaluationStats()
    facts = FactBase()
    if report is not None:
        report.engine = report.engine or "stratified"
        facts.observe(report.index)
    if governor is not None:
        governor.start()
    try:
        for level, level_clauses in enumerate(stratify(clauses)):
            stratum_span = (
                tracer.start("stratified.stratum", stratum=level, clauses=len(level_clauses))
                if tracer is not None
                else None
            )
            _saturate_stratum(level_clauses, facts, max_rounds, stats, tracer, report, governor)
            if stratum_span is not None:
                tracer.finish(stratum_span)
    except (ResourceExhausted, RecursionError) as exc:
        from repro.runtime.governor import as_resource_error, degrade

        exc = as_resource_error(exc)
        if report is not None:
            report.rounds = stats.rounds
            report.facts_total = len(facts)
            facts.observe(None)
        return degrade(governor, exc, facts, report)
    if report is not None:
        report.rounds = stats.rounds
        report.facts_total = len(facts)
        facts.observe(None)
    return facts


def _saturate_stratum(
    clauses: list[NegClause],
    facts: FactBase,
    max_rounds: int,
    stats: EvaluationStats,
    tracer=None,
    report=None,
    governor=None,
) -> None:
    for clause in clauses:
        if not clause.body:
            for head in clause.heads:
                stats.facts_derived += 1
                if facts.add(head):
                    stats.facts_new += 1
    rules = [clause for clause in clauses if clause.body]
    plans = [compile_body(clause.body) for clause in rules]
    rule_slots = None
    if report is not None:
        from repro.fol.pretty import pretty_fatom

        rule_slots = [
            report.rule(
                id(clause),
                " & ".join(pretty_fatom(h) for h in clause.heads)
                + " :- "
                + ", ".join(
                    ("\\+ " + pretty_fatom(a.atom))
                    if isinstance(a, NegAtom)
                    else pretty_fatom(a)
                    for a in clause.body
                )
                + ".",
            )
            for clause in rules
        ]
    for _ in range(max_rounds):
        stats.rounds += 1
        facts.next_round()
        round_span = (
            tracer.start("stratified.round", round=stats.rounds)
            if tracer is not None
            else None
        )
        changed = False
        for rule_index, clause in enumerate(rules):
            row = None
            if rule_slots is not None:
                row = rule_slots[rule_index].round(stats.rounds)
                index_before = report.index.snapshot()
                derived_before, new_before = stats.facts_derived, stats.facts_new
            # Textual order (reorder=False): sound for safe stratified
            # rules and keeps the paper's reading of the bodies; the
            # compiled executor still serves candidates from the
            # adaptive indexes.
            for subst in plans[rule_index].run(facts, reorder=False):
                if governor is not None:
                    governor.tick()
                stats.body_evaluations += 1
                if row is not None:
                    row.instantiations += 1
                for head in clause.heads:
                    derived = substitute_fatom(head, subst)
                    assert isinstance(derived, FAtom)
                    stats.facts_derived += 1
                    if facts.add(derived):
                        stats.facts_new += 1
                        changed = True
            if row is not None:
                row.facts_derived += stats.facts_derived - derived_before
                row.facts_new += stats.facts_new - new_before
                report.index.add_since(index_before, rule_slots[rule_index].index)
        if governor is not None:
            governor.tick()
            governor.check_facts(len(facts))
        if round_span is not None:
            round_span.set("changed", changed)
            tracer.finish(round_span)
        if not changed:
            return
    raise BudgetExceeded(f"no fixpoint within {max_rounds} rounds")
