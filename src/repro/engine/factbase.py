"""Indexed storage for ground first-order facts.

The bottom-up engines derive sets of ground atoms; :class:`FactBase`
stores them with two levels of indexing:

* by predicate signature ``(name, arity)``;
* within a predicate, by the *principal functor* of the first argument
  (constant value, functor name, or wildcard), the classic first-
  argument indexing of Prolog systems.

Facts are also stamped with the *round* in which they were derived,
which is what semi-naive evaluation's delta joins need.

For observability, :meth:`FactBase.observe` attaches a
:class:`repro.obs.report.IndexStats`; every :meth:`candidates` fetch
then records whether the first-argument index was usable and how many
candidates it returned — the EXPLAIN report's index-hit numbers.  With
no observer attached the cost is one ``None`` check per fetch.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.core.errors import StoreError
from repro.fol.atoms import FAtom, atom_is_ground
from repro.fol.terms import FApp, FConst, FTerm

__all__ = ["FactBase", "principal_functor"]


def principal_functor(term: FTerm) -> Optional[tuple]:
    """The index key of a term: ``("c", value)`` for constants,
    ``("f", functor, arity)`` for applications, ``None`` for variables
    (matches anything)."""
    if isinstance(term, FConst):
        return ("c", type(term.value).__name__, term.value)
    if isinstance(term, FApp):
        return ("f", term.functor, len(term.args))
    return None


class FactBase:
    """A set of ground atoms with predicate and first-argument indexes."""

    __slots__ = ("_atoms", "_by_pred", "_by_first", "_stamps", "_round", "_obs")

    def __init__(self, atoms: Iterable[FAtom] = ()) -> None:
        self._atoms: set[FAtom] = set()
        self._by_pred: dict[tuple[str, int], list[FAtom]] = {}
        self._by_first: dict[tuple, list[FAtom]] = {}
        self._stamps: dict[FAtom, int] = {}
        self._round = 0
        self._obs = None
        for atom in atoms:
            self.add(atom)

    def observe(self, stats) -> None:
        """Attach (or with ``None``, detach) an
        :class:`~repro.obs.report.IndexStats` that every candidate fetch
        updates."""
        self._obs = stats

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, atom: FAtom) -> bool:
        """Insert a ground atom; returns True iff it was new."""
        if not atom_is_ground(atom):
            raise StoreError(f"fact bases hold ground atoms only, got {atom!r}")
        if atom in self._atoms:
            return False
        self._atoms.add(atom)
        self._stamps[atom] = self._round
        self._by_pred.setdefault(atom.signature, []).append(atom)
        key = principal_functor(atom.args[0])
        self._by_first.setdefault((atom.signature, key), []).append(atom)
        return True

    def add_all(self, atoms: Iterable[FAtom]) -> int:
        """Insert many atoms; returns how many were new."""
        return sum(1 for atom in atoms if self.add(atom))

    def next_round(self) -> int:
        """Advance the derivation round counter (semi-naive bookkeeping)."""
        self._round += 1
        return self._round

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __contains__(self, atom: FAtom) -> bool:
        return atom in self._atoms

    def __len__(self) -> int:
        return len(self._atoms)

    def __iter__(self) -> Iterator[FAtom]:
        return iter(self._atoms)

    @property
    def round(self) -> int:
        return self._round

    def stamp(self, atom: FAtom) -> int:
        """The round in which ``atom`` was first derived."""
        return self._stamps[atom]

    def predicates(self) -> set[tuple[str, int]]:
        return set(self._by_pred)

    def count(self, signature: tuple[str, int]) -> int:
        return len(self._by_pred.get(signature, ()))

    def candidates(self, pattern: FAtom) -> list[FAtom]:
        """Facts that could match ``pattern``, narrowed by the indexes.

        With a non-variable first argument the first-argument index is
        used; otherwise all facts of the predicate are returned.
        """
        signature = pattern.signature
        key = principal_functor(pattern.args[0])
        if key is None:
            result = list(self._by_pred.get(signature, ()))
            if self._obs is not None:
                self._obs.lookups += 1
                self._obs.scans += 1
                self._obs.candidates_returned += len(result)
            return result
        # Copied so callers may iterate while new facts are derived into
        # the base (the bottom-up engines do exactly that).
        result = list(self._by_first.get((signature, key), ()))
        if self._obs is not None:
            self._obs.lookups += 1
            self._obs.indexed += 1
            self._obs.candidates_returned += len(result)
        return result

    def candidate_count(self, pattern: FAtom) -> int:
        """Number of candidates for ``pattern`` without copying the
        index list (the join planner's selectivity probe)."""
        signature = pattern.signature
        key = principal_functor(pattern.args[0])
        if key is None:
            return len(self._by_pred.get(signature, ()))
        return len(self._by_first.get((signature, key), ()))

    def candidates_since(self, pattern: FAtom, since_round: int) -> list[FAtom]:
        """Candidates first derived at or after ``since_round`` (the
        delta restriction of semi-naive evaluation)."""
        return [a for a in self.candidates(pattern) if self._stamps[a] >= since_round]

    def candidates_before(self, pattern: FAtom, before_round: int) -> list[FAtom]:
        """Candidates first derived strictly before ``before_round``
        (the 'old facts' side of the semi-naive partition)."""
        return [a for a in self.candidates(pattern) if self._stamps[a] < before_round]

    def by_predicate(self, signature: tuple[str, int]) -> list[FAtom]:
        return list(self._by_pred.get(signature, ()))

    def snapshot(self) -> frozenset[FAtom]:
        return frozenset(self._atoms)
