"""Indexed storage for ground first-order facts.

The bottom-up engines derive sets of ground atoms; :class:`FactBase`
stores them with three levels of structure:

* by predicate signature ``(name, arity)``;
* within a predicate, by *adaptive multi-argument indexes*: when
  :meth:`candidates` sees a pattern whose set of bound argument
  positions has no index yet, that index is built once (one scan of the
  predicate's facts, keyed on the principal functors of those
  positions) and maintained incrementally for the rest of the run.
  Classic Prolog first-argument indexing is the special case
  ``positions == (0,)``; patterns that bind other argument subsets —
  which translated C-logic bodies produce constantly once bindings
  flow — get their own, equally selective index on demand;
* in *round segments*: facts of a predicate are appended in derivation
  order, and the offsets where each round begins are recorded, so the
  delta/old partitions of semi-naive evaluation
  (:meth:`candidates_since` / :meth:`candidates_before`) are O(|answer|)
  slices instead of a stamp-filter over every candidate.

Fetches return immutable :class:`FactView` windows over the append-only
segment lists — no per-call copying — and stay stable while new facts
are derived into the base (the bottom-up engines iterate candidates
exactly that way).

For observability, :meth:`FactBase.observe` attaches a
:class:`repro.obs.report.IndexStats`; every :meth:`candidates` fetch
then records which index answered and how many candidates it returned,
and partition probes (:meth:`candidates_since`/:meth:`candidates_before`)
are counted separately so EXPLAIN's index-hit rates describe real
lookups only.  With no observer attached the cost is one ``None`` check
per fetch.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Iterator, Optional, Sequence

from repro.core.errors import StoreError
from repro.fol.atoms import FAtom, atom_is_ground
from repro.fol.terms import FApp, FConst, FTerm
from repro.runtime.faults import fault_point, register_fault_point

__all__ = ["FactBase", "FactView", "principal_functor"]

_FP_REMOVE_BATCH = register_fault_point("factbase.remove_batch")


def principal_functor(term: FTerm) -> Optional[tuple]:
    """The index key of a term: ``("c", value)`` for constants,
    ``("f", functor, arity)`` for applications, ``None`` for variables
    (matches anything)."""
    if isinstance(term, FConst):
        return ("c", type(term.value).__name__, term.value)
    if isinstance(term, FApp):
        return ("f", term.functor, len(term.args))
    return None


class FactView(Sequence):
    """An immutable window ``rows[start:stop]`` over an append-only list.

    Fetches hand these out instead of copying: the window is fixed at
    fetch time, so callers may keep deriving new facts into the base
    while iterating (appends land beyond ``stop``).
    """

    __slots__ = ("_rows", "_start", "_stop")

    def __init__(self, rows: Sequence[FAtom], start: int, stop: int) -> None:
        self._rows = rows
        self._start = start
        self._stop = stop

    def __len__(self) -> int:
        return self._stop - self._start

    def __iter__(self) -> Iterator[FAtom]:
        rows = self._rows
        for index in range(self._start, self._stop):
            yield rows[index]

    def __getitem__(self, index):
        if isinstance(index, slice):
            return list(self)[index]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        return self._rows[self._start + index]

    def raw(self) -> tuple[Sequence[FAtom], int, int]:
        """``(rows, start, stop)`` — the join executor's fast path, so
        its inner loop indexes the underlying list directly."""
        return self._rows, self._start, self._stop

    def __repr__(self) -> str:
        return f"FactView({list(self)!r})"


_EMPTY_VIEW = FactView((), 0, 0)


class _PredStore:
    """One predicate's facts: round-segmented rows + adaptive indexes."""

    __slots__ = ("rows", "seg_rounds", "seg_starts", "indexes")

    def __init__(self) -> None:
        #: Facts in derivation order (append-only).
        self.rows: list[FAtom] = []
        #: Parallel arrays: round number -> offset in ``rows`` where that
        #: round's facts begin.  Rounds with no additions have no entry.
        self.seg_rounds: list[int] = []
        self.seg_starts: list[int] = []
        #: positions tuple -> (key tuple -> bucket of facts).
        self.indexes: dict[tuple[int, ...], dict[tuple, list[FAtom]]] = {}

    def add(self, atom: FAtom, round_number: int) -> None:
        if not self.seg_rounds or self.seg_rounds[-1] != round_number:
            self.seg_rounds.append(round_number)
            self.seg_starts.append(len(self.rows))
        self.rows.append(atom)
        for positions, index in self.indexes.items():
            key = tuple(principal_functor(atom.args[p]) for p in positions)
            bucket = index.get(key)
            if bucket is None:
                index[key] = [atom]
            else:
                bucket.append(atom)

    def build_index(self, positions: tuple[int, ...]) -> dict[tuple, list[FAtom]]:
        index: dict[tuple, list[FAtom]] = {}
        for atom in self.rows:
            key = tuple(principal_functor(atom.args[p]) for p in positions)
            bucket = index.get(key)
            if bucket is None:
                index[key] = [atom]
            else:
                bucket.append(atom)
        self.indexes[positions] = index
        return index

    def start_of_round(self, round_number: int) -> int:
        """Offset in ``rows`` of the first fact stamped >= round_number."""
        cut = bisect_left(self.seg_rounds, round_number)
        if cut == len(self.seg_rounds):
            return len(self.rows)
        return self.seg_starts[cut]

    def remove(self, atom: FAtom) -> None:
        """Delete one fact: O(predicate size) — row shift plus a
        decrement of every later segment offset and an index-bucket
        removal per built index.  Callers must not remove while a join
        holds :class:`FactView` windows over this predicate."""
        position = self.rows.index(atom)
        del self.rows[position]
        starts = self.seg_starts
        for cut in range(len(starts)):
            if starts[cut] > position:
                starts[cut] -= 1
        for positions, index in self.indexes.items():
            key = tuple(principal_functor(atom.args[p]) for p in positions)
            bucket = index.get(key)
            if bucket is not None:
                bucket.remove(atom)
                if not bucket:
                    del index[key]

    def remove_batch(self, doomed: set[FAtom]) -> None:
        """Delete many facts in one pass over the predicate: the rows
        and round segments are rebuilt keeping only survivors (segments
        left empty disappear), and every index bucket is filtered."""
        new_rows: list[FAtom] = []
        new_rounds: list[int] = []
        new_starts: list[int] = []
        bounds = self.seg_starts + [len(self.rows)]
        for segment, round_number in enumerate(self.seg_rounds):
            start = len(new_rows)
            for cursor in range(bounds[segment], bounds[segment + 1]):
                atom = self.rows[cursor]
                if atom not in doomed:
                    new_rows.append(atom)
            if len(new_rows) > start:
                new_rounds.append(round_number)
                new_starts.append(start)
        self.rows = new_rows
        self.seg_rounds = new_rounds
        self.seg_starts = new_starts
        # Filter only the buckets the doomed atoms actually hash into —
        # O(deletions + affected buckets), not O(index size).
        for positions, index in self.indexes.items():
            dead_by_key: dict[tuple, set[FAtom]] = {}
            for atom in doomed:
                key = tuple(principal_functor(atom.args[p]) for p in positions)
                dead_by_key.setdefault(key, set()).add(atom)
            for key, dead in dead_by_key.items():
                bucket = index.get(key)
                if bucket is None:
                    continue
                kept = [atom for atom in bucket if atom not in dead]
                if not kept:
                    del index[key]
                elif len(kept) != len(bucket):
                    index[key] = kept


def _bound_positions(pattern: FAtom) -> tuple[tuple[int, ...], tuple]:
    """The pattern's indexable argument positions and their keys."""
    positions: list[int] = []
    keys: list[tuple] = []
    for position, arg in enumerate(pattern.args):
        key = principal_functor(arg)
        if key is not None:
            positions.append(position)
            keys.append(key)
    return tuple(positions), tuple(keys)


class FactBase:
    """A set of ground atoms with predicate and adaptive argument indexes."""

    __slots__ = ("_atoms", "_preds", "_stamps", "_round", "_obs")

    def __init__(self, atoms: Iterable[FAtom] = ()) -> None:
        self._atoms: set[FAtom] = set()
        self._preds: dict[tuple[str, int], _PredStore] = {}
        self._stamps: dict[FAtom, int] = {}
        self._round = 0
        self._obs = None
        for atom in atoms:
            self.add(atom)

    def observe(self, stats) -> None:
        """Attach (or with ``None``, detach) an
        :class:`~repro.obs.report.IndexStats` that every candidate fetch
        updates."""
        self._obs = stats

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, atom: FAtom) -> bool:
        """Insert a ground atom; returns True iff it was new."""
        if not atom_is_ground(atom):
            raise StoreError(f"fact bases hold ground atoms only, got {atom!r}")
        if atom in self._atoms:
            return False
        self._atoms.add(atom)
        self._stamps[atom] = self._round
        store = self._preds.get(atom.signature)
        if store is None:
            store = self._preds[atom.signature] = _PredStore()
        store.add(atom, self._round)
        return True

    def add_all(self, atoms: Iterable[FAtom]) -> int:
        """Insert many atoms; returns how many were new."""
        return sum(1 for atom in atoms if self.add(atom))

    def next_round(self) -> int:
        """Advance the derivation round counter (semi-naive bookkeeping)."""
        self._round += 1
        return self._round

    def remove(self, atom: FAtom) -> bool:
        """Delete a fact; returns True iff it was present.

        This is the retraction side of incremental maintenance
        (:mod:`repro.incremental`): the fact leaves the atom set, its
        stamp, its predicate's row list and segment offsets, and every
        adaptive index bucket.  Removal costs O(predicate size).  It
        must only be called *between* joins — live :class:`FactView`
        windows index the backing row list positionally and would be
        shifted by a removal.
        """
        if atom not in self._atoms:
            return False
        self._atoms.discard(atom)
        del self._stamps[atom]
        store = self._preds[atom.signature]
        store.remove(atom)
        if not store.rows:
            del self._preds[atom.signature]
        return True

    def remove_all(self, atoms: Iterable[FAtom]) -> int:
        """Delete many facts; returns how many were present.

        Batched: each affected predicate is rebuilt in one pass
        (O(predicate size + deletions) total), so retracting k facts
        does not pay k row scans — the path incremental maintenance
        takes when a deletion cascade lands."""
        doomed_by_pred: dict[tuple[str, int], set[FAtom]] = {}
        for atom in atoms:
            if atom in self._atoms:
                doomed_by_pred.setdefault(atom.signature, set()).add(atom)
        removed = 0
        for signature, doomed in doomed_by_pred.items():
            # Crash-tested: a fault here leaves earlier predicates
            # rebuilt and this one untouched — the partially-applied
            # state transaction rollback must recover from.
            fault_point(_FP_REMOVE_BATCH)
            store = self._preds[signature]
            store.remove_batch(doomed)
            if not store.rows:
                del self._preds[signature]
            for atom in doomed:
                self._atoms.discard(atom)
                del self._stamps[atom]
            removed += len(doomed)
        return removed

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __contains__(self, atom: FAtom) -> bool:
        return atom in self._atoms

    def __len__(self) -> int:
        return len(self._atoms)

    def __iter__(self) -> Iterator[FAtom]:
        return iter(self._atoms)

    @property
    def round(self) -> int:
        return self._round

    def stamp(self, atom: FAtom) -> int:
        """The round in which ``atom`` was first derived."""
        return self._stamps[atom]

    def predicates(self) -> set[tuple[str, int]]:
        return set(self._preds)

    def count(self, signature: tuple[str, int]) -> int:
        store = self._preds.get(signature)
        return len(store.rows) if store is not None else 0

    def index_names(self) -> list[str]:
        """The adaptive indexes built so far, as ``pred/arity[pos,...]``
        (argument positions 1-based, EXPLAIN's notation)."""
        return [
            _index_name(signature, positions)
            for signature, store in self._preds.items()
            for positions in store.indexes
        ]

    def candidates(self, pattern: FAtom) -> FactView:
        """Facts that could match ``pattern``, narrowed by the indexes.

        The index on exactly the pattern's bound argument positions is
        used, built on demand the first time that position subset is
        queried; a pattern with no bound positions gets the whole
        predicate.  Returns an immutable :class:`FactView` — no copy.
        """
        store = self._preds.get(pattern.signature)
        if store is None:
            return _EMPTY_VIEW
        positions, keys = _bound_positions(pattern)
        if not positions:
            result = FactView(store.rows, 0, len(store.rows))
            if self._obs is not None:
                self._obs.lookups += 1
                self._obs.scans += 1
                self._obs.candidates_returned += len(result)
            return result
        result = self._fetch_indexed(store, pattern.signature, positions, keys)
        if self._obs is not None:
            self._obs.lookups += 1
            self._obs.indexed += 1
            self._obs.candidates_returned += len(result)
            self._obs.record_index(
                _index_name(pattern.signature, positions), len(result)
            )
        return result

    def _fetch_indexed(
        self,
        store: _PredStore,
        pattern_signature: tuple[str, int],
        positions: tuple[int, ...],
        keys: tuple,
    ) -> FactView:
        """The bucket for ``keys`` under the index on ``positions``,
        building that index on first demand."""
        index = store.indexes.get(positions)
        if index is None:
            index = store.build_index(positions)
            if self._obs is not None:
                # Name the index at build time (not only when a
                # `candidates` fetch records a hit) so indexes built
                # during partition probes still appear in EXPLAIN —
                # with zero lookups, never as a division by zero.
                self._obs.record_index_built(
                    _index_name(pattern_signature, positions)
                )
        bucket = index.get(keys)
        if bucket is None:
            return _EMPTY_VIEW
        return FactView(bucket, 0, len(bucket))

    def candidate_count(self, pattern: FAtom) -> int:
        """Estimated number of candidates for ``pattern`` (the join
        planner's selectivity probe).

        Exact when an index on the pattern's bound positions already
        exists; otherwise the tightest upper bound any built index on a
        *subset* of those positions gives, falling back to the predicate
        count.  Probes never build indexes — only :meth:`candidates`
        (an actual fetch) does, so planning N atoms does not materialize
        N speculative indexes.
        """
        store = self._preds.get(pattern.signature)
        if store is None:
            return 0
        positions, keys = _bound_positions(pattern)
        if not positions:
            return len(store.rows)
        index = store.indexes.get(positions)
        if index is not None:
            bucket = index.get(keys)
            return len(bucket) if bucket is not None else 0
        best = len(store.rows)
        if store.indexes:
            by_position = dict(zip(positions, keys))
            for built_positions, built in store.indexes.items():
                if all(p in by_position for p in built_positions):
                    bucket = built.get(
                        tuple(by_position[p] for p in built_positions)
                    )
                    size = len(bucket) if bucket is not None else 0
                    if size < best:
                        best = size
        return best

    def candidates_since(self, pattern: FAtom, since_round: int) -> Sequence[FAtom]:
        """Candidates first derived at or after ``since_round`` (the
        delta restriction of semi-naive evaluation).

        Served from the round segments: the delta is the tail of the
        predicate's rows, O(|delta|) regardless of how many old facts
        exist.  Patterns with bound arguments filter that tail.
        """
        store = self._preds.get(pattern.signature)
        if store is None:
            return _EMPTY_VIEW
        start = store.start_of_round(since_round)
        rows = store.rows
        positions, keys = _bound_positions(pattern)
        if not positions:
            result: Sequence[FAtom] = FactView(rows, start, len(rows))
        else:
            result = [
                atom
                for atom in FactView(rows, start, len(rows))
                if tuple(principal_functor(atom.args[p]) for p in positions) == keys
            ]
        if self._obs is not None:
            self._obs.partition_probes += 1
            self._obs.partition_candidates += len(result)
        return result

    def candidates_before(self, pattern: FAtom, before_round: int) -> Sequence[FAtom]:
        """Candidates first derived strictly before ``before_round``
        (the 'old facts' side of the semi-naive partition).

        A pattern with no bound arguments is an O(1) prefix slice of the
        round segments; with bound arguments the adaptive index narrows
        first and the (usually few) survivors are stamp-checked.
        """
        store = self._preds.get(pattern.signature)
        if store is None:
            return _EMPTY_VIEW
        end = store.start_of_round(before_round)
        positions, keys = _bound_positions(pattern)
        if not positions:
            result: Sequence[FAtom] = FactView(store.rows, 0, end)
        else:
            stamps = self._stamps
            narrowed = self._fetch_indexed(store, pattern.signature, positions, keys)
            result = [atom for atom in narrowed if stamps[atom] < before_round]
        if self._obs is not None:
            self._obs.partition_probes += 1
            self._obs.partition_candidates += len(result)
        return result

    def by_predicate(self, signature: tuple[str, int]) -> list[FAtom]:
        store = self._preds.get(signature)
        return list(store.rows) if store is not None else []

    def snapshot(self) -> frozenset[FAtom]:
        return frozenset(self._atoms)


def _index_name(signature: tuple[str, int], positions: tuple[int, ...]) -> str:
    rendered = ",".join(str(p + 1) for p in positions)
    return f"{signature[0]}/{signature[1]}[{rendered}]"
