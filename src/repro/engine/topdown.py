"""Top-down SLD resolution (Section 4's "top-down methods").

An SLD prover over first-order definite clauses with clause renaming
(standardizing apart), the occurs check, builtin evaluation, a depth
bound, first-argument clause indexing, and two selection rules:

* ``"leftmost"`` (default) — Prolog's computation rule.  Running the
  translated query of Section 4's path example through it —

      :- path(X), object(S), src(X, S), object(D), dest(X, D).

  — enumerates the whole active domain through ``object/1`` before
  filtering with ``src``/``dest``, which is exactly why the paper calls
  direct SLD evaluation of the translation "very inefficient"
  (experiment E6 measures the gap against the direct engine).

* ``"smallest"`` — selects, at each step, a ready builtin if any,
  otherwise the goal with the fewest candidate clauses (after
  first-argument indexing).  For definite programs the selection rule
  does not affect the answer set (independence of the computation
  rule), so this is a legitimate optimization; it makes the heavily
  type-redundant translations tractable for testing while ``leftmost``
  preserves the paper's worst case.

Depth limiting plus :func:`solve_iterative_deepening` recovers
completeness for recursive programs at the usual cost;
:mod:`repro.engine.tabling` does it properly with memoization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Union

from repro.core.errors import (
    BudgetExceeded,
    BuiltinError,
    DepthExceeded,
    EngineError,
    ResourceExhausted,
)
from repro.fol.atoms import (
    FAtom,
    FBodyAtom,
    FBuiltin,
    FOLProgram,
    HornClause,
    atom_variables,
    rename_clause,
    substitute_fatom,
)
from repro.fol.subst import Substitution
from repro.fol.unify import unify_atoms
from repro.engine.builtins import builtin_is_ready, solve_builtin
from repro.engine.clauseindex import ClauseIndex

__all__ = ["SLDStats", "SLDEngine", "solve_iterative_deepening"]


@dataclass
class SLDStats:
    """Search-effort counters (resolution steps, unification attempts)."""

    resolutions: int = 0
    unifications: int = 0
    depth_cutoffs: int = 0


class SLDEngine:
    """An SLD prover over a fixed program."""

    def __init__(self, program: Union[FOLProgram, Iterable[HornClause]]) -> None:
        clauses = program.clauses if isinstance(program, FOLProgram) else tuple(program)
        self._clauses: list[HornClause] = list(clauses)
        self._index = ClauseIndex(self._clauses)
        self._rename_counter = 0

    def candidates(self, pattern: FAtom) -> Sequence[HornClause]:
        """Candidate clauses for a goal, narrowed by the first-argument
        clause index (see :class:`~repro.engine.clauseindex.ClauseIndex`);
        kept in program order."""
        return self._index.candidates(pattern)

    def solve(
        self,
        goals: Sequence[FBodyAtom],
        max_depth: int = 10_000,
        stats: SLDStats | None = None,
        select: str = "leftmost",
        max_steps: int | None = None,
        tracer=None,
        governor=None,
    ) -> Iterator[Substitution]:
        """Yield answer substitutions for the goal list, restricted to
        the goal variables.

        ``max_depth`` bounds resolution steps on a derivation branch
        (exceeding it prunes the branch and counts a cutoff);
        ``max_steps``, if given, bounds *total* resolution steps and
        raises :class:`~repro.core.errors.BudgetExceeded` when exhausted.

        With a ``tracer`` (:class:`repro.obs.Tracer`) the search runs
        eagerly inside one ``sld.solve`` span carrying the search-effort
        counters; without one, answers stream lazily as before.

        A ``governor`` ticks once per resolution step and once per
        candidate clause, so deadlines and budgets interrupt even a
        non-productive search.  A tripped limit propagates as the raised
        :class:`~repro.core.errors.ResourceExhausted`; use
        :meth:`solve_all` for the degrading (``PartialResult``) entry
        point.
        """
        if select not in ("leftmost", "smallest"):
            raise EngineError(f"unknown selection rule {select!r}")
        stats = stats if stats is not None else SLDStats()
        if tracer is not None:
            with tracer.span("sld.solve", select=select, max_depth=max_depth) as span:
                answers = list(
                    self.solve(
                        goals, max_depth, stats, select, max_steps,
                        tracer=None, governor=governor,
                    )
                )
                span.count("answers", len(answers))
                span.count("resolutions", stats.resolutions)
                span.count("unifications", stats.unifications)
                span.count("depth_cutoffs", stats.depth_cutoffs)
            yield from answers
            return
        if governor is not None:
            governor.start()
        budget = [max_steps if max_steps is not None else -1]
        variables: set[str] = set()
        for goal in goals:
            variables |= atom_variables(goal)
        seen: set[Substitution] = set()
        iterator = self._solve(
            list(goals), Substitution.empty(), max_depth, stats, select, budget, governor
        )
        for subst in iterator:
            answer = subst.restrict(variables)
            if answer not in seen:
                seen.add(answer)
                yield answer

    def solve_all(
        self,
        goals: Sequence[FBodyAtom],
        max_depth: int = 10_000,
        stats: SLDStats | None = None,
        select: str = "leftmost",
        tracer=None,
        governor=None,
    ):
        """Eager, governed answer collection.

        Returns the list of answers, or — when a non-strict governor
        limit trips mid-search — a :class:`repro.runtime.PartialResult`
        carrying the answers found before the interruption.  The
        governor's ``max_depth`` clamps the branch depth bound; if the
        clamped search still suffers depth cutoffs the result is
        reported as depth-incomplete rather than silently missing
        answers.  A Python ``RecursionError`` on a deeply recursive
        program is degraded the same way.
        """
        stats = stats if stats is not None else SLDStats()
        if governor is not None:
            governor.start()
            if governor.max_depth is not None:
                max_depth = min(max_depth, governor.max_depth)
        answers: list[Substitution] = []
        try:
            try:
                for answer in self.solve(
                    goals, max_depth, stats, select, tracer=tracer, governor=governor
                ):
                    answers.append(answer)
            except RecursionError:
                raise DepthExceeded(
                    "Python recursion limit hit during SLD resolution "
                    "(deeply recursive program; use the tabled engine)"
                ) from None
            if (
                governor is not None
                and governor.max_depth is not None
                and stats.depth_cutoffs > 0
            ):
                raise DepthExceeded(
                    f"{stats.depth_cutoffs} derivation branches cut off at "
                    f"the depth cap of {max_depth}; answers may be missing"
                )
            return answers
        except (ResourceExhausted, RecursionError) as exc:
            from repro.runtime.governor import as_resource_error, degrade

            exc = as_resource_error(exc)
            return degrade(governor, exc, answers)

    def has_answer(
        self, goals: Sequence[FBodyAtom], max_depth: int = 10_000, select: str = "leftmost"
    ) -> bool:
        """True iff the goal has at least one answer."""
        for _ in self.solve(goals, max_depth, select=select):
            return True
        return False

    # ------------------------------------------------------------------

    def _pick_goal(self, goals: list[FBodyAtom], subst: Substitution, select: str) -> int:
        if select == "leftmost" or len(goals) == 1:
            return 0
        best_index = 0
        best_cost: float = float("inf")
        for index, goal in enumerate(goals):
            if isinstance(goal, FBuiltin):
                if builtin_is_ready(goal, subst):
                    return index
                continue
            pattern = substitute_fatom(goal, subst)
            assert isinstance(pattern, FAtom)
            cost = len(self.candidates(pattern))
            if cost < best_cost:
                best_cost = cost
                best_index = index
        return best_index

    def _solve(
        self,
        goals: list[FBodyAtom],
        subst: Substitution,
        depth: int,
        stats: SLDStats,
        select: str,
        budget: list[int],
        governor=None,
    ) -> Iterator[Substitution]:
        if not goals:
            yield subst
            return
        if depth <= 0:
            stats.depth_cutoffs += 1
            return
        if governor is not None:
            governor.tick()
        index = self._pick_goal(goals, subst, select)
        goal = goals[index]
        rest = goals[:index] + goals[index + 1 :]
        if isinstance(goal, FBuiltin):
            try:
                solved = solve_builtin(goal, subst)
            except BuiltinError:
                if select == "smallest" and any(
                    not isinstance(g, FBuiltin) for g in rest
                ):
                    # Not ready yet: postpone behind the other goals.
                    yield from self._solve(
                        rest + [goal], subst, depth, stats, select, budget, governor
                    )
                    return
                raise
            if solved is not None:
                yield from self._solve(rest, solved, depth, stats, select, budget, governor)
            return
        pattern = substitute_fatom(goal, subst)
        assert isinstance(pattern, FAtom)
        for clause in self.candidates(pattern):
            if budget[0] == 0:
                raise BudgetExceeded("SLD resolution-step budget exhausted")
            if governor is not None:
                governor.tick()
            self._rename_counter += 1
            renamed = rename_clause(clause, f"_r{self._rename_counter}")
            stats.unifications += 1
            unifier = unify_atoms(pattern, renamed.head, subst)
            if unifier is None:
                continue
            stats.resolutions += 1
            if budget[0] > 0:
                budget[0] -= 1
            yield from self._solve(
                list(renamed.body) + rest, unifier, depth - 1, stats, select, budget, governor
            )


def solve_iterative_deepening(
    engine: SLDEngine,
    goals: Sequence[FBodyAtom],
    start_depth: int = 4,
    max_depth: int = 512,
    factor: int = 2,
    select: str = "leftmost",
    governor=None,
):
    """Iterative-deepening answer collection.

    Deepens until a full level completes with no depth cutoff (all
    answers found) or the depth cap is hit.  At the cap with cutoffs
    still occurring, answers could be missing: without a governor (or
    with a strict one) that raises
    :class:`~repro.core.errors.DepthExceeded`; a non-strict governor
    degrades to a :class:`repro.runtime.PartialResult` carrying the
    deepest completed level's answers.
    """
    if governor is not None:
        governor.start()
        if governor.max_depth is not None:
            max_depth = min(max_depth, governor.max_depth)
    depth = start_depth
    answers: list[Substitution] = []
    try:
        while True:
            stats = SLDStats()
            answers = list(
                engine.solve(
                    goals, max_depth=depth, stats=stats, select=select, governor=governor
                )
            )
            if stats.depth_cutoffs == 0:
                return answers
            if depth >= max_depth:
                raise DepthExceeded(
                    f"iterative deepening reached depth {depth} with the search "
                    "still being cut off; the program may not terminate top-down "
                    "(use the tabled engine for recursive programs)"
                )
            depth = min(max_depth, depth * factor)
    except (ResourceExhausted, RecursionError) as exc:
        from repro.runtime.governor import as_resource_error, degrade

        exc = as_resource_error(exc)
        return degrade(governor, exc, answers)
