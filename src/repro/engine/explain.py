"""Derivation trees: *why* does a fact hold?

A classic deductive-database facility built on the direct engine: after
saturation, :class:`Explainer` reconstructs, for any ground atomic fact
of the minimal model, a derivation tree — which clause produced it,
under which binding, supported by which sub-derivations.  Complex
descriptions are explained through their atomic pieces (the Section 3.2
decomposition), so the explanation of ``path: p[src => a, dest => d]``
on the E7 database visibly cites *two different facts*, making the
residual technique inspectable.

Trees render as indented text via :func:`format_derivation`::

    path: id(a, c)[length => 2]
      by rule 4: path: id(X, Y)[...] :- node: X[linkto => Z], ...
        node: a[linkto => b]
          extensional fact 0
        path: id(b, c)[length => 1]
          by rule 3: ...
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.core.clauses import (
    BodyAtom,
    BuiltinAtom,
    DefiniteClause,
    NegatedAtom,
    Query,
)
from repro.core.decompose import atomic_descriptions
from repro.core.errors import EngineError
from repro.core.formulas import Atom, PredAtom, TermAtom
from repro.core.pretty import pretty_atom, pretty_clause
from repro.core.terms import BaseTerm
from repro.engine.direct import Answer, DirectEngine, _ground_binding

__all__ = ["Derivation", "Explainer", "format_derivation"]


@dataclass(frozen=True)
class Derivation:
    """One node of a derivation tree.

    ``kind`` is ``"fact"`` (an extensional clause asserted it),
    ``"rule"`` (derived by the clause at ``clause_index`` under some
    binding, supported by ``children``), ``"builtin"`` (an evaluated
    builtin), or ``"absent"`` (a negated atom explained by failure).
    """

    atom: BodyAtom
    kind: str
    clause_index: Optional[int] = None
    children: tuple["Derivation", ...] = ()

    def depth(self) -> int:
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def size(self) -> int:
        return 1 + sum(child.size() for child in self.children)


def format_derivation(derivation: Derivation, program=None, indent: int = 0) -> str:
    """Indented text rendering; with ``program`` supplied, rule nodes
    quote the clause."""
    pad = "  " * indent
    lines = [pad + pretty_atom(derivation.atom)]
    if derivation.kind == "fact":
        lines.append(pad + f"  extensional fact {derivation.clause_index}")
    elif derivation.kind == "builtin":
        lines.append(pad + "  builtin")
    elif derivation.kind == "absent":
        lines.append(pad + "  holds by absence (negation as failure)")
    elif derivation.kind == "subtype":
        lines.append(pad + "  by subtype subsumption")
    elif derivation.kind == "rule":
        if derivation.clause_index is None:
            label = "  by decomposition (one sub-derivation per atomic piece)"
        else:
            label = f"  by rule {derivation.clause_index}"
            if program is not None:
                label += f": {pretty_clause(program.clauses[derivation.clause_index])}"
        lines.append(pad + label)
    for child in derivation.children:
        lines.append(format_derivation(child, program, indent + 2))
    return "\n".join(lines)


class Explainer:
    """Reconstructs derivations against a saturated direct engine."""

    def __init__(self, engine: DirectEngine, max_depth: int = 200) -> None:
        self.engine = engine
        self.engine.saturate()
        self.program = engine.program
        self._max_depth = max_depth

    # ------------------------------------------------------------------

    def explain_query(self, query: Query) -> list[tuple[Answer, list[Derivation]]]:
        """Each answer paired with one derivation per query atom."""
        out: list[tuple[Answer, list[Derivation]]] = []
        for answer in self.engine.solve(query):
            grounded_atoms = [
                _substitute(atom, answer) for atom in query.body
            ]
            derivations = [self.explain_atom(atom) for atom in grounded_atoms]
            out.append((answer, [d for d in derivations if d is not None]))
        return out

    def explain_atom(self, atom: BodyAtom) -> Optional[Derivation]:
        """A derivation for one ground atom, or None if it fails."""
        return self._explain(atom, ancestors=frozenset(), depth=0)

    # ------------------------------------------------------------------

    def _explain(
        self, atom: BodyAtom, ancestors: frozenset, depth: int
    ) -> Optional[Derivation]:
        if depth > self._max_depth:
            raise EngineError("derivation reconstruction exceeded the depth bound")
        if isinstance(atom, BuiltinAtom):
            solved = self.engine._solve_builtin(atom, {})
            return Derivation(atom, "builtin") if solved is not None else None
        if isinstance(atom, NegatedAtom):
            if not self.engine.holds(Query((atom.atom,))):
                return Derivation(atom, "absent")
            return None
        assert isinstance(atom, (TermAtom, PredAtom))
        if not self.engine.holds(Query((atom,))):
            return None
        pieces = atomic_descriptions(atom)
        if len(pieces) == 1:
            return self._explain_atomic(pieces[0], ancestors, depth)
        children = []
        for piece in pieces:
            child = self._explain_atomic(piece, ancestors, depth + 1)
            if child is None:
                return None
            children.append(child)
        return Derivation(atom, "rule", None, tuple(children))

    def _explain_atomic(
        self, atom: Atom, ancestors: frozenset, depth: int
    ) -> Optional[Derivation]:
        """Find a producing clause for one atomic fact."""
        key = _atom_key(atom)
        if key in ancestors:
            return None  # do not justify a fact by itself
        next_ancestors = ancestors | {key}
        for index, clause in enumerate(self.program.clauses):
            for binding in self._head_matches(clause, atom):
                if clause.is_fact:
                    return Derivation(atom, "fact", index)
                derived = self._explain_rule_instance(
                    atom, index, clause, binding, next_ancestors, depth
                )
                if derived is not None:
                    return derived
        # A type membership may hold through the hierarchy: explain the
        # asserted subtype instead and record the subsumption step.
        if key[0] == "t":
            derived = self._explain_through_hierarchy(
                atom, key, next_ancestors, depth
            )
            if derived is not None:
                return derived
        return None

    def _explain_rule_instance(
        self,
        atom: Atom,
        index: int,
        clause: DefiniteClause,
        binding: dict[str, BaseTerm],
        ancestors: frozenset,
        depth: int,
    ) -> Optional[Derivation]:
        for full_binding in self.engine._solve_body(clause.body, binding):
            children = []
            failed = False
            for body_atom in clause.body:
                grounded = _substitute(body_atom, _ground_binding(full_binding))
                child = self._explain(grounded, ancestors, depth + 1)
                if child is None:
                    failed = True
                    break
                children.append(child)
            if not failed:
                return Derivation(atom, "rule", index, tuple(children))
        return None

    def _explain_through_hierarchy(
        self, atom: Atom, key: tuple, ancestors: frozenset, depth: int
    ) -> Optional[Derivation]:
        from repro.core.terms import Const, Func

        type_name, identity = key[1], key[2]
        candidates = sorted(
            t for t in self.engine.store.asserted_types(identity) if t != type_name
        )
        for asserted in candidates:
            if not self.engine.hierarchy.is_subtype(asserted, type_name):
                continue
            if isinstance(identity, Const):
                retyped = Const(identity.value, asserted)
            else:
                assert isinstance(identity, Func)
                retyped = Func(identity.functor, identity.args, asserted)
            child = self._explain_atomic(TermAtom(retyped), ancestors, depth + 1)
            if child is not None:
                return Derivation(atom, "subtype", None, (child,))
        return None

    def _head_matches(
        self, clause: DefiniteClause, atom: Atom
    ) -> Iterator[dict[str, BaseTerm]]:
        """Bindings under which some atomic piece of the clause head is
        the target fact (head instances assert all their pieces)."""
        for piece in atomic_descriptions(clause.head):
            binding = _match_atomic(piece, atom)
            if binding is not None:
                yield binding


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------

def _substitute(atom: BodyAtom, binding) -> BodyAtom:
    from repro.core.clauses import substitute_atom

    return substitute_atom(atom, dict(binding))


def _atom_key(atom: Atom) -> tuple:
    from repro.db.store import ground_id
    from repro.core.terms import LTerm

    if isinstance(atom, PredAtom):
        return ("p", atom.pred, tuple(ground_id(arg) for arg in atom.args))
    term = atom.term
    if isinstance(term, LTerm):
        spec = term.specs[0]
        values = spec.value_terms()
        return ("l", spec.label, ground_id(term.base), ground_id(values[0]))
    return ("t", term.type, ground_id(term))


def _match_atomic(pattern: Atom, target: Atom):
    """One-way structural match of an atomic head piece against a ground
    atomic fact, returning a binding for the clause variables.

    Bound values are canonical ground identities (types erased via
    :func:`ground_id`) so the binding never leaks the target atom's
    annotations back into body evaluation.
    """
    from repro.core.terms import LTerm
    from repro.db.store import ground_id
    from repro.engine.cunify import unify_identities

    if isinstance(pattern, PredAtom) and isinstance(target, PredAtom):
        if pattern.pred != target.pred or len(pattern.args) != len(target.args):
            return None
        binding: Optional[dict[str, BaseTerm]] = {}
        for p_arg, t_arg in zip(pattern.args, target.args):
            binding = unify_identities(p_arg, ground_id(t_arg), binding)
            if binding is None:
                return None
        return binding
    if isinstance(pattern, TermAtom) and isinstance(target, TermAtom):
        p_term, t_term = pattern.term, target.term
        p_labelled = isinstance(p_term, LTerm)
        t_labelled = isinstance(t_term, LTerm)
        if p_labelled != t_labelled:
            return None
        if p_labelled and t_labelled:
            p_spec, t_spec = p_term.specs[0], t_term.specs[0]
            if p_spec.label != t_spec.label:
                return None
            binding = unify_identities(p_term.base, ground_id(t_term.base))
            if binding is None:
                return None
            return unify_identities(
                p_spec.value_terms()[0],
                ground_id(t_spec.value_terms()[0]),
                binding,
            )
        if p_term.type != t_term.type:
            return None
        return unify_identities(p_term, ground_id(t_term))
    return None
