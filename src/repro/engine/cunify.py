"""Unification over C-logic identity terms.

The direct engine (Section 4) reasons over complex terms without
translating them away.  Its unification works on *identity trees*
(variables, constants, function applications — labels stripped, since
labels are assertions about the denoted object, not part of its
identity).  Type annotations do not participate in unification either:
they are membership constraints, checked against the object store and
the type hierarchy by the engine (the "order-sorted" flavour of
Section 4 is realized there).

Bindings map variable names to identity terms.  The functions here are
the C-level mirror of :mod:`repro.fol.unify` and are property-tested
for agreement with it through the transformation.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.core.terms import BaseTerm, Const, Func, Term, Var, identity_of

__all__ = ["strip_identity", "resolve", "unify_identities", "apply_binding", "Binding"]

#: A C-level binding: variable name -> identity term.
Binding = Mapping[str, BaseTerm]


def strip_identity(term: Term) -> BaseTerm:
    """The pure identity tree: labels removed at every depth (types are
    kept — they are harmless annotations here and useful in messages)."""
    base = identity_of(term)
    if isinstance(base, Func):
        return Func(base.functor, tuple(strip_identity(arg) for arg in base.args), base.type)
    return base


def resolve(term: BaseTerm, binding: Binding) -> BaseTerm:
    """Follow bindings from a variable to its representative."""
    while isinstance(term, Var):
        bound = binding.get(term.name)
        if bound is None:
            return term
        term = bound
    return term


def apply_binding(term: BaseTerm, binding: Binding) -> BaseTerm:
    """Fully apply a binding to an identity term."""
    term = resolve(term, binding)
    if isinstance(term, Func):
        return Func(term.functor, tuple(apply_binding(strip_identity(a), binding) for a in term.args), term.type)
    return term


def _occurs(name: str, term: BaseTerm, binding: Binding) -> bool:
    term = resolve(term, binding)
    if isinstance(term, Var):
        return term.name == name
    if isinstance(term, Func):
        return any(_occurs(name, strip_identity(arg), binding) for arg in term.args)
    return False


def unify_identities(
    left: Term, right: Term, binding: Optional[dict[str, BaseTerm]] = None
) -> Optional[dict[str, BaseTerm]]:
    """Unify two terms by their identities, extending ``binding``.

    Returns the extended binding dict (a *new* dict — the input is not
    mutated) or ``None`` on clash.  Labelled terms unify through their
    bases: ``p[src => a]`` and ``p[dest => b]`` have the same identity.
    """
    current: dict[str, BaseTerm] = dict(binding or {})
    stack: list[tuple[BaseTerm, BaseTerm]] = [(strip_identity(left), strip_identity(right))]
    while stack:
        l, r = stack.pop()
        l = resolve(l, current)
        r = resolve(r, current)
        if isinstance(l, Var):
            if isinstance(r, Var) and r.name == l.name:
                continue
            if _occurs(l.name, r, current):
                return None
            current[l.name] = r
            continue
        if isinstance(r, Var):
            if _occurs(r.name, l, current):
                return None
            current[r.name] = l
            continue
        if isinstance(l, Const) and isinstance(r, Const):
            if l.value != r.value or type(l.value) is not type(r.value):
                return None
            continue
        if isinstance(l, Func) and isinstance(r, Func):
            if l.functor != r.functor or len(l.args) != len(r.args):
                return None
            stack.extend(
                (strip_identity(a), strip_identity(b)) for a, b in zip(l.args, r.args)
            )
            continue
        return None
    return current
