"""Naive bottom-up evaluation (Section 4's "bottom-up methods").

Computes the minimal model of a definite-clause program by iterating
the immediate-consequence operator T_P to fixpoint.  The engine works
directly on *generalized* definite clauses — the natural output of the
transformation — so "each successful evaluation of the body may produce
multiple results" (one derived fact per head atom), reproducing the
multi-head behaviour the paper points out; ordinary Horn clauses are
handled as one-head generalized clauses.

Naive evaluation re-derives everything every round; its cost is the
baseline the semi-naive engine (E11) improves on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Union

from repro.core.errors import BudgetExceeded, EngineError, ResourceExhausted
from repro.fol.atoms import (
    FAtom,
    FBodyAtom,
    FOLProgram,
    GeneralizedClause,
    HornClause,
    substitute_fatom,
)
from repro.fol.subst import Substitution
from repro.engine.factbase import FactBase
from repro.engine.join import check_range_restricted, compile_body, join_body

__all__ = [
    "EvaluationStats",
    "normalize_clauses",
    "naive_fixpoint",
    "answer_query_bottomup",
    "prepare_report",
    "finish_report",
]

ClauseLike = Union[HornClause, GeneralizedClause]


@dataclass
class EvaluationStats:
    """Work counters for the fixpoint computation (used by E11).

    Kept as a plain dataclass so the hot loop pays attribute increments
    only; it doubles as a thin facade over the observability layer's
    :class:`~repro.obs.metrics.MetricsRegistry` via :meth:`publish` /
    :meth:`from_registry` (the two are equivalent representations —
    tested in ``tests/obs/test_metrics.py``).
    """

    rounds: int = 0
    body_evaluations: int = 0
    facts_derived: int = 0
    facts_new: int = 0

    #: Registry namespace the counters publish under.
    PREFIX = "fixpoint"

    def publish(self, registry, prefix: str = PREFIX) -> None:
        """Add these counters to a registry as ``{prefix}.{field}``."""
        from repro.obs.metrics import publish_dataclass

        publish_dataclass(registry, self, prefix)

    @classmethod
    def from_registry(cls, registry, prefix: str = PREFIX) -> "EvaluationStats":
        """The facade read back out of a registry snapshot."""
        snapshot = registry.snapshot()
        return cls(
            **{
                field: int(snapshot.get(f"{prefix}.{field}", 0))
                for field in ("rounds", "body_evaluations", "facts_derived", "facts_new")
            }
        )


def normalize_clauses(
    clauses: Union[FOLProgram, Iterable[ClauseLike]]
) -> list[GeneralizedClause]:
    """Coerce any clause collection to generalized form."""
    if isinstance(clauses, FOLProgram):
        source: Iterable[ClauseLike] = clauses.clauses
    else:
        source = clauses
    out: list[GeneralizedClause] = []
    for clause in source:
        if isinstance(clause, HornClause):
            out.append(GeneralizedClause((clause.head,), clause.body))
        elif isinstance(clause, GeneralizedClause):
            out.append(clause)
        else:
            raise EngineError(f"not a clause: {clause!r}")
    return out


def _reject_negation(clauses: list[GeneralizedClause]) -> None:
    """The positive fixpoints are unsound on negated rules; route those
    to :func:`repro.engine.negation.stratified_fixpoint`."""
    from repro.fol.atoms import NegAtom

    for clause in clauses:
        if any(isinstance(atom, NegAtom) for atom in clause.body):
            raise EngineError(
                "the program uses negation; evaluate it with "
                "repro.engine.negation.stratified_fixpoint"
            )


def prepare_report(report, engine: str, rules: Sequence[GeneralizedClause], facts: FactBase):
    """Shared EXPLAIN-report setup for the FOL fixpoint engines: name
    the run, register every rule, and attach the index observer.
    Returns the per-rule slots (``None`` when no report is wanted)."""
    if report is None:
        return None
    from repro.fol.pretty import pretty_generalized

    report.engine = report.engine or engine
    facts.observe(report.index)
    return [
        report.rule(index, pretty_generalized(clause))
        for index, clause in enumerate(rules)
    ]


def finish_report(report, stats: EvaluationStats, facts: FactBase) -> None:
    """Close out an EXPLAIN report: totals, and detach the observer."""
    if report is None:
        return
    report.rounds = stats.rounds
    report.facts_total = len(facts)
    facts.observe(None)


def naive_fixpoint(
    clauses: Union[FOLProgram, Iterable[ClauseLike]],
    max_rounds: int = 10_000,
    stats: EvaluationStats | None = None,
    tracer=None,
    report=None,
    governor=None,
):
    """The minimal model of ``clauses`` as a fact base.

    Raises :class:`~repro.core.errors.BudgetExceeded` if the fixpoint is
    not reached within ``max_rounds`` (a non-terminating program, e.g.
    unbounded identity creation through function symbols).

    ``tracer`` (a :class:`repro.obs.Tracer`) records one span per round;
    ``report`` (a :class:`repro.obs.ExplainReport`) collects the
    per-rule, per-round account.  Both default off and then cost only a
    ``None`` check per round.

    ``governor`` (a :class:`repro.runtime.Governor`) bounds the run: one
    tick per body evaluation, a fact-count check per rule per round.  A
    tripped limit on a non-strict governor degrades to a
    :class:`repro.runtime.PartialResult` carrying the facts derived so
    far; strict governors (and the bare ``max_rounds`` overrun) raise.
    """
    generalized = normalize_clauses(clauses)
    _reject_negation(generalized)
    for clause in generalized:
        check_range_restricted(clause.heads, clause.body)
    facts = FactBase()
    stats = stats if stats is not None else EvaluationStats()
    # Seed with body-free clauses (their heads must be ground by safety).
    for clause in generalized:
        if clause.is_fact:
            for head in clause.heads:
                if facts.add(head):
                    stats.facts_new += 1
                stats.facts_derived += 1
    rules = [clause for clause in generalized if not clause.is_fact]
    plans = [compile_body(clause.body) for clause in rules]
    rule_slots = prepare_report(report, "bottomup (naive)", rules, facts)
    if rule_slots is not None:
        # Plan once at entry; refreshed on the final round below so the
        # report shows the converged selectivities without paying a
        # re-plan per rule per round.
        for slot, plan in zip(rule_slots, plans):
            slot.join_order = plan.order(facts)
    if governor is not None:
        governor.start()
    try:
        for _ in range(max_rounds):
            stats.rounds += 1
            facts.next_round()
            round_span = (
                tracer.start("bottomup.round", round=stats.rounds)
                if tracer is not None
                else None
            )
            new_before_round = stats.facts_new
            changed = False
            for rule_index, clause in enumerate(rules):
                row = None
                if rule_slots is not None:
                    row = rule_slots[rule_index].round(stats.rounds)
                    index_before = report.index.snapshot()
                derived_before, new_before = stats.facts_derived, stats.facts_new
                instantiations = 0
                for subst in plans[rule_index].run(facts):
                    if governor is not None:
                        governor.tick()
                    stats.body_evaluations += 1
                    instantiations += 1
                    for head in clause.heads:
                        derived = substitute_fatom(head, subst)
                        assert isinstance(derived, FAtom)
                        stats.facts_derived += 1
                        if facts.add(derived):
                            stats.facts_new += 1
                            changed = True
                if governor is not None:
                    governor.tick()
                    governor.check_facts(len(facts))
                if row is not None:
                    row.instantiations += instantiations
                    row.facts_derived += stats.facts_derived - derived_before
                    row.facts_new += stats.facts_new - new_before
                    report.index.add_since(index_before, rule_slots[rule_index].index)
            if round_span is not None:
                round_span.count("facts_new", stats.facts_new - new_before_round)
                round_span.set("changed", changed)
                tracer.finish(round_span)
            if not changed:
                if rule_slots is not None:
                    for slot, plan in zip(rule_slots, plans):
                        slot.join_order = plan.order(facts)
                finish_report(report, stats, facts)
                return facts
        raise BudgetExceeded(
            f"no fixpoint within {max_rounds} rounds (non-terminating program?)"
        )
    except (ResourceExhausted, RecursionError) as exc:
        from repro.runtime.governor import as_resource_error, degrade

        exc = as_resource_error(exc)
        finish_report(report, stats, facts)
        return degrade(governor, exc, facts, report)


def answer_query_bottomup(
    goals: Sequence[FBodyAtom],
    facts: FactBase,
    variables: set[str] | None = None,
) -> Iterator[Substitution]:
    """Answers to a translated query against a computed minimal model.

    Yields substitutions restricted to ``variables`` (default: all
    variables of the goals); duplicates after restriction are
    suppressed.
    """
    if variables is None:
        from repro.fol.atoms import atom_variables

        variables = set()
        for goal in goals:
            variables |= atom_variables(goal)
    seen: set[Substitution] = set()
    for subst in join_body(goals, facts):
        answer = subst.restrict(variables)
        if answer not in seen:
            seen.add(answer)
            yield answer
