"""Direct evaluation over complex objects (Section 4).

"An interesting alternative is to consider a direct implementation of
complex object reasoning without translating complex object
specification into first-order logic programs. ... The syntax of
complex objects allows the user to cluster component objects together
... Reasoning directly over complex objects may allow the system to
take advantage of such clustering information."

:class:`DirectEngine` implements that alternative:

* **Saturation** — a bottom-up fixpoint at the C-logic level: clause
  bodies are solved against the :class:`~repro.db.ObjectStore` *one
  clustered atom at a time*; within an atom, candidate objects come
  from the type index and each label constraint enumerates only the
  candidate's own stored values.  No active-domain enumeration ever
  happens for label-value variables — the clustering advantage the
  paper describes, measured against translated SLD in experiment E6.

* **Residual solving** (:meth:`solve`) — a query description is solved
  label-by-label, so constraints on one multi-valued label may be
  satisfied by *different* stored facts: the paper's
  ``:- path: p[src => a, dest => d]`` succeeds.  "We need to solve part
  of the query at one time, take the residual and then proceed."

* **Whole-term unification** (:meth:`solve_whole_term`) — the naive
  strategy that unifies the entire query term against each stored fact
  as a unit.  Complete when all labels are functional and each object
  is described by one fact, but *incomplete* for multi-valued labels
  spread over several facts — the failure E7 reproduces.

* **Subsumption solving** (:meth:`solve_subsumption`) — queries checked
  against merged per-object descriptions via the partial ordering over
  descriptions (extensional databases only; Section 4 notes that in
  intensional databases rules dealing with partial information about
  the same object "cannot simply [be] merge[d] together").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.core.clauses import (
    BodyAtom,
    BuiltinAtom,
    DefiniteClause,
    NegatedAtom,
    Program,
    Query,
    atom_variables,
    substitute_atom,
)
from repro.core.decompose import spec_pairs
from repro.core.errors import (
    BudgetExceeded,
    BuiltinError,
    EngineError,
    ResourceExhausted,
    SafetyError,
)
from repro.core.formulas import PredAtom, TermAtom
from repro.core.terms import (
    BaseTerm,
    Const,
    Func,
    LTerm,
    OBJECT,
    Term,
    Var,
    is_ground,
    variables_of,
)
from repro.db.store import ObjectStore, ground_id
from repro.engine.cunify import Binding, apply_binding, strip_identity, unify_identities

__all__ = ["DirectEngine", "DirectStats", "Answer"]

_ARITH = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "//": lambda a, b: a // b if b else _div0(),
    "mod": lambda a, b: a % b if b else _div0(),
}

_COMPARE = {
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "=<": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
    "=:=": lambda a, b: a == b,
    "=\\=": lambda a, b: a != b,
}


def _div0():
    raise BuiltinError("integer division by zero")


@dataclass
class DirectStats:
    """Work counters: candidate objects touched, label probes, rounds."""

    rounds: int = 0
    candidates: int = 0
    label_probes: int = 0
    facts_new: int = 0


#: An answer: variable name -> ground identity term.
Answer = dict[str, BaseTerm]


@dataclass(frozen=True)
class DeltaIndex:
    """New facts since a round, grouped for delta candidate lookup."""

    ids_by_type: dict[str, set[BaseTerm]]
    hosts_by_label: dict[str, set[BaseTerm]]
    rows_by_pred: dict[tuple[str, int], set[tuple[BaseTerm, ...]]]


class DirectEngine:
    """Bottom-up saturation plus direct query answering for a program."""

    def __init__(
        self,
        program: Program,
        max_rounds: int = 10_000,
        saturation_mode: str = "delta",
        tracer=None,
        report=None,
        governor=None,
    ) -> None:
        if saturation_mode not in ("naive", "delta"):
            raise EngineError(f"unknown saturation mode {saturation_mode!r}")
        self.program = program
        self.hierarchy = program.hierarchy()
        self.store = ObjectStore(self.hierarchy)
        self.stats = DirectStats()
        self._max_rounds = max_rounds
        self._saturation_mode = saturation_mode
        self._saturated = False
        #: The resource governor bounding this engine, or None.
        self._governor = governor
        #: The limit that interrupted saturation/solving, or None.  Set
        #: when a non-strict governor degraded the run, so callers can
        #: tell a partial model from a complete one.
        self.interrupted: Optional[ResourceExhausted] = None
        # Per-clause delta positions (indices of positive atoms), keyed
        # by clause identity — computed once, reused every delta round.
        self._delta_positions: dict[int, list[int]] = {}
        # Observability (repro.obs): spans per saturation round and a
        # per-rule EXPLAIN account.  Both optional and off by default.
        self._tracer = tracer
        self._report = report
        if report is not None:
            report.engine = report.engine or f"direct ({saturation_mode})"

    def _rule_row(self, clause: DefiniteClause, round_number: int):
        """The EXPLAIN row for one rule in one round (None when off)."""
        if self._report is None:
            return None
        from repro.core.pretty import pretty_clause

        return self._report.rule(id(clause), pretty_clause(clause)).round(round_number)

    # ------------------------------------------------------------------
    # Saturation (minimal model at the C-logic level)
    # ------------------------------------------------------------------

    def _tick(self) -> None:
        if self._governor is not None:
            self._governor.tick()

    def saturate(self):
        """Compute the minimal model into the store (idempotent).

        Programs with negated body atoms are evaluated stratum by
        stratum (the perfect model); a cycle through negation raises
        :class:`EngineError`.

        A non-strict governor limit tripping mid-saturation degrades to
        a :class:`repro.runtime.PartialResult` wrapping the store with
        the facts derived so far; ``self.interrupted`` records the
        violation and the partial model stays in place (query answering
        over it is sound but possibly incomplete).
        """
        if self._saturated:
            return self.store
        for clause in self.program.clauses:
            self._check_safety(clause)
        span = (
            self._tracer.start("direct.saturate", mode=self._saturation_mode)
            if self._tracer is not None
            else None
        )
        if self._governor is not None:
            self._governor.start()
        try:
            for stratum in self._stratify():
                self._saturate_stratum(stratum)
        except (ResourceExhausted, RecursionError) as exc:
            from repro.runtime.governor import as_resource_error, degrade

            exc = as_resource_error(exc)
            self.interrupted = exc
            if span is not None:
                span.count("rounds", self.stats.rounds)
                span.count("facts_new", self.stats.facts_new)
                self._tracer.finish(span)
            if self._report is not None:
                self._report.rounds = self.stats.rounds
                self._report.facts_total = self.store.fact_count()
            partial = degrade(self._governor, exc, self.store, self._report)
            self._saturated = True
            return partial
        if span is not None:
            span.count("rounds", self.stats.rounds)
            span.count("candidates", self.stats.candidates)
            span.count("label_probes", self.stats.label_probes)
            span.count("facts_new", self.stats.facts_new)
            self._tracer.finish(span)
        if self._report is not None:
            self._report.rounds = self.stats.rounds
            self._report.facts_total = self.store.fact_count()
        self._saturated = True
        return self.store

    def _saturate_stratum(self, clauses: list[DefiniteClause]) -> None:
        rules: list[DefiniteClause] = []
        for clause in clauses:
            if clause.is_fact:
                self.store.assert_atom(clause.head)
            else:
                rules.append(clause)
        if self._saturation_mode == "naive":
            self._saturate_naive(rules)
        else:
            self._saturate_delta(rules)

    def incremental_assert(self, atom: BodyAtom) -> None:
        """Insert a ground fact into an already saturated model and
        restore the fixpoint incrementally (delta rounds seeded with the
        insertion — insert-only view maintenance).

        Monotone programs only: with negation, an insertion can
        *invalidate* previously derived facts, which insert-only
        maintenance cannot express; re-create the engine instead.
        """
        if any(
            isinstance(body_atom, NegatedAtom)
            for clause in self.program.clauses
            for body_atom in clause.body
        ):
            from repro.core.errors import UnsupportedFeatureError

            raise UnsupportedFeatureError(
                "incremental assertion under negation is non-monotone; "
                "rebuild the engine to re-saturate from scratch"
            )
        self.saturate()
        insertion_round = self.store.next_round()
        self.store.assert_atom(atom)
        rules = [clause for clause in self.program.clauses if not clause.is_fact]
        self._saturate_delta(rules, start_round=insertion_round)

    def _saturate_naive(self, rules: list[DefiniteClause]) -> None:
        for _ in range(self._max_rounds):
            self.stats.rounds += 1
            self.store.next_round()
            round_span = (
                self._tracer.start("direct.round", round=self.stats.rounds, mode="naive")
                if self._tracer is not None
                else None
            )
            changed = self._naive_round(rules)
            if self._governor is not None:
                self._governor.check_facts(self.store.fact_count())
            if round_span is not None:
                round_span.set("changed", changed)
                self._tracer.finish(round_span)
            if not changed:
                return
        raise BudgetExceeded(
            f"no fixpoint within {self._max_rounds} rounds (unbounded object creation?)"
        )

    def _naive_round(self, rules: list[DefiniteClause]) -> bool:
        changed = False
        for clause in rules:
            row = self._rule_row(clause, self.stats.rounds)
            for binding in self._solve_body(clause.body, {}):
                if row is not None:
                    row.instantiations += 1
                    row.facts_derived += 1
                new = self._derive(clause, binding)
                if new and row is not None:
                    row.facts_new += 1
                changed |= new
        return changed

    def _derive(self, clause: DefiniteClause, binding: dict[str, BaseTerm]) -> bool:
        head = substitute_atom(clause.head, _ground_binding(binding))
        if not _atom_ground(head):
            raise SafetyError(f"derived a non-ground head from clause {clause!r}")
        if self.store.assert_atom(head):
            self.stats.facts_new += 1
            return True
        return False

    # -- Semi-naive (delta) saturation ---------------------------------

    def _saturate_delta(
        self, rules: list[DefiniteClause], start_round: int = 0
    ) -> None:
        """Delta iteration with naive verification rounds.

        Each delta round requires one body atom to match a fact derived
        since the previous round, using the store's round stamps.  The
        delta candidate sets are index-driven approximations (they can
        miss instantiations enabled only through *nested* parts of a
        description), so when a delta round goes quiet, one full naive
        round verifies the fixpoint — the combination is always sound
        and complete, and the naive rounds are rare.
        """
        delta_round = start_round
        for _ in range(self._max_rounds):
            self.stats.rounds += 1
            current = self.store.next_round()
            round_span = (
                self._tracer.start("direct.round", round=self.stats.rounds, mode="delta")
                if self._tracer is not None
                else None
            )
            delta = self._delta_index(delta_round)
            if self._governor is not None:
                self._governor.check_facts(self.store.fact_count())
            changed = False
            for clause in rules:
                row = self._rule_row(clause, self.stats.rounds)
                for position_bindings in self._delta_bindings(clause, delta):
                    for binding in position_bindings:
                        new = self._derive(clause, binding)
                        if row is not None:
                            row.instantiations += 1
                            row.facts_derived += 1
                            if new:
                                row.facts_new += 1
                        changed |= new
            if round_span is not None:
                round_span.set("changed", changed)
                self._tracer.finish(round_span)
            delta_round = current
            if not changed:
                self.stats.rounds += 1
                self.store.next_round()
                verify_span = (
                    self._tracer.start(
                        "direct.round", round=self.stats.rounds, mode="verify"
                    )
                    if self._tracer is not None
                    else None
                )
                quiet = not self._naive_round(rules)
                if verify_span is not None:
                    verify_span.set("changed", not quiet)
                    self._tracer.finish(verify_span)
                if quiet:
                    return
                delta_round = self.store.round
        raise BudgetExceeded(
            f"no fixpoint within {self._max_rounds} rounds (unbounded object creation?)"
        )

    def _delta_bindings(self, clause: DefiniteClause, delta: "DeltaIndex"):
        """Binding iterators for one clause in one delta round — one per
        delta position; builtin/negation-only bodies get a single naive
        pass (cheap to re-run)."""
        positions = self._delta_positions.get(id(clause))
        if positions is None:
            positions = [
                index
                for index, atom in enumerate(clause.body)
                if isinstance(atom, (TermAtom, PredAtom))
            ]
            self._delta_positions[id(clause)] = positions
        if not positions:
            yield self._solve_body(clause.body, {})
            return
        for position in positions:
            yield self._solve_body_delta(clause.body, position, delta)

    def _delta_index(self, since_round: int) -> "DeltaIndex":
        ids_by_type: dict[str, set[BaseTerm]] = {}
        hosts_by_label: dict[str, set[BaseTerm]] = {}
        rows_by_pred: dict[tuple[str, int], set[tuple[BaseTerm, ...]]] = {}
        for key in self.store.keys_since(since_round):
            kind = key[0]
            if kind == "t":
                ids_by_type.setdefault(key[1], set()).add(key[2])
            elif kind == "l":
                hosts_by_label.setdefault(key[1], set()).add(key[2])
            else:
                row = key[2]
                rows_by_pred.setdefault((key[1], len(row)), set()).add(row)
        return DeltaIndex(ids_by_type, hosts_by_label, rows_by_pred)

    def _solve_body_delta(
        self, body: Sequence[BodyAtom], delta_position: int, delta: "DeltaIndex"
    ) -> Iterator[dict[str, BaseTerm]]:
        """Solve the body with the atom at ``delta_position`` restricted
        to new facts; the delta atom runs first (most selective), then
        the other positive atoms and builtins, negated atoms last."""
        rest: list[BodyAtom] = [
            atom
            for index, atom in enumerate(body)
            if index != delta_position and not isinstance(atom, NegatedAtom)
        ]
        rest.extend(atom for atom in body if isinstance(atom, NegatedAtom))
        for binding in self._solve_atom_delta(body[delta_position], {}, delta):
            yield from self._solve_ordered(rest, 0, binding)

    def _solve_atom_delta(
        self, atom: BodyAtom, binding: dict[str, BaseTerm], delta: "DeltaIndex"
    ) -> Iterator[dict[str, BaseTerm]]:
        if isinstance(atom, PredAtom):
            rows = delta.rows_by_pred.get((atom.pred, len(atom.args)), ())
            yield from self._solve_pred_rows(atom, binding, rows)
            return
        assert isinstance(atom, TermAtom)
        term = atom.term
        base = term.base if isinstance(term, LTerm) else term
        candidates: set[BaseTerm] = set()
        if base.type == OBJECT:
            for ids in delta.ids_by_type.values():
                candidates |= ids
        else:
            for sub in self.hierarchy.subtypes(base.type):
                candidates |= delta.ids_by_type.get(sub, set())
        if isinstance(term, LTerm):
            for spec in term.specs:
                candidates |= delta.hosts_by_label.get(spec.label, set())
        yield from self._solve_term(term, binding, candidates_override=candidates)

    def _check_safety(self, clause: DefiniteClause) -> None:
        head_only = clause.head_only_variables()
        if head_only:
            raise SafetyError(
                f"clause has existential head variables {sorted(head_only)}; "
                "skolemize them first (SkolemPolicy / KnowledgeBase.declare_identity)"
            )
        positive_vars: set[str] = set()
        for atom in clause.body:
            if not isinstance(atom, (NegatedAtom, BuiltinAtom)):
                positive_vars |= atom_variables(atom)
        for index, atom in enumerate(clause.body):
            if isinstance(atom, NegatedAtom):
                # Variables local to the negated atom are existential
                # inside the negation; only variables shared with the
                # rest of the clause must be positively bound.
                outer = atom_variables(clause.head)
                for other_index, other in enumerate(clause.body):
                    if other_index != index:
                        outer |= atom_variables(other)
                unsafe = (atom_variables(atom) & outer) - positive_vars
                if unsafe:
                    raise SafetyError(
                        f"shared variables {sorted(unsafe)} of a negated atom "
                        "do not occur in a positive body atom"
                    )
                if not self._atom_symbols(atom, for_query=True):
                    from repro.core.errors import UnsupportedFeatureError

                    raise UnsupportedFeatureError(
                        "negating bare active-domain membership "
                        "(\\+ object: t) is not supported: the domain grows "
                        "monotonically across strata"
                    )

    # ------------------------------------------------------------------
    # Stratification (for the negation extension)
    # ------------------------------------------------------------------

    def _atom_symbols(self, atom: BodyAtom, for_query: bool) -> set[tuple]:
        """The evaluation symbols an atom touches.

        Types read through the hierarchy: querying ``tau`` consults the
        extents of every subtype, so its dependency set is the whole
        downset.  Asserting (``for_query=False``) touches exactly the
        asserted symbols.
        """
        from repro.core.clauses import _atom_labels, _atom_types

        symbols: set[tuple] = set()
        for type_name in _atom_types(atom):
            # `object` is the active domain: every derivation contributes
            # to it and it grows monotonically across strata, so it is
            # pinned at stratum 0 (and negating it is rejected).  Its
            # downset is every symbol, which must NOT become a dependency.
            if type_name == OBJECT:
                continue
            if for_query:
                for sub in self.hierarchy.subtypes(type_name):
                    if sub != OBJECT:
                        symbols.add(("t", sub))
            symbols.add(("t", type_name))
        for label in _atom_labels(atom):
            symbols.add(("l", label))
        inner = atom.atom if isinstance(atom, NegatedAtom) else atom
        if isinstance(inner, PredAtom):
            symbols.add(("p", inner.pred, inner.arity))
        return symbols

    def _stratify(self) -> list[list[DefiniteClause]]:
        """Partition the clauses into strata by their head symbols.

        Positive body symbols must sit at or below the head's stratum;
        negated ones strictly below.  Purely positive programs come out
        as a single stratum.
        """
        clauses = list(self.program.clauses)
        if not any(
            isinstance(atom, NegatedAtom)
            for clause in clauses
            for atom in clause.body
        ):
            return [clauses]
        stratum: dict[tuple, int] = {}

        def level(symbol: tuple) -> int:
            return stratum.setdefault(symbol, 0)

        deps: list[tuple[set[tuple], set[tuple], set[tuple]]] = []
        for clause in clauses:
            defined = self._atom_symbols(clause.head, for_query=False)
            positive: set[tuple] = set()
            negative: set[tuple] = set()
            for atom in clause.body:
                if isinstance(atom, NegatedAtom):
                    negative |= self._atom_symbols(atom, for_query=True)
                elif not isinstance(atom, BuiltinAtom):
                    positive |= self._atom_symbols(atom, for_query=True)
            deps.append((defined, positive, negative))
            for symbol in defined | positive | negative:
                level(symbol)
        for _ in range(len(stratum) + 1):
            changed = False
            for defined, positive, negative in deps:
                required = 0
                for symbol in positive:
                    required = max(required, stratum[symbol])
                for symbol in negative:
                    required = max(required, stratum[symbol] + 1)
                for symbol in defined:
                    if stratum[symbol] < required:
                        stratum[symbol] = required
                        changed = True
            if not changed:
                break
        else:
            raise EngineError(
                "the program is not stratifiable (recursion through negation)"
            )
        height = max(stratum.values(), default=0) + 1
        strata: list[list[DefiniteClause]] = [[] for _ in range(height)]
        for clause, (defined, __, ___) in zip(clauses, deps):
            clause_level = max((stratum[s] for s in defined), default=0)
            strata[clause_level].append(clause)
        return strata

    # ------------------------------------------------------------------
    # Query answering
    # ------------------------------------------------------------------

    def solve(self, query: Query):
        """All answers by decomposed (residual) evaluation — complete
        (over the saturated model; a governed run interrupted mid-solve
        degrades to a :class:`repro.runtime.PartialResult` with the
        answers found so far)."""
        self.saturate()
        variables = query.variables()
        out: list[Answer] = []
        seen: set[tuple] = set()
        try:
            for binding in self._solve_body(query.body, {}):
                answer = {
                    name: apply_binding(Var(name), binding)
                    for name in variables
                    if name in binding
                }
                key = tuple(sorted((k, repr(v)) for k, v in answer.items()))
                if key not in seen:
                    seen.add(key)
                    out.append(answer)
        except (ResourceExhausted, RecursionError) as exc:
            from repro.runtime.governor import as_resource_error, degrade

            exc = as_resource_error(exc)
            self.interrupted = exc
            return degrade(self._governor, exc, out)
        return out

    def holds(self, query: Query) -> bool:
        """True iff the query has at least one answer."""
        self.saturate()
        for _ in self._solve_body(query.body, {}):
            return True
        return False

    def solve_whole_term(self, query: Query) -> list[Answer]:
        """Naive whole-term unification against the clustered facts.

        Each term atom of the query must be satisfied *within a single
        stored fact*.  Incomplete for multi-valued labels spread across
        facts (E7); provided to reproduce that contrast.
        """
        self.saturate()
        variables = query.variables()
        out: list[Answer] = []
        seen: set[tuple] = set()
        for binding in self._solve_body_whole(tuple(query.body), 0, {}):
            answer = {
                name: apply_binding(Var(name), binding)
                for name in variables
                if name in binding
            }
            key = tuple(sorted((k, repr(v)) for k, v in answer.items()))
            if key not in seen:
                seen.add(key)
                out.append(answer)
        return out

    def solve_subsumption(self, query: Query) -> list[Answer]:
        """Answers via the description partial ordering on merged facts.

        Supported for queries whose atoms are term descriptions (no
        predicates or builtins) over an extensional database.
        """
        # Imported here: repro.db.subsume uses the C-level unifier from
        # this package, so a module-level import would be circular.
        from repro.db.subsume import answers_by_subsumption

        self.saturate()
        bindings: list[dict[str, BaseTerm]] = [{}]
        for atom in query.body:
            if not isinstance(atom, TermAtom):
                raise EngineError("subsumption solving handles term descriptions only")
            next_bindings: list[dict[str, BaseTerm]] = []
            for binding in bindings:
                from repro.core.terms import substitute_term

                bound_term = substitute_term(atom.term, _ground_binding(binding))
                for extension in answers_by_subsumption(bound_term, self.store):
                    merged = dict(binding)
                    merged.update(extension)
                    next_bindings.append(merged)
            bindings = next_bindings
        variables = query.variables()
        out: list[Answer] = []
        seen: set[tuple] = set()
        for binding in bindings:
            answer = {
                name: apply_binding(Var(name), binding)
                for name in variables
                if name in binding
            }
            key = tuple(sorted((k, repr(v)) for k, v in answer.items()))
            if key not in seen:
                seen.add(key)
                out.append(answer)
        return out

    # ------------------------------------------------------------------
    # Body solving (clustered, decomposed per label — the residual rule)
    # ------------------------------------------------------------------

    def _solve_body(
        self, body: Sequence[BodyAtom], binding: dict[str, BaseTerm]
    ) -> Iterator[dict[str, BaseTerm]]:
        # Negated atoms only test, never bind: solve them after the
        # positive goals so their shared variables are ground.
        ordered = [atom for atom in body if not isinstance(atom, NegatedAtom)]
        ordered.extend(atom for atom in body if isinstance(atom, NegatedAtom))
        yield from self._solve_ordered(ordered, 0, binding)

    def _solve_ordered(
        self, body: Sequence[BodyAtom], index: int, binding: dict[str, BaseTerm]
    ) -> Iterator[dict[str, BaseTerm]]:
        if index == len(body):
            yield binding
            return
        for extended in self._solve_atom(body[index], binding):
            yield from self._solve_ordered(body, index + 1, extended)

    def _solve_atom(
        self, atom: BodyAtom, binding: dict[str, BaseTerm]
    ) -> Iterator[dict[str, BaseTerm]]:
        if isinstance(atom, BuiltinAtom):
            solved = self._solve_builtin(atom, binding)
            if solved is not None:
                yield solved
            return
        if isinstance(atom, NegatedAtom):
            # Unbound variables here are existential inside the negation
            # (shared variables were bound by the positive goals, which
            # _solve_body orders first): fail iff the inner description
            # has any solution.
            for __ in self._solve_atom(atom.atom, binding):
                return  # the positive version holds: negation fails
            yield binding
            return
        if isinstance(atom, PredAtom):
            yield from self._solve_pred(atom, binding)
            return
        assert isinstance(atom, TermAtom)
        yield from self._solve_term(atom.term, binding)

    def _solve_pred(
        self, atom: PredAtom, binding: dict[str, BaseTerm]
    ) -> Iterator[dict[str, BaseTerm]]:
        rows = self.store.pred_rows(atom.pred, len(atom.args))
        yield from self._solve_pred_rows(atom, binding, rows)

    def _solve_pred_rows(
        self,
        atom: PredAtom,
        binding: dict[str, BaseTerm],
        rows,
    ) -> Iterator[dict[str, BaseTerm]]:
        for row in rows:
            self._tick()
            current: Optional[dict[str, BaseTerm]] = dict(binding)
            for arg, element in zip(atom.args, row):
                current = unify_identities(arg, element, current)
                if current is None:
                    break
            if current is None:
                continue
            # The tuple matched; now each argument's own assertions
            # (type membership, labels) must hold of the bound objects.
            yield from self._check_args(list(atom.args), 0, current)

    def _check_args(
        self, args: list[Term], index: int, binding: dict[str, BaseTerm]
    ) -> Iterator[dict[str, BaseTerm]]:
        if index == len(args):
            yield binding
            return
        for extended in self._solve_term(args[index], binding):
            yield from self._check_args(args, index + 1, extended)

    def _solve_term(
        self,
        term: Term,
        binding: dict[str, BaseTerm],
        candidates_override: Optional[set[BaseTerm]] = None,
    ) -> Iterator[dict[str, BaseTerm]]:
        """Enumerate bindings making the description ``term`` hold.

        Candidates for the object come from the type index (or directly
        from the binding when the identity is already ground); label
        constraints probe only the candidate's stored values — this is
        the clustered evaluation strategy.  ``candidates_override``
        restricts the search (the semi-naive delta).
        """
        base = term.base if isinstance(term, LTerm) else term
        resolved = apply_binding(strip_identity(base), binding)
        if not variables_of(resolved):
            identity = ground_id(resolved)
            if candidates_override is not None and identity not in candidates_override:
                return
            if not self.store.has_type(identity, base.type):
                return
            candidates: Iterator[BaseTerm] | list[BaseTerm] = [identity]
        elif candidates_override is not None:
            candidates = list(candidates_override)
        else:
            candidates = self.store.ids_of_type(base.type)
            candidates = self._narrow_candidates(term, binding, candidates)
        specs = list(spec_pairs(term)) if isinstance(term, LTerm) else []
        for identity in candidates:
            self._tick()
            self.stats.candidates += 1
            if candidates_override is not None and not self.store.has_type(
                identity, base.type
            ):
                continue
            extended = unify_identities(resolved, identity, binding)
            if extended is None:
                continue
            for with_args in self._check_func_args(base, extended):
                yield from self._solve_specs(specs, 0, identity, with_args)

    def _narrow_candidates(
        self,
        term: Term,
        binding: dict[str, BaseTerm],
        candidates: set[BaseTerm],
    ) -> list[BaseTerm]:
        """Use the inverted label index when some label value is ground:
        the hosts of that (label, value) pair are usually far fewer than
        the type extent."""
        if not isinstance(term, LTerm):
            return list(candidates)
        best: Optional[frozenset[BaseTerm]] = None
        for label, value in spec_pairs(term):
            resolved = apply_binding(strip_identity(value), binding)
            if variables_of(resolved):
                continue
            hosts = self.store.label_hosts(label, ground_id(resolved))
            if best is None or len(hosts) < len(best):
                best = hosts
        if best is None:
            return list(candidates)
        return [identity for identity in best if identity in candidates]

    def _check_func_args(
        self, base: BaseTerm, binding: dict[str, BaseTerm]
    ) -> Iterator[dict[str, BaseTerm]]:
        """For a function-term identity ``tau: f(t1, ..., tn)``, every
        argument term's own assertions must hold (the ``ti*`` conjuncts
        of the transformation)."""
        if not isinstance(base, Func):
            yield binding
            return
        yield from self._check_args(list(base.args), 0, binding)

    def _solve_specs(
        self,
        specs: list[tuple[str, Term]],
        index: int,
        identity: BaseTerm,
        binding: dict[str, BaseTerm],
    ) -> Iterator[dict[str, BaseTerm]]:
        """Solve one label constraint at a time against the store — the
        residual technique: each constraint may be supported by a
        different underlying fact."""
        if index == len(specs):
            yield binding
            return
        label, value = specs[index]
        value_base = value.base if isinstance(value, LTerm) else value
        resolved = apply_binding(strip_identity(value_base), binding)
        if not variables_of(resolved):
            self.stats.label_probes += 1
            if not self.store.holds_label(label, identity, ground_id(resolved)):
                return
            for extended in self._solve_term(value, binding):
                yield from self._solve_specs(specs, index + 1, identity, extended)
            return
        for stored_value in self.store.label_values(label, identity):
            self.stats.label_probes += 1
            extended = unify_identities(resolved, stored_value, binding)
            if extended is None:
                continue
            for checked in self._solve_value_assertions(value, extended):
                yield from self._solve_specs(specs, index + 1, identity, checked)

    def _solve_value_assertions(
        self, value: Term, binding: dict[str, BaseTerm]
    ) -> Iterator[dict[str, BaseTerm]]:
        """Check a label value's own description (type + nested labels).

        Fast path: a plain ``object``-typed variable or constant needs
        nothing — every stored label value is in the active domain.
        """
        if isinstance(value, (Var, Const)) and value.type == OBJECT:
            yield binding
            return
        yield from self._solve_term(value, binding)

    # ------------------------------------------------------------------
    # Builtins (C-level arithmetic)
    # ------------------------------------------------------------------

    def _solve_builtin(
        self, atom: BuiltinAtom, binding: dict[str, BaseTerm]
    ) -> Optional[dict[str, BaseTerm]]:
        lhs = apply_binding(strip_identity(atom.args[0]), binding)
        rhs_term = atom.args[1]
        if atom.op == "=":
            return unify_identities(lhs, strip_identity(rhs_term), binding)
        if atom.op == "is":
            value = Const(self._eval_arith(rhs_term, binding))
            return unify_identities(lhs, value, binding)
        compare = _COMPARE[atom.op]
        if compare(self._eval_arith(atom.args[0], binding), self._eval_arith(rhs_term, binding)):
            return binding
        return None

    def _eval_arith(self, term: Term, binding: dict[str, BaseTerm]) -> int:
        resolved = apply_binding(strip_identity(term), binding)
        return _eval_ground_arith(resolved)

    # ------------------------------------------------------------------
    # Whole-term (naive) matching
    # ------------------------------------------------------------------

    def _solve_body_whole(
        self, body: tuple[BodyAtom, ...], index: int, binding: dict[str, BaseTerm]
    ) -> Iterator[dict[str, BaseTerm]]:
        if index == len(body):
            yield binding
            return
        atom = body[index]
        if isinstance(atom, BuiltinAtom):
            solved = self._solve_builtin(atom, binding)
            if solved is not None:
                yield from self._solve_body_whole(body, index + 1, solved)
            return
        if isinstance(atom, PredAtom):
            for extended in self._solve_pred(atom, binding):
                yield from self._solve_body_whole(body, index + 1, extended)
            return
        assert isinstance(atom, TermAtom)
        for extended in self._match_whole(atom.term, binding):
            yield from self._solve_body_whole(body, index + 1, extended)

    def _match_whole(
        self, query: Term, binding: dict[str, BaseTerm]
    ) -> Iterator[dict[str, BaseTerm]]:
        """Unify the whole query description against each single stored
        fact — every label constraint must be satisfied by that fact."""
        query_base = query.base if isinstance(query, LTerm) else query
        query_specs = list(spec_pairs(query)) if isinstance(query, LTerm) else []
        for fact in self.store.clustered_facts():
            self._tick()
            self.stats.candidates += 1
            fact_base = fact.base if isinstance(fact, LTerm) else fact
            if not self.hierarchy.is_subtype(fact_base.type, query_base.type):
                continue
            # Bind against the canonical (type-erased) identities so
            # answers are comparable with residual solving's.
            current = unify_identities(query_base, ground_id(fact_base), binding)
            if current is None:
                continue
            fact_values: dict[str, list[Term]] = {}
            if isinstance(fact, LTerm):
                for label, value in spec_pairs(fact):
                    fact_values.setdefault(label, []).append(ground_id(value))
            yield from self._match_whole_specs(query_specs, 0, fact_values, current)

    def _match_whole_specs(
        self,
        specs: list[tuple[str, Term]],
        index: int,
        fact_values: dict[str, list[Term]],
        binding: dict[str, BaseTerm],
    ) -> Iterator[dict[str, BaseTerm]]:
        if index == len(specs):
            yield binding
            return
        label, value = specs[index]
        for fact_value in fact_values.get(label, ()):
            extended = unify_identities(value, fact_value, binding)
            if extended is not None:
                yield from self._match_whole_specs(specs, index + 1, fact_values, extended)


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------

def _eval_ground_arith(term: Term) -> int:
    if isinstance(term, Const):
        if isinstance(term.value, int):
            return term.value
        raise BuiltinError(f"non-numeric constant {term.value!r} in arithmetic")
    if isinstance(term, Var):
        raise BuiltinError(f"unbound variable {term.name} in arithmetic")
    if isinstance(term, Func):
        op = _ARITH.get(term.functor)
        if op is None or len(term.args) != 2:
            raise BuiltinError(f"unknown arithmetic functor {term.functor}/{len(term.args)}")
        return op(
            _eval_ground_arith(strip_identity(term.args[0])),
            _eval_ground_arith(strip_identity(term.args[1])),
        )
    raise BuiltinError(f"not an arithmetic term: {term!r}")


def _ground_binding(binding: Binding) -> dict[str, Term]:
    """Fully apply a triangular binding for use with substitute_atom."""
    return {name: apply_binding(Var(name), binding) for name in binding}


def _atom_ground(atom: BodyAtom) -> bool:
    if isinstance(atom, TermAtom):
        return is_ground(atom.term)
    return all(is_ground(arg) for arg in atom.args)
