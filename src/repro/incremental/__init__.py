"""Incremental maintenance of materialized derived facts.

The paper's dynamic notion of types (Section 2.3) makes updates
first-class: "membership may be changed by database updates".  This
package keeps a materialized minimal model consistent under fact
insertions and retractions without recomputing the fixpoint:

* :mod:`repro.incremental.strata` — the stratum scheduler: SCCs of the
  positive predicate dependency graph in topological order, each
  flagged recursive or not;
* :mod:`repro.incremental.engine` — the maintenance engine: semi-naive
  insertion deltas over compiled :class:`~repro.engine.join.JoinPlan`\\ s,
  counting-based deletion for non-recursive strata, DRed
  (delete/rederive) for recursive ones.

The transactional surface lives one layer up, in
:meth:`repro.interface.kb.KnowledgeBase.transaction`.
"""

from repro.incremental.engine import IncrementalEngine, MaintenanceStats
from repro.incremental.strata import Stratum, StratumRule, stratify_rules

__all__ = [
    "IncrementalEngine",
    "MaintenanceStats",
    "Stratum",
    "StratumRule",
    "stratify_rules",
]
