"""The incremental maintenance engine: counting + delete/rederive.

A materialized minimal model is kept consistent under external fact
insertions *and* retractions in O(change) instead of O(database):

* **Insertions** reuse the semi-naive machinery directly — the update
  batch is stamped into a fresh :class:`~repro.engine.factbase.FactBase`
  round and becomes the seed delta, so only rule instantiations that
  touch a new fact are ever enumerated (via the compiled
  :class:`~repro.engine.join.JoinPlan` delta partition).

* **Retractions** split by stratum.  Non-recursive strata are repaired
  by *counting*: the engine maintains the exact number of rule
  instantiations deriving each fact (the semi-naive partition
  enumerates each instantiation exactly once, so the counts stay exact
  for free), and a fact dies when its last derivation — and its last
  external assertion — is gone.  Recursive strata use *DRed*
  (delete/rederive): transitively overdelete everything the retracted
  facts could have supported, then rederive whatever still has a
  derivation from surviving facts, iterating until stable.

External assertions are multiplicities (:class:`repro.db.counts.FactCounts`):
one C-logic description translates to several first-order conjuncts and
distinct descriptions share conjuncts, so presence means *externally
asserted or derivable*, never just "was inserted once".

The per-round derivation discipline differs from
:func:`repro.engine.seminaive.seminaive_fixpoint` in one respect: heads
derived during a sweep are buffered and only enter the fact base when
the sweep ends.  The eager engine may enumerate an instantiation in the
round that created its newest fact *and* again in the next round —
harmless under set semantics, fatal for counting.  Buffering restores
the textbook exactly-once property the counts rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Union

from repro.core.errors import BudgetExceeded, EngineError, ResourceExhausted
from repro.db.counts import FactCounts
from repro.runtime.faults import fault_point, register_fault_point
from repro.engine.bottomup import ClauseLike, normalize_clauses
from repro.engine.factbase import FactBase
from repro.engine.join import compile_body
from repro.fol.atoms import (
    FAtom,
    FBuiltin,
    FOLProgram,
    atom_is_ground,
    substitute_fatom,
)
from repro.fol.unify import match_atom
from repro.incremental.strata import Stratum, StratumRule, stratify_rules

__all__ = ["IncrementalEngine", "MaintenanceStats"]

# Failure points for the fault-injection harness: each marks the moment
# *before* a maintenance phase mutates engine state, so an injected
# crash leaves the phases before it applied and the rest not — the
# partially-maintained states transaction rollback must undo.
_FP_APPLY_BEGIN = register_fault_point("incremental.apply.begin")
_FP_APPLY_PROPAGATE = register_fault_point("incremental.apply.propagate")
_FP_APPLY_EXPAND = register_fault_point("incremental.apply.expand")
_FP_APPLY_FINISH = register_fault_point("incremental.apply.finish")


@dataclass
class MaintenanceStats:
    """Counters for one maintenance run (materialize or apply).

    Publishes into a :class:`~repro.obs.MetricsRegistry` like the other
    engines' stats, and doubles as the maintenance section of an
    :class:`~repro.obs.ExplainReport` (which reads the fields by name).
    """

    operation: str = ""
    strata: int = 0
    recursive_strata: int = 0
    rounds: int = 0
    body_evaluations: int = 0
    edb_inserted: int = 0
    edb_retracted: int = 0
    retracts_ignored: int = 0
    facts_new: int = 0
    facts_deleted: int = 0
    facts_overdeleted: int = 0
    facts_rederived: int = 0
    counts_incremented: int = 0
    counts_decremented: int = 0
    fallback: str = ""

    #: Registry namespace the counters publish under.
    PREFIX = "maintenance"

    def publish(self, registry, prefix: str = PREFIX) -> None:
        """Add the numeric counters to a registry as ``{prefix}.{field}``."""
        from repro.obs.metrics import publish_dataclass

        publish_dataclass(registry, self, prefix)


class IncrementalEngine:
    """A materialized minimal model maintained under updates.

    Build it from the same clause collections the fixpoint engines
    accept (an :class:`~repro.fol.atoms.FOLProgram`, Horn clauses, or
    generalized clauses — fact clauses become the initial external
    assertions), call :meth:`materialize` once, then :meth:`apply`
    batches of insertions/retractions.  After every call,
    :attr:`facts` equals what
    :func:`~repro.engine.seminaive.seminaive_fixpoint` would compute
    from scratch on the updated assertion set (the property the
    correctness harness checks on random update sequences).
    """

    def __init__(
        self,
        clauses: Union[FOLProgram, Iterable[ClauseLike]],
        max_rounds: int = 10_000,
    ) -> None:
        generalized = normalize_clauses(clauses)
        self.max_rounds = max_rounds
        #: External assertion multiplicities (the EDB as a multiset).
        self.edb = FactCounts()
        #: Exact derivation counts for counted (non-recursive) strata.
        self.counts = FactCounts()
        rules = []
        for clause in generalized:
            if clause.is_fact:
                for head in clause.heads:
                    if not atom_is_ground(head):
                        raise EngineError(
                            f"fact clause head {head.pred}/{head.arity} is "
                            "not ground"
                        )
                    self.edb.increment(head)
            else:
                rules.extend(clause.split())
        self.strata: list[Stratum] = stratify_rules(rules)
        self.counted_preds: frozenset = frozenset(
            signature
            for stratum in self.strata
            if not stratum.recursive
            for signature in stratum.preds
        )
        self.recursive_preds: frozenset = frozenset(
            signature
            for stratum in self.strata
            if stratum.recursive
            for signature in stratum.preds
        )
        self._stratum_of = {
            signature: index
            for index, stratum in enumerate(self.strata)
            for signature in stratum.preds
        }
        self.facts = FactBase()
        #: Bumped by :meth:`materialize` and every :meth:`apply` — the
        #: transactional layer's snapshot counter reads it.
        self.version = 0
        #: The stats of the most recent materialize/apply run.
        self.last_stats: Optional[MaintenanceStats] = None
        self._materialized = False

    # ------------------------------------------------------------------
    # Materialization (the from-scratch baseline state)
    # ------------------------------------------------------------------

    def materialize(self, tracer=None, report=None, governor=None):
        """(Re)compute the model from the current external assertions.

        Uses the same buffered semi-naive sweeps as insertion
        maintenance, with the whole EDB as the round-0 seed delta — so
        the derivation counts recorded here are exactly the ones
        :meth:`apply` later maintains.

        A non-strict ``governor`` limit tripping mid-materialization
        degrades to a :class:`repro.runtime.PartialResult` over the
        partial fact base; the engine stays unmaterialized, so the next
        call recomputes from scratch.
        """
        stats = MaintenanceStats(
            operation="materialize",
            strata=len(self.strata),
            recursive_strata=sum(1 for s in self.strata if s.recursive),
        )
        self.last_stats = stats
        span = tracer.start("incremental.materialize") if tracer else None
        self.facts = FactBase()
        self.counts.clear()
        self._observe(report, stats)
        for atom in self.edb:
            self.facts.add(atom)
        if governor is not None:
            governor.start()
        try:
            for stratum in self.strata:
                self._expand_stratum(stratum, 0, stats, governor)
        except (ResourceExhausted, RecursionError) as exc:
            from repro.runtime.governor import as_resource_error, degrade

            exc = as_resource_error(exc)
            self.version += 1
            if span is not None:
                span.count("facts", len(self.facts))
                tracer.finish(span)
            self._finish(report, stats)
            return degrade(governor, exc, self.facts, report)
        self._materialized = True
        self.version += 1
        if span is not None:
            span.count("facts", len(self.facts))
            tracer.finish(span)
        self._finish(report, stats)
        return self.facts

    # ------------------------------------------------------------------
    # The transactional entry point
    # ------------------------------------------------------------------

    def apply(
        self,
        inserts: Iterable[FAtom] = (),
        retracts: Iterable[FAtom] = (),
        tracer=None,
        report=None,
        governor=None,
    ) -> MaintenanceStats:
        """Apply one batch of external insertions and retractions.

        The batch is netted per atom first (inserting and retracting
        the same fact cancels), retraction effects are propagated
        before insertion effects, and retracting a fact that was never
        asserted is ignored (counted in ``retracts_ignored``, matching
        :meth:`repro.db.updates.UpdatableStore`'s ``False``).

        A ``governor`` bounds the maintenance run; a tripped limit
        *propagates* as :class:`~repro.core.errors.ResourceExhausted`
        rather than degrading, because a half-maintained model is not a
        sound partial result — the transactional caller
        (:class:`repro.interface.kb.KnowledgeBase`) restores its
        checkpoint and surfaces the rollback as a ``PartialResult``.
        """
        if not self._materialized:
            self.materialize()
        fault_point(_FP_APPLY_BEGIN)
        if governor is not None:
            governor.start()
        stats = MaintenanceStats(
            operation="apply",
            strata=len(self.strata),
            recursive_strata=sum(1 for s in self.strata if s.recursive),
        )
        self.last_stats = stats
        self._observe(report, stats)
        net: dict[FAtom, int] = {}
        for atom in inserts:
            self._check_updatable(atom)
            net[atom] = net.get(atom, 0) + 1
        for atom in retracts:
            self._check_updatable(atom)
            net[atom] = net.get(atom, 0) - 1
        batch: list[FAtom] = []
        certain: set[FAtom] = set()
        suspects: dict[int, set[FAtom]] = {}
        for atom, delta in net.items():
            if delta > 0:
                had = self.edb.get(atom)
                self.edb.increment(atom, delta)
                stats.edb_inserted += delta
                if had == 0 and atom not in self.facts:
                    batch.append(atom)
            elif delta < 0:
                have = self.edb.get(atom)
                take = min(-delta, have)
                stats.retracts_ignored += -delta - take
                if take == 0:
                    continue
                stats.edb_retracted += take
                if self.edb.decrement(atom, take) == 0:
                    signature = atom.signature
                    if signature in self.recursive_preds:
                        # Maybe rederivable: DRed decides, not us.
                        suspects.setdefault(
                            self._stratum_of[signature], set()
                        ).add(atom)
                    elif self.counts.get(atom) == 0:
                        # Counted or purely extensional, with no
                        # surviving derivation: certainly gone.
                        certain.add(atom)
        span = tracer.start("incremental.apply") if tracer else None
        if certain or suspects:
            fault_point(_FP_APPLY_PROPAGATE)
            delete_span = tracer.start("incremental.delete") if tracer else None
            deleted = self._propagate_deletions(certain, suspects, stats, governor)
            if delete_span is not None:
                delete_span.count("deleted", len(deleted))
                delete_span.count("overdeleted", stats.facts_overdeleted)
                delete_span.count("rederived", stats.facts_rederived)
                tracer.finish(delete_span)
        if batch:
            fault_point(_FP_APPLY_EXPAND)
            insert_span = tracer.start("incremental.insert") if tracer else None
            base = self.facts.next_round()
            stats.facts_new += self.facts.add_all(batch)
            for stratum in self.strata:
                self._expand_stratum(stratum, base, stats, governor)
            if insert_span is not None:
                insert_span.count("facts_new", stats.facts_new)
                tracer.finish(insert_span)
        fault_point(_FP_APPLY_FINISH)
        self.version += 1
        if span is not None:
            span.set("version", self.version)
            tracer.finish(span)
        self._finish(report, stats)
        return stats

    # ------------------------------------------------------------------
    # Insertion maintenance: buffered semi-naive sweeps per stratum
    # ------------------------------------------------------------------

    def _expand_stratum(
        self, stratum: Stratum, base_round: int, stats: MaintenanceStats, governor=None
    ) -> None:
        """Saturate one stratum, treating every fact stamped at or
        after ``base_round`` as the seed delta.  With ``base_round=0``
        this materializes the stratum from scratch; with the current
        update round it is insertion maintenance.  Derived heads are
        buffered per sweep (see module docs), so each rule
        instantiation is enumerated exactly once across the stratum's
        lifetime — which is what keeps the derivation counts exact.
        """
        facts = self.facts
        counted = not stratum.recursive
        counts = self.counts
        delta = base_round
        first = True
        for _ in range(self.max_rounds):
            derived: list[FAtom] = []
            for rule in stratum.rules:
                head = rule.clause.head
                if not rule.positions:
                    # A pure-builtin body fires once ever, while
                    # materializing; updates cannot change it.
                    if first and base_round == 0:
                        for subst in rule.plan.run(facts):
                            if governor is not None:
                                governor.tick()
                            stats.body_evaluations += 1
                            fact = substitute_fatom(head, subst)
                            assert isinstance(fact, FAtom)
                            if counted:
                                counts.increment(fact)
                                stats.counts_incremented += 1
                            derived.append(fact)
                    continue
                for position in rule.positions:
                    for subst in rule.plan.run_delta(facts, position, delta):
                        if governor is not None:
                            governor.tick()
                        stats.body_evaluations += 1
                        fact = substitute_fatom(head, subst)
                        assert isinstance(fact, FAtom)
                        if counted:
                            counts.increment(fact)
                            stats.counts_incremented += 1
                        derived.append(fact)
            first = False
            fresh = [fact for fact in derived if fact not in facts]
            if not fresh:
                return
            stats.rounds += 1
            delta = facts.next_round()
            stats.facts_new += facts.add_all(fresh)
            if governor is not None:
                governor.tick()
                governor.check_facts(len(facts))
        raise BudgetExceeded(
            f"no fixpoint within {self.max_rounds} rounds "
            "(non-terminating program?)"
        )

    # ------------------------------------------------------------------
    # Retraction maintenance
    # ------------------------------------------------------------------

    def _propagate_deletions(
        self,
        certain: set[FAtom],
        suspects: dict[int, set[FAtom]],
        stats: MaintenanceStats,
        governor=None,
    ) -> set[FAtom]:
        """Drive the deleted set through the strata in dependency
        order; counted strata decrement, recursive strata run DRed.
        Facts stay physically in the base until the very end so every
        join sees the pre-deletion state, then are removed in one
        batch (no join is live at that point)."""
        deleted: set[FAtom] = set(certain)
        for index, stratum in enumerate(self.strata):
            if governor is not None:
                governor.tick()
            if stratum.recursive:
                self._dred_stratum(
                    stratum, deleted, suspects.get(index, set()), stats, governor
                )
            else:
                self._count_down_stratum(stratum, deleted, stats, governor)
        removed = self.facts.remove_all(deleted)
        stats.facts_deleted += removed
        for fact in deleted:
            self.counts.discard(fact)
        return deleted

    def _count_down_stratum(
        self,
        stratum: Stratum,
        deleted: set[FAtom],
        stats: MaintenanceStats,
        governor=None,
    ) -> None:
        """Counting maintenance for a non-recursive stratum: every rule
        instantiation that consumed a deleted fact loses one derivation
        count — each instantiation exactly once, attributed to its
        *first* deleted body position (the deletion-side mirror of the
        semi-naive insertion partition)."""
        by_signature: dict[tuple[str, int], list[FAtom]] = {}
        for fact in deleted:
            by_signature.setdefault(fact.signature, []).append(fact)
        zeroed: list[FAtom] = []
        for rule in stratum.rules:
            body = rule.clause.body
            head = rule.clause.head
            for position in rule.positions:
                pattern = body[position]
                assert isinstance(pattern, FAtom)
                victims = by_signature.get(pattern.signature)
                if not victims:
                    continue
                rest = _rest_plan(body, position)
                earlier = [p for p in rule.positions if p < position]
                for victim in victims:
                    seed = match_atom(pattern, victim)
                    if seed is None:
                        continue
                    for subst in rest.run(self.facts, initial=seed):
                        if governor is not None:
                            governor.tick()
                        stats.body_evaluations += 1
                        if any(
                            substitute_fatom(body[p], subst) in deleted
                            for p in earlier
                        ):
                            continue  # already counted at position p
                        fact = substitute_fatom(head, subst)
                        assert isinstance(fact, FAtom)
                        stats.counts_decremented += 1
                        if (
                            self.counts.decrement(fact) == 0
                            and self.edb.get(fact) == 0
                        ):
                            zeroed.append(fact)
        deleted.update(zeroed)

    def _dred_stratum(
        self,
        stratum: Stratum,
        deleted: set[FAtom],
        suspects: set[FAtom],
        stats: MaintenanceStats,
        governor=None,
    ) -> None:
        """DRed for a recursive stratum: overdelete transitively against
        the pre-deletion state, rederive from surviving facts until
        stable, and commit whatever could not be rescued."""
        facts = self.facts
        body_signatures = {
            atom.signature
            for rule in stratum.rules
            for atom in rule.clause.body
            if isinstance(atom, FAtom)
        }
        over: set[FAtom] = {s for s in suspects if s in facts}
        queue: list[FAtom] = [
            fact for fact in deleted if fact.signature in body_signatures
        ]
        queue.extend(over)
        # Phase 1 — overdeletion closure.  Set semantics: each dead or
        # doomed fact is expanded once per matching body position; the
        # joins run against the physically intact pre-state.
        while queue:
            victim = queue.pop()
            if governor is not None:
                governor.tick()
            for rule in stratum.rules:
                body = rule.clause.body
                head = rule.clause.head
                for position in rule.positions:
                    pattern = body[position]
                    assert isinstance(pattern, FAtom)
                    if pattern.signature != victim.signature:
                        continue
                    seed = match_atom(pattern, victim)
                    if seed is None:
                        continue
                    rest = _rest_plan(body, position)
                    for subst in rest.run(facts, initial=seed):
                        stats.body_evaluations += 1
                        fact = substitute_fatom(head, subst)
                        assert isinstance(fact, FAtom)
                        if fact in over or fact in deleted:
                            continue
                        over.add(fact)
                        queue.append(fact)
        stats.facts_overdeleted += len(over)
        # Phase 2 — rederivation: a doomed fact survives if it is still
        # externally asserted, or some rule instantiation derives it
        # from facts that are neither deleted nor themselves doomed.
        # Each rescue can unlock further rescues, so iterate to a
        # fixpoint.
        rules_by_head: dict[tuple[str, int], list[StratumRule]] = {}
        for rule in stratum.rules:
            rules_by_head.setdefault(rule.clause.head.signature, []).append(rule)
        changed = True
        while changed:
            changed = False
            for fact in list(over):
                if governor is not None:
                    governor.tick()
                if self.edb.get(fact) > 0 or self._rederivable(
                    fact, rules_by_head, deleted, over, stats
                ):
                    over.discard(fact)
                    stats.facts_rederived += 1
                    changed = True
        deleted.update(over)

    def _rederivable(
        self,
        fact: FAtom,
        rules_by_head: dict[tuple[str, int], list[StratumRule]],
        deleted: set[FAtom],
        over: set[FAtom],
        stats: MaintenanceStats,
    ) -> bool:
        for rule in rules_by_head.get(fact.signature, ()):
            seed = match_atom(rule.clause.head, fact)
            if seed is None:
                continue
            body = rule.clause.body
            if len(body) == 1 and isinstance(body[0], FAtom):
                # Single-atom body whose head bindings ground it: a
                # membership probe replaces the join machinery.
                candidate = substitute_fatom(body[0], seed)
                if isinstance(candidate, FAtom) and atom_is_ground(candidate):
                    stats.body_evaluations += 1
                    if (
                        candidate in self.facts
                        and candidate not in deleted
                        and candidate not in over
                    ):
                        return True
                    continue
            for subst in rule.plan.run(self.facts, initial=seed):
                stats.body_evaluations += 1
                if all(
                    substitute_fatom(body[p], subst) not in deleted
                    and substitute_fatom(body[p], subst) not in over
                    for p in rule.positions
                ):
                    return True
        return False

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    @staticmethod
    def _check_updatable(atom: FAtom) -> None:
        if not isinstance(atom, FAtom):
            raise EngineError(f"updates carry plain facts, got {atom!r}")
        if not atom_is_ground(atom):
            raise EngineError(
                f"update fact {atom.pred}/{atom.arity} is not ground"
            )

    def _observe(self, report, stats: MaintenanceStats) -> None:
        if report is None:
            return
        report.engine = report.engine or "incremental"
        report.maintenance = stats
        self.facts.observe(report.index)

    def _finish(self, report, stats: MaintenanceStats) -> None:
        if report is None:
            return
        report.rounds += stats.rounds
        report.facts_total = len(self.facts)
        self.facts.observe(None)

    def snapshot(self) -> frozenset[FAtom]:
        """The maintained model as a frozen set (what the correctness
        harness compares against a from-scratch fixpoint)."""
        return self.facts.snapshot()

    # ------------------------------------------------------------------
    # Transactional checkpointing
    # ------------------------------------------------------------------

    def checkpoint(self) -> dict:
        """Capture everything :meth:`apply` mutates, for rollback.

        The fact base is captured as its atom snapshot and rebuilt on
        restore with all round stamps reset — safe, because every later
        maintenance run seeds its delta from a *fresh* round stamped
        after the rebuild (``next_round`` before the batch lands), so
        pre-existing facts only ever need to be "old"."""
        return {
            "edb": self.edb.copy(),
            "counts": self.counts.copy(),
            "facts": self.facts.snapshot(),
            "version": self.version,
            "materialized": self._materialized,
            "last_stats": self.last_stats,
        }

    def restore(self, checkpoint: dict) -> None:
        """Roll the engine back to a :meth:`checkpoint`."""
        self.edb = checkpoint["edb"].copy()
        self.counts = checkpoint["counts"].copy()
        self.facts = FactBase(checkpoint["facts"])
        self.version = checkpoint["version"]
        self._materialized = checkpoint["materialized"]
        self.last_stats = checkpoint["last_stats"]


def _rest_plan(body: tuple, position: int):
    """The compiled plan for ``body`` minus the atom at ``position`` —
    the deletion-side join (seed a doomed fact there, join the rest
    against the pre-state).  ``compile_body`` caches by body tuple, so
    repeated maintenance runs reuse these plans like any other."""
    return compile_body(body[:position] + body[position + 1 :])
