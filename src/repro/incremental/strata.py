"""Predicate-dependency stratification for incremental maintenance.

The maintenance engine needs to know, per derived predicate, whether a
deletion can be repaired by *counting* (exact derivation counts — sound
only when a fact can never participate in its own derivation) or needs
*DRed* (delete/rederive — the general algorithm for recursion).  The
boundary is the condensation of the positive predicate dependency
graph: each strongly connected component becomes one stratum, strata
are processed in topological order, and a stratum is *recursive* iff
its component contains a cycle (several mutually dependent predicates,
or one predicate depending on itself).

Only the positive fragment is handled — the same restriction as the
positive fixpoint engines; rules with negated atoms are rejected here
so the engine never maintains something it cannot maintain correctly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import EngineError
from repro.engine.join import JoinPlan, check_range_restricted, compile_body
from repro.fol.atoms import FAtom, FBuiltin, HornClause, NegAtom

__all__ = ["Stratum", "StratumRule", "stratify_rules"]


@dataclass(frozen=True, slots=True)
class StratumRule:
    """One Horn rule prepared for maintenance: its compiled plan and
    the joinable (positive, non-builtin) body positions."""

    clause: HornClause
    plan: JoinPlan
    positions: tuple[int, ...]


@dataclass(slots=True)
class Stratum:
    """One SCC of the predicate dependency graph, in topological order."""

    preds: frozenset[tuple[str, int]]
    recursive: bool
    rules: list[StratumRule] = field(default_factory=list)


def _dependencies(
    rules: list[HornClause],
) -> tuple[dict[tuple[str, int], set[tuple[str, int]]], set[tuple[str, int]]]:
    """``head signature -> positive body signatures`` plus every
    signature mentioned anywhere (EDB-only predicates become isolated
    nodes so each gets a stratum of its own)."""
    graph: dict[tuple[str, int], set[tuple[str, int]]] = {}
    nodes: set[tuple[str, int]] = set()
    for rule in rules:
        head = rule.head.signature
        nodes.add(head)
        edges = graph.setdefault(head, set())
        for atom in rule.body:
            if isinstance(atom, NegAtom):
                raise EngineError(
                    "incremental maintenance handles the positive fragment "
                    "only; the program negates "
                    f"{atom.signature[0]}/{atom.signature[1]}"
                )
            if isinstance(atom, FBuiltin):
                continue
            assert isinstance(atom, FAtom)
            edges.add(atom.signature)
            nodes.add(atom.signature)
    return graph, nodes


def _tarjan(
    graph: dict[tuple[str, int], set[tuple[str, int]]],
    nodes: set[tuple[str, int]],
) -> list[list[tuple[str, int]]]:
    """Tarjan's SCC algorithm, iterative.  Components come out in
    reverse topological order of the condensation (a component is
    emitted only after everything it depends on... depends on *it*);
    since our edges point head -> body, the emission order is exactly
    dependencies-first, which is the evaluation order we want."""
    index_of: dict[tuple[str, int], int] = {}
    low: dict[tuple[str, int], int] = {}
    on_stack: set[tuple[str, int]] = set()
    stack: list[tuple[str, int]] = []
    components: list[list[tuple[str, int]]] = []
    counter = 0
    for root in sorted(nodes):
        if root in index_of:
            continue
        work: list[tuple[tuple[str, int], list]] = [
            (root, sorted(graph.get(root, ())))
        ]
        index_of[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, edges = work[-1]
            advanced = False
            while edges:
                successor = edges.pop()
                if successor not in index_of:
                    index_of[successor] = low[successor] = counter
                    counter += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, sorted(graph.get(successor, ()))))
                    advanced = True
                    break
                if successor in on_stack:
                    low[node] = min(low[node], index_of[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def stratify_rules(rules: list[HornClause]) -> list[Stratum]:
    """Partition ``rules`` into maintenance strata.

    Each returned :class:`Stratum` owns the rules whose head predicate
    lies in its component, carries compiled :class:`JoinPlan`\\ s, and
    is flagged recursive when the component has a cycle.  The list is
    in dependency order: by the time a stratum is maintained, every
    predicate its rule bodies read from has already been repaired.
    """
    for rule in rules:
        check_range_restricted((rule.head,), rule.body)
    graph, nodes = _dependencies(rules)
    components = _tarjan(graph, nodes)
    member_of: dict[tuple[str, int], int] = {}
    strata: list[Stratum] = []
    for component in components:
        signatures = frozenset(component)
        recursive = len(component) > 1 or any(
            member in graph.get(member, ()) for member in component
        )
        for member in component:
            member_of[member] = len(strata)
        strata.append(Stratum(preds=signatures, recursive=recursive))
    for rule in rules:
        stratum = strata[member_of[rule.head.signature]]
        positions = tuple(
            index
            for index, atom in enumerate(rule.body)
            if not isinstance(atom, FBuiltin)
        )
        stratum.rules.append(
            StratumRule(
                clause=rule, plan=compile_body(rule.body), positions=positions
            )
        )
    return [stratum for stratum in strata if stratum.rules]
