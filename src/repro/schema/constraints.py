"""Constraints over database states — the layer *above* C-logic.

Section 2.2/2.3: functionality of labels and structural obligations are
"better treated with schema information and other constraints over the
database state", deliberately not built into the logic.  Section 6
names extending C-logic with such meta-data as future work.  This
module supplies that layer: declarative constraints checked against a
saturated :class:`~repro.db.ObjectStore`, reported (never enforced by
the logic itself — a violated constraint does not make the *program*
inconsistent, unlike O-logic).

Constraint kinds:

* :class:`FunctionalLabel` — at most one value per object (what O-logic
  hard-wires for every label);
* :class:`DomainConstraint` — typing of a label's hosts and values
  (the "domain constraints" of Section 6);
* :class:`RequiredLabel` — every member of a type carries the label
  (the obligation half of the static notion of types);
* :class:`Cardinality` — bounds on the number of values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core.errors import ConsistencyError
from repro.core.pretty import pretty_term
from repro.core.terms import BaseTerm, OBJECT
from repro.db.store import ObjectStore

__all__ = [
    "Violation",
    "Constraint",
    "FunctionalLabel",
    "DomainConstraint",
    "RequiredLabel",
    "Cardinality",
    "Schema",
]


@dataclass(frozen=True, slots=True)
class Violation:
    """One constraint violation, human-readable."""

    constraint: str
    subject: Optional[BaseTerm]
    detail: str

    def __str__(self) -> str:
        where = f" on {pretty_term(self.subject)}" if self.subject is not None else ""
        return f"[{self.constraint}]{where}: {self.detail}"


class Constraint:
    """Base class: a named check against a store."""

    name: str = "constraint"

    def check(self, store: ObjectStore) -> list[Violation]:  # pragma: no cover
        raise NotImplementedError


@dataclass(frozen=True)
class FunctionalLabel(Constraint):
    """``label`` has at most one value per object.

    This is exactly the single-valued-label feature the paper keeps out
    of the logic ("multi-valued labels do not have the builtin
    functionality constraint, and thus are easier to implement") and
    recommends adding on top when wanted.
    """

    label: str
    name: str = "functional"

    def check(self, store: ObjectStore) -> list[Violation]:
        out: list[Violation] = []
        hosts: dict[BaseTerm, list[BaseTerm]] = {}
        for host, value in store.label_pairs(self.label):
            hosts.setdefault(host, []).append(value)
        for host, values in sorted(hosts.items(), key=lambda kv: repr(kv[0])):
            if len(values) > 1:
                rendered = ", ".join(sorted(pretty_term(v) for v in values))
                out.append(
                    Violation(
                        f"functional({self.label})",
                        host,
                        f"{len(values)} values: {{{rendered}}}",
                    )
                )
        return out


@dataclass(frozen=True)
class DomainConstraint(Constraint):
    """Hosts of ``label`` must be in ``host_type`` and values in
    ``value_type`` (types read through the hierarchy)."""

    label: str
    host_type: str = OBJECT
    value_type: str = OBJECT
    name: str = "domain"

    def check(self, store: ObjectStore) -> list[Violation]:
        out: list[Violation] = []
        for host, value in sorted(store.label_pairs(self.label), key=repr):
            if not store.has_type(host, self.host_type):
                out.append(
                    Violation(
                        f"domain({self.label})",
                        host,
                        f"host is not a {self.host_type}",
                    )
                )
            if not store.has_type(value, self.value_type):
                out.append(
                    Violation(
                        f"domain({self.label})",
                        value,
                        f"value of {pretty_term(host)}.{self.label} is not a "
                        f"{self.value_type}",
                    )
                )
        return out


@dataclass(frozen=True)
class RequiredLabel(Constraint):
    """Every member of ``type_name`` must have at least one ``label``."""

    type_name: str
    label: str
    name: str = "required"

    def check(self, store: ObjectStore) -> list[Violation]:
        out: list[Violation] = []
        for identity in sorted(store.ids_of_type(self.type_name), key=repr):
            if not store.label_values(self.label, identity):
                out.append(
                    Violation(
                        f"required({self.type_name}.{self.label})",
                        identity,
                        f"member of {self.type_name} lacks label {self.label}",
                    )
                )
        return out


@dataclass(frozen=True)
class Cardinality(Constraint):
    """Value-count bounds for ``label`` on members of ``type_name``."""

    label: str
    type_name: str = OBJECT
    at_least: int = 0
    at_most: Optional[int] = None
    name: str = "cardinality"

    def check(self, store: ObjectStore) -> list[Violation]:
        out: list[Violation] = []
        for identity in sorted(store.ids_of_type(self.type_name), key=repr):
            count = len(store.label_values(self.label, identity))
            if count < self.at_least:
                out.append(
                    Violation(
                        f"cardinality({self.label})",
                        identity,
                        f"{count} values, at least {self.at_least} required",
                    )
                )
            if self.at_most is not None and count > self.at_most:
                out.append(
                    Violation(
                        f"cardinality({self.label})",
                        identity,
                        f"{count} values, at most {self.at_most} allowed",
                    )
                )
        return out


class Schema:
    """A collection of constraints checked together."""

    def __init__(self, constraints: Iterable[Constraint] = ()) -> None:
        self._constraints: list[Constraint] = list(constraints)

    def add(self, constraint: Constraint) -> "Schema":
        self._constraints.append(constraint)
        return self

    @property
    def constraints(self) -> tuple[Constraint, ...]:
        return tuple(self._constraints)

    def check(self, store: ObjectStore) -> list[Violation]:
        out: list[Violation] = []
        for constraint in self._constraints:
            out.extend(constraint.check(store))
        return out

    def require(self, store: ObjectStore) -> None:
        """Raise :class:`ConsistencyError` listing all violations."""
        violations = self.check(store)
        if violations:
            raise ConsistencyError(
                "schema violated: " + "; ".join(str(v) for v in violations)
            )

    def __len__(self) -> int:
        return len(self._constraints)
