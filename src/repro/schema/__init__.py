"""Schema information layered above C-logic: database-state constraints
(Section 6's future work) and the static notion of types (Section 2.3),
both expressed *on top of* the logic rather than inside it."""

from repro.schema.constraints import (
    Cardinality,
    Constraint,
    DomainConstraint,
    FunctionalLabel,
    RequiredLabel,
    Schema,
    Violation,
)
from repro.schema.static_types import StaticType, implied_hierarchy, membership_rule

__all__ = [
    "Cardinality",
    "Constraint",
    "DomainConstraint",
    "FunctionalLabel",
    "RequiredLabel",
    "Schema",
    "StaticType",
    "Violation",
    "implied_hierarchy",
    "membership_rule",
]
