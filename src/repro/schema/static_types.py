"""The *static* notion of types, built on top of the dynamic one (§2.3).

"Roughly speaking, a type indicates a set of properties which must be
possessed by objects of that type.  Logically, let l1, ..., ln be
labels corresponding to all properties indicated by a type T.  Then one
possible meaning of T is a set of objects specified as follows:

    T(X) :- X[l1 => X1, ..., ln => Xn].

... every object with all properties specified by a type will
automatically belong to the type."

And: "in a static notion of types, the hierarchy is implicitly
determined by properties of each type" — more required properties means
a more specific type.

:class:`StaticType` declares such a type; :func:`membership_rule`
produces exactly the clause above, ready to append to a program (the
dynamic machinery then computes the automatic memberships);
:func:`implied_hierarchy` derives the implicit subtype order from the
property sets.  This is deliberately a *translation into* C-logic, not
an extension of it — precisely how the paper says static types should
be layered.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.clauses import DefiniteClause
from repro.core.errors import SyntaxKindError
from repro.core.formulas import TermAtom
from repro.core.terms import LabelSpec, LTerm, Var
from repro.core.types import TypeHierarchy

__all__ = ["StaticType", "membership_rule", "implied_hierarchy"]


@dataclass(frozen=True)
class StaticType:
    """A type defined by the properties its members must possess."""

    name: str
    required_labels: tuple[str, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "required_labels", tuple(self.required_labels))
        if not self.name:
            raise SyntaxKindError("a static type needs a name")
        if not self.required_labels:
            raise SyntaxKindError(
                f"static type {self.name!r} requires at least one property "
                "(a property-free static type is just `object`)"
            )
        if len(set(self.required_labels)) != len(self.required_labels):
            raise SyntaxKindError(
                f"static type {self.name!r} lists a label twice"
            )


def membership_rule(static_type: StaticType) -> DefiniteClause:
    """The paper's defining rule ``T(X) :- X[l1 => X1, ..., ln => Xn]``.

    Membership is *derived*: running the program re-computes it after
    every update, which is what makes the static notion expressible on
    top of the dynamic one.
    """
    specs = tuple(
        LabelSpec(label, Var(f"X{i + 1}"))
        for i, label in enumerate(static_type.required_labels)
    )
    body_term = LTerm(Var("X"), specs)
    head_term = Var("X", static_type.name)
    return DefiniteClause(TermAtom(head_term), (TermAtom(body_term),))


def implied_hierarchy(static_types: list[StaticType]) -> TypeHierarchy:
    """The hierarchy implicitly determined by the property sets:
    ``T1 <= T2`` iff T1 requires every property T2 requires (more
    obligations = more specific).  Types with identical property sets
    are distinct but extensionally equal; no edge is added for them
    (the order must stay antisymmetric)."""
    hierarchy = TypeHierarchy()
    for static_type in static_types:
        hierarchy.add_symbol(static_type.name)
    for sub in static_types:
        sub_labels = set(sub.required_labels)
        for sup in static_types:
            if sub.name == sup.name:
                continue
            sup_labels = set(sup.required_labels)
            if sup_labels < sub_labels:
                hierarchy.declare(sub.name, sup.name)
    return hierarchy
