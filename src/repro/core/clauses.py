"""The clausal subset of C-logic (Section 4).

A *program* is a finite set of subtype declarations and definite
clauses.  A *definite clause* ``A :- B1, ..., Bm`` has one positive
literal (the head, an atomic formula) and zero or more body atoms; a
*negative clause* (a query or goal) ``:- B1, ..., Bm`` has no positive
literal.  All variables are implicitly universally quantified at the
outermost level.

We extend body atoms with *builtin* atoms for the arithmetic the paper
uses in its path example (``L is L0 + 1``) and the usual comparisons.
Builtins are evaluation devices, not part of the declarative semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Union

from repro.core.errors import SyntaxKindError
from repro.core.formulas import Atom, PredAtom, TermAtom
from repro.core.terms import (
    Term,
    is_ground,
    is_term,
    labels_of,
    substitute_term,
    types_of,
    variables_of,
)
from repro.core.types import SubtypeDecl, TypeHierarchy

__all__ = [
    "BUILTIN_OPS",
    "ARITH_FUNCTORS",
    "BuiltinAtom",
    "NegatedAtom",
    "BodyAtom",
    "DefiniteClause",
    "Query",
    "Program",
    "atom_variables",
    "atom_is_ground",
    "substitute_atom",
    "substitute_body",
]

#: Comparison / evaluation operators usable in builtin atoms.
BUILTIN_OPS = frozenset({"is", "<", ">", "=<", ">=", "=:=", "=\\=", "="})
#: Function symbols interpreted arithmetically inside ``is`` expressions.
ARITH_FUNCTORS = frozenset({"+", "-", "*", "//", "mod"})


@dataclass(frozen=True, slots=True)
class BuiltinAtom:
    """A builtin body atom such as ``L is L0 + 1`` or ``X < Y``.

    For ``is`` the arguments are ``(result, expression)``; the
    expression is an ordinary term tree whose functors are drawn from
    :data:`ARITH_FUNCTORS` and whose leaves are integer constants or
    variables.  ``=`` is plain unification.
    """

    op: str
    args: tuple[Term, ...]

    def __post_init__(self) -> None:
        if self.op not in BUILTIN_OPS:
            raise SyntaxKindError(f"unknown builtin operator {self.op!r}")
        args = tuple(self.args)
        object.__setattr__(self, "args", args)
        if len(args) != 2:
            raise SyntaxKindError(f"builtin {self.op!r} takes exactly two arguments")
        for arg in args:
            if not is_term(arg):
                raise SyntaxKindError(f"builtin argument must be a term, got {arg!r}")


@dataclass(frozen=True, slots=True)
class NegatedAtom:
    """A negated body atom ``\\+ alpha`` (negation as failure).

    The paper defers negation ("Negation can also be added although we
    do not include it in this paper"); this is the standard stratified
    extension.  The inner atom may be any atomic formula — a complex
    description negates its whole conjunction (the transformation uses
    a Lloyd–Topor auxiliary predicate when it has several conjuncts).
    """

    atom: Union[TermAtom, PredAtom]

    def __post_init__(self) -> None:
        if not isinstance(self.atom, (TermAtom, PredAtom)):
            raise SyntaxKindError(
                f"only atomic formulas can be negated, got {self.atom!r}"
            )


#: Anything allowed in a clause body.
BodyAtom = Union[TermAtom, PredAtom, BuiltinAtom, NegatedAtom]


@dataclass(frozen=True, slots=True)
class DefiniteClause:
    """``head :- body``; a fact when the body is empty."""

    head: Atom
    body: tuple[BodyAtom, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.head, (TermAtom, PredAtom)):
            raise SyntaxKindError(
                f"clause head must be a term atom or predicate atom, got {self.head!r}"
            )
        body = tuple(self.body)
        object.__setattr__(self, "body", body)
        for atom in body:
            if not isinstance(atom, (TermAtom, PredAtom, BuiltinAtom, NegatedAtom)):
                raise SyntaxKindError(f"not a body atom: {atom!r}")

    @property
    def is_fact(self) -> bool:
        return not self.body

    def variables(self) -> set[str]:
        out = atom_variables(self.head)
        for atom in self.body:
            out |= atom_variables(atom)
        return out

    def head_only_variables(self) -> set[str]:
        """Variables occurring in the head but not in the body.

        These are the candidates for *existential object variables* that
        entity-creating rules leave underdetermined (Section 2.1) and
        that skolemization replaces with structured identities.
        """
        body_vars: set[str] = set()
        for atom in self.body:
            body_vars |= atom_variables(atom)
        return atom_variables(self.head) - body_vars


@dataclass(frozen=True, slots=True)
class Query:
    """A negative clause ``:- B1, ..., Bm`` (a query or goal)."""

    body: tuple[BodyAtom, ...]

    def __post_init__(self) -> None:
        body = tuple(self.body)
        object.__setattr__(self, "body", body)
        if not body:
            raise SyntaxKindError("a query requires at least one body atom")
        for atom in body:
            if not isinstance(atom, (TermAtom, PredAtom, BuiltinAtom, NegatedAtom)):
                raise SyntaxKindError(f"not a body atom: {atom!r}")

    def variables(self) -> set[str]:
        out: set[str] = set()
        for atom in self.body:
            out |= atom_variables(atom)
        return out


@dataclass(frozen=True, slots=True)
class Program:
    """A finite set of subtype declarations and definite clauses."""

    clauses: tuple[DefiniteClause, ...]
    subtypes: tuple[SubtypeDecl, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "clauses", tuple(self.clauses))
        object.__setattr__(self, "subtypes", tuple(self.subtypes))
        for clause in self.clauses:
            if not isinstance(clause, DefiniteClause):
                raise SyntaxKindError(f"not a definite clause: {clause!r}")
        for decl in self.subtypes:
            if not isinstance(decl, SubtypeDecl):
                raise SyntaxKindError(f"not a subtype declaration: {decl!r}")

    def hierarchy(self) -> TypeHierarchy:
        """The declared type hierarchy, extended with every type symbol
        that occurs in a clause (each is below ``object``)."""
        hierarchy = TypeHierarchy(self.subtypes)
        for symbol in self.type_symbols():
            hierarchy.add_symbol(symbol)
        return hierarchy

    def type_symbols(self) -> set[str]:
        """Every type symbol occurring in the program (Section 4 notes a
        program mentions only finitely many, so the ``object`` axioms
        stay finite)."""
        out: set[str] = set()
        for clause in self.clauses:
            for atom in (clause.head, *clause.body):
                out |= _atom_types(atom)
        for decl in self.subtypes:
            out.add(decl.sub)
            out.add(decl.sup)
        return out

    def labels(self) -> set[str]:
        out: set[str] = set()
        for clause in self.clauses:
            for atom in (clause.head, *clause.body):
                out |= _atom_labels(atom)
        return out

    def predicates(self) -> set[tuple[str, int]]:
        out: set[tuple[str, int]] = set()
        for clause in self.clauses:
            for atom in (clause.head, *clause.body):
                if isinstance(atom, PredAtom):
                    out.add((atom.pred, atom.arity))
        return out

    def facts(self) -> Iterator[DefiniteClause]:
        return (clause for clause in self.clauses if clause.is_fact)

    def rules(self) -> Iterator[DefiniteClause]:
        return (clause for clause in self.clauses if not clause.is_fact)

    def extended(self, *clauses: DefiniteClause) -> "Program":
        """A new program with extra clauses appended."""
        return Program(self.clauses + tuple(clauses), self.subtypes)

    def __len__(self) -> int:
        return len(self.clauses)


def _atom_types(atom: BodyAtom) -> set[str]:
    if isinstance(atom, NegatedAtom):
        return _atom_types(atom.atom)
    if isinstance(atom, TermAtom):
        return types_of(atom.term)
    if isinstance(atom, PredAtom):
        out: set[str] = set()
        for arg in atom.args:
            out |= types_of(arg)
        return out
    return set()  # builtin arguments are arithmetic, not typed objects


def _atom_labels(atom: BodyAtom) -> set[str]:
    if isinstance(atom, NegatedAtom):
        return _atom_labels(atom.atom)
    if isinstance(atom, TermAtom):
        return labels_of(atom.term)
    if isinstance(atom, PredAtom):
        out: set[str] = set()
        for arg in atom.args:
            out |= labels_of(arg)
        return out
    return set()


def atom_variables(atom: BodyAtom) -> set[str]:
    """Variable names occurring in an atom of any kind."""
    if isinstance(atom, NegatedAtom):
        return atom_variables(atom.atom)
    if isinstance(atom, TermAtom):
        return variables_of(atom.term)
    if isinstance(atom, (PredAtom, BuiltinAtom)):
        out: set[str] = set()
        for arg in atom.args:
            out |= variables_of(arg)
        return out
    raise SyntaxKindError(f"not an atom: {atom!r}")


def atom_is_ground(atom: BodyAtom) -> bool:
    if isinstance(atom, NegatedAtom):
        return atom_is_ground(atom.atom)
    if isinstance(atom, TermAtom):
        return is_ground(atom.term)
    return all(is_ground(arg) for arg in atom.args)


def substitute_atom(atom: BodyAtom, binding: Mapping[str, Term]) -> BodyAtom:
    """Apply a variable binding to an atom."""
    if isinstance(atom, NegatedAtom):
        inner = substitute_atom(atom.atom, binding)
        assert isinstance(inner, (TermAtom, PredAtom))
        return NegatedAtom(inner)
    if isinstance(atom, TermAtom):
        return TermAtom(substitute_term(atom.term, binding))
    if isinstance(atom, PredAtom):
        return PredAtom(atom.pred, tuple(substitute_term(arg, binding) for arg in atom.args))
    if isinstance(atom, BuiltinAtom):
        return BuiltinAtom(atom.op, tuple(substitute_term(arg, binding) for arg in atom.args))
    raise SyntaxKindError(f"not an atom: {atom!r}")


def substitute_body(
    body: tuple[BodyAtom, ...], binding: Mapping[str, Term]
) -> tuple[BodyAtom, ...]:
    return tuple(substitute_atom(atom, binding) for atom in body)
