"""Formulas of a language of objects (Section 3.1).

An *atomic formula* is either ``p(t1, ..., tn)`` for an n-ary predicate
symbol ``p`` (:class:`PredAtom`) or a bare term ``t``
(:class:`TermAtom`).  General formulas are freely generated from atomic
formulas by the connectives and quantifiers; this module provides the
full first-order formula AST used by the model-theoretic semantics in
:mod:`repro.semantics`.

The clausal subset used by programs (Section 4) lives in
:mod:`repro.core.clauses`; it reuses the atom classes defined here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.core.errors import SyntaxKindError
from repro.core.terms import Term, is_term, variables_of

__all__ = [
    "TermAtom",
    "PredAtom",
    "Atom",
    "Not",
    "And",
    "Or",
    "Implies",
    "ForAll",
    "Exists",
    "Formula",
    "free_variables",
    "conjoin",
    "disjoin",
]


@dataclass(frozen=True, slots=True)
class TermAtom:
    """A term used as an atomic formula.

    Section 3.2 gives terms a second meaning besides denotation: as a
    formula, ``tau : t[l1 => e1, ...]`` asserts that the denoted object
    is in type ``tau`` and has each of the labelled values.
    """

    term: Term

    def __post_init__(self) -> None:
        if not is_term(self.term):
            raise SyntaxKindError(f"TermAtom requires a term, got {self.term!r}")


@dataclass(frozen=True, slots=True)
class PredAtom:
    """A predicate atom ``p(t1, ..., tn)``.

    Predicates differ pragmatically from labels and types: they cannot
    occur inside terms, and the arguments of a predicate tuple are
    *associated together*, while the labels of a term are independent
    (end of Section 3.2).
    """

    pred: str
    args: tuple[Term, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.pred, str) or not self.pred:
            raise SyntaxKindError(f"predicate symbol must be a nonempty string, got {self.pred!r}")
        args = tuple(self.args)
        object.__setattr__(self, "args", args)
        for arg in args:
            if not is_term(arg):
                raise SyntaxKindError(f"predicate argument must be a term, got {arg!r}")

    @property
    def arity(self) -> int:
        return len(self.args)


#: An atomic formula.
Atom = Union[TermAtom, PredAtom]


@dataclass(frozen=True, slots=True)
class Not:
    operand: "Formula"


@dataclass(frozen=True, slots=True)
class And:
    left: "Formula"
    right: "Formula"


@dataclass(frozen=True, slots=True)
class Or:
    left: "Formula"
    right: "Formula"


@dataclass(frozen=True, slots=True)
class Implies:
    antecedent: "Formula"
    consequent: "Formula"


@dataclass(frozen=True, slots=True)
class ForAll:
    variable: str
    body: "Formula"


@dataclass(frozen=True, slots=True)
class Exists:
    variable: str
    body: "Formula"


Formula = Union[TermAtom, PredAtom, Not, And, Or, Implies, ForAll, Exists]


def free_variables(formula: Formula) -> set[str]:
    """The free variable names of ``formula``."""
    if isinstance(formula, TermAtom):
        return variables_of(formula.term)
    if isinstance(formula, PredAtom):
        out: set[str] = set()
        for arg in formula.args:
            out |= variables_of(arg)
        return out
    if isinstance(formula, Not):
        return free_variables(formula.operand)
    if isinstance(formula, (And, Or)):
        return free_variables(formula.left) | free_variables(formula.right)
    if isinstance(formula, Implies):
        return free_variables(formula.antecedent) | free_variables(formula.consequent)
    if isinstance(formula, (ForAll, Exists)):
        return free_variables(formula.body) - {formula.variable}
    raise SyntaxKindError(f"not a formula: {formula!r}")


def conjoin(formulas: list[Formula]) -> Formula:
    """Right-fold a nonempty list of formulas with ``And``."""
    if not formulas:
        raise SyntaxKindError("conjoin requires at least one formula")
    result = formulas[-1]
    for formula in reversed(formulas[:-1]):
        result = And(formula, result)
    return result


def disjoin(formulas: list[Formula]) -> Formula:
    """Right-fold a nonempty list of formulas with ``Or``."""
    if not formulas:
        raise SyntaxKindError("disjoin requires at least one formula")
    result = formulas[-1]
    for formula in reversed(formulas[:-1]):
        result = Or(formula, result)
    return result
