"""Pretty-printer for the concrete syntax of the paper.

Prints terms, atoms, clauses, queries and programs in the notation of
Sections 2–5, e.g.::

    person: john[children => {bob, bill}]
    path: id(X, Y)[src => X, dest => Y, length => 1] :- node: X[linkto => Y].

The printer and the parser (:mod:`repro.lang.parser`) round-trip:
``parse_term(pretty_term(t)) == t`` for every term ``t`` (property
tested in ``tests/properties``).
"""

from __future__ import annotations

import re

from repro.core.clauses import BuiltinAtom, DefiniteClause, NegatedAtom, Program, Query
from repro.core.errors import SyntaxKindError
from repro.core.formulas import (
    And,
    Exists,
    ForAll,
    Formula,
    Implies,
    Not,
    Or,
    PredAtom,
    TermAtom,
)
from repro.core.terms import (
    ARROW,
    Collection,
    Const,
    Func,
    LTerm,
    OBJECT,
    Term,
    Var,
)
from repro.core.types import SubtypeDecl

__all__ = [
    "pretty_term",
    "pretty_value",
    "pretty_atom",
    "pretty_body",
    "pretty_clause",
    "pretty_query",
    "pretty_subtype",
    "pretty_program",
    "pretty_formula",
]

_IDENT_RE = re.compile(r"[a-z][A-Za-z0-9_]*\Z")
_ARITH_INFIX = {"+", "-", "*", "//", "mod"}


def _type_prefix(type_name: str) -> str:
    """``object:`` prefixes are omitted, as the paper's convention allows."""
    if type_name == OBJECT:
        return ""
    return f"{type_name}: "


def _const_text(value: object) -> str:
    if isinstance(value, int):
        return str(value)
    assert isinstance(value, str)
    if _IDENT_RE.match(value):
        return value
    escaped = value.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def pretty_term(term: Term) -> str:
    """Render a term in paper syntax.

    Iterative (explicit work stack) rather than recursive: governed
    partial models legitimately hold terms nested thousands of levels
    deep — e.g. a successor tower cut off by a deadline — and printing
    one must not blow Python's recursion limit.
    """
    return _render(term, _TERM)


def pretty_value(value: object) -> str:
    """Render a label value (a term or a ``{...}`` collection)."""
    return _render(value, _VALUE)


_TERM = 0
_VALUE = 1


def _render(root: object, root_kind: int) -> str:
    out: list[str] = []
    # Work items are either literal strings or (kind, node) pairs; pairs
    # expand into their pieces pushed in reverse so pops emit in order.
    stack: list = [(root_kind, root)]
    while stack:
        item = stack.pop()
        if isinstance(item, str):
            out.append(item)
            continue
        kind, term = item
        if kind == _VALUE and isinstance(term, Collection):
            parts: list = ["{"]
            for index, element in enumerate(term.items):
                if index:
                    parts.append(", ")
                parts.append((_TERM, element))
            parts.append("}")
            stack.extend(reversed(parts))
            continue
        if isinstance(term, Var):
            out.append(f"{_type_prefix(term.type)}{term.name}")
        elif isinstance(term, Const):
            out.append(f"{_type_prefix(term.type)}{_const_text(term.value)}")
        elif isinstance(term, Func):
            if term.functor in _ARITH_INFIX and len(term.args) == 2:
                lhs, rhs = term.args
                stack.extend(
                    reversed(
                        ["(", (_TERM, lhs), f" {term.functor} ", (_TERM, rhs), ")"]
                    )
                )
            else:
                parts = [f"{_type_prefix(term.type)}{term.functor}("]
                for index, arg in enumerate(term.args):
                    if index:
                        parts.append(", ")
                    parts.append((_TERM, arg))
                parts.append(")")
                stack.extend(reversed(parts))
        elif isinstance(term, LTerm):
            parts = [(_TERM, term.base), "["]
            for index, spec in enumerate(term.specs):
                if index:
                    parts.append(", ")
                parts.append(f"{spec.label} {ARROW} ")
                parts.append((_VALUE, spec.value))
            parts.append("]")
            stack.extend(reversed(parts))
        else:
            raise SyntaxKindError(f"not a term: {term!r}")
    return "".join(out)


def pretty_atom(atom: object) -> str:
    """Render an atomic formula or builtin atom."""
    if isinstance(atom, TermAtom):
        return pretty_term(atom.term)
    if isinstance(atom, PredAtom):
        args = ", ".join(pretty_term(arg) for arg in atom.args)
        return f"{atom.pred}({args})"
    if isinstance(atom, BuiltinAtom):
        lhs, rhs = atom.args
        return f"{pretty_term(lhs)} {atom.op} {pretty_term(rhs)}"
    if isinstance(atom, NegatedAtom):
        return f"\\+ {pretty_atom(atom.atom)}"
    raise SyntaxKindError(f"not an atom: {atom!r}")


def pretty_body(body: tuple) -> str:
    return ", ".join(pretty_atom(atom) for atom in body)


def pretty_clause(clause: DefiniteClause) -> str:
    if clause.is_fact:
        return f"{pretty_atom(clause.head)}."
    return f"{pretty_atom(clause.head)} :- {pretty_body(clause.body)}."


def pretty_query(query: Query) -> str:
    return f":- {pretty_body(query.body)}."


def pretty_subtype(decl: SubtypeDecl) -> str:
    return f"{decl.sub} < {decl.sup}."


def pretty_program(program: Program) -> str:
    lines = [pretty_clause(clause) for clause in program.clauses]
    lines.extend(pretty_subtype(decl) for decl in program.subtypes)
    return "\n".join(lines)


def pretty_formula(formula: Formula) -> str:
    """Render a general formula with minimal parentheses."""
    return _formula_text(formula, 0)


# Precedence: Implies(1) < Or(2) < And(3) < Not/quantifiers(4) < atoms(5)
def _formula_text(formula: Formula, parent_level: int) -> str:
    if isinstance(formula, (TermAtom, PredAtom)):
        return pretty_atom(formula)
    if isinstance(formula, Not):
        text = f"~{_formula_text(formula.operand, 4)}"
        level = 4
    elif isinstance(formula, And):
        text = f"{_formula_text(formula.left, 4)} & {_formula_text(formula.right, 3)}"
        level = 3
    elif isinstance(formula, Or):
        text = f"{_formula_text(formula.left, 3)} | {_formula_text(formula.right, 2)}"
        level = 2
    elif isinstance(formula, Implies):
        text = f"{_formula_text(formula.antecedent, 2)} -> {_formula_text(formula.consequent, 1)}"
        level = 1
    elif isinstance(formula, ForAll):
        text = f"forall {formula.variable}. {_formula_text(formula.body, 1)}"
        level = 4
    elif isinstance(formula, Exists):
        text = f"exists {formula.variable}. {_formula_text(formula.body, 1)}"
        level = 4
    else:
        raise SyntaxKindError(f"not a formula: {formula!r}")
    if level < parent_level:
        return f"({text})"
    return text
