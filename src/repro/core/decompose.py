"""Decomposition and recombination of complex descriptions (Section 3.2).

The semantics of C-logic makes

* ``t[l1 => t1, ..., ln => tn]``  equivalent to
  ``t[l1 => t1] & ... & t[ln => tn]``, and
* ``t[l => {t1, ..., tn}]``       equivalent to
  ``t[l => t1] & ... & t[l => tn]``.

So "a complex object description can always be decomposed into atomic
descriptions involving only one label, and various pieces of
descriptions can be combined into a complex one".  This module
implements both directions syntactically:

* :func:`decompose_term` / :func:`decompose_atom` flatten a description
  into its atomic pieces (one label, one value, plus the bare typed
  identity);
* :func:`recombine` merges a set of atomic descriptions of the same
  identity back into a single maximal description;
* :func:`normalize_term` gives the canonical form used to compare
  descriptions up to the semantic equivalence above.

The engines use decomposition to evaluate label constraints one at a
time — exactly the *residual* technique of Section 4 — and the tests
use :func:`normalize_term` to state the decomposition law.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.errors import SyntaxKindError
from repro.core.formulas import Atom, PredAtom, TermAtom
from repro.core.terms import (
    BaseTerm,
    Collection,
    Const,
    Func,
    LabelSpec,
    LTerm,
    Term,
    Var,
    identity_of,
)

__all__ = [
    "atomic_descriptions",
    "decompose_term",
    "decompose_atom",
    "recombine",
    "normalize_term",
    "normalize_atom",
    "spec_pairs",
]


def spec_pairs(term: LTerm) -> Iterator[tuple[str, Term]]:
    """Yield each (label, value-term) pair, flattening collections."""
    for spec in term.specs:
        for value in spec.value_terms():
            yield spec.label, value


def decompose_term(term: Term) -> list[Term]:
    """Split ``term`` into atomic descriptions of the same identity.

    The result starts with the bare typed identity and contains one
    single-label single-value description per asserted labelled value.
    Nested descriptions (labelled terms appearing as function arguments
    or label values) are left in place; use :func:`atomic_descriptions`
    on a :class:`TermAtom` to also surface the assertions they carry.
    """
    if not isinstance(term, LTerm):
        return [term]
    pieces: list[Term] = [term.base]
    for label, value in spec_pairs(term):
        pieces.append(LTerm(term.base, (LabelSpec(label, value),)))
    return pieces


def decompose_atom(atom: Atom) -> list[Atom]:
    """Decompose a term atom into atomic term atoms; predicate atoms are
    already atomic and are returned unchanged."""
    if isinstance(atom, TermAtom):
        return [TermAtom(piece) for piece in decompose_term(atom.term)]
    return [atom]


def atomic_descriptions(atom: Atom) -> list[Atom]:
    """Fully flatten an atom, including descriptions nested inside
    function arguments and label values.

    This is the syntactic counterpart of the first-order transformation
    (each returned atom corresponds to one conjunct of ``alpha*``), but
    stays at the C-logic level.  Order follows the transformation's:
    the host's own assertion first, then each value's assertions
    followed by the single-label description linking host and value.
    """
    out: list[Atom] = []
    if isinstance(atom, PredAtom):
        stripped_args = []
        for arg in atom.args:
            out.extend(_flatten_term(arg))
            stripped_args.append(_strip(arg))
        out.append(PredAtom(atom.pred, tuple(stripped_args)))
        return out
    if isinstance(atom, TermAtom):
        return list(_flatten_term(atom.term))
    raise SyntaxKindError(f"not an atom: {atom!r}")


def _flatten_term(term: Term) -> Iterator[Atom]:
    """Yield the atomic assertions carried by ``term``, outermost first."""
    base = identity_of(term)
    stripped_base = _strip(base)
    yield TermAtom(stripped_base)
    if isinstance(base, Func):
        for arg in base.args:
            yield from _flatten_term(arg)
    if isinstance(term, LTerm):
        for label, value in spec_pairs(term):
            yield from _flatten_term(value)
            yield TermAtom(LTerm(stripped_base, (LabelSpec(label, _strip(value)),)))


def _strip(term: Term) -> BaseTerm:
    """Remove labels everywhere, keeping types: the pure identity tree."""
    base = identity_of(term)
    if isinstance(base, Func):
        return Func(base.functor, tuple(_strip(arg) for arg in base.args), base.type)
    return base


def recombine(pieces: Iterable[Term]) -> list[Term]:
    """Merge descriptions with syntactically equal identities.

    Inverse of :func:`decompose_term` up to normalization: all pieces
    whose identity part is the same term are merged into one description
    whose label specs are the union of the pieces' specs (collections
    are used for labels with several values).  Pieces with distinct
    identities stay separate; the result preserves first-occurrence
    order of identities and labels.
    """
    order: list[BaseTerm] = []
    merged: dict[BaseTerm, dict[str, list[Term]]] = {}
    for piece in pieces:
        base = identity_of(piece)
        if base not in merged:
            merged[base] = {}
            order.append(base)
        if isinstance(piece, LTerm):
            for label, value in spec_pairs(piece):
                values = merged[base].setdefault(label, [])
                if value not in values:
                    values.append(value)
    result: list[Term] = []
    for base in order:
        label_map = merged[base]
        if not label_map:
            result.append(base)
            continue
        specs = []
        for label, values in label_map.items():
            if len(values) == 1:
                specs.append(LabelSpec(label, values[0]))
            else:
                specs.append(LabelSpec(label, Collection(tuple(values))))
        result.append(LTerm(base, tuple(specs)))
    return result


def normalize_term(term: Term) -> Term:
    """Canonical form modulo the Section 3.2 equivalences.

    Collections are flattened into sorted duplicate-free value lists,
    label specs are merged per label and sorted by label name, and the
    normalization is applied recursively to nested terms.  Two terms are
    semantically equivalent as descriptions iff their normal forms are
    structurally equal.
    """
    if isinstance(term, (Var, Const)):
        return term
    if isinstance(term, Func):
        return Func(term.functor, tuple(normalize_term(arg) for arg in term.args), term.type)
    if isinstance(term, LTerm):
        base = normalize_term(term.base)
        assert isinstance(base, (Var, Const, Func))
        by_label: dict[str, list[Term]] = {}
        for label, value in spec_pairs(term):
            normalized = normalize_term(value)
            values = by_label.setdefault(label, [])
            if normalized not in values:
                values.append(normalized)
        specs = []
        for label in sorted(by_label):
            values = sorted(by_label[label], key=_term_sort_key)
            if len(values) == 1:
                specs.append(LabelSpec(label, values[0]))
            else:
                specs.append(LabelSpec(label, Collection(tuple(values))))
        return LTerm(base, tuple(specs))
    raise SyntaxKindError(f"not a term: {term!r}")


def normalize_atom(atom: Atom) -> Atom:
    if isinstance(atom, TermAtom):
        return TermAtom(normalize_term(atom.term))
    if isinstance(atom, PredAtom):
        return PredAtom(atom.pred, tuple(normalize_term(arg) for arg in atom.args))
    raise SyntaxKindError(f"not an atom: {atom!r}")


def _term_sort_key(term: Term) -> tuple:
    """A total order on terms for canonical sorting."""
    if isinstance(term, Var):
        return (0, term.type, term.name)
    if isinstance(term, Const):
        kind = "i" if isinstance(term.value, int) else "s"
        return (1, term.type, kind, str(term.value))
    if isinstance(term, Func):
        return (2, term.type, term.functor, tuple(_term_sort_key(a) for a in term.args))
    if isinstance(term, LTerm):
        return (
            3,
            _term_sort_key(term.base),
            tuple(
                (spec.label, tuple(_term_sort_key(v) for v in spec.value_terms()))
                for spec in term.specs
            ),
        )
    raise SyntaxKindError(f"not a term: {term!r}")
