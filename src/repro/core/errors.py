"""Exception hierarchy for the C-logic reproduction.

Every error raised by this package derives from :class:`CLogicError`, so
callers can catch the whole family with a single ``except`` clause while
still being able to distinguish syntax problems from semantic ones.
"""

from __future__ import annotations

__all__ = [
    "CLogicError",
    "SyntaxKindError",
    "LexError",
    "ParseError",
    "TypeOrderError",
    "SemanticsError",
    "TransformError",
    "EngineError",
    "ResourceExhausted",
    "DeadlineExceeded",
    "BudgetExceeded",
    "DepthExceeded",
    "FactLimitExceeded",
    "EvaluationCancelled",
    "SafetyError",
    "BuiltinError",
    "StoreError",
    "ConsistencyError",
    "UnsupportedFeatureError",
]


class CLogicError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class SyntaxKindError(CLogicError):
    """A syntactic object was constructed in violation of the grammar.

    Raised by term/formula constructors, e.g. labelling an already
    labelled term (``t[...][...]``), which Section 3.1 of the paper
    excludes from the term language.
    """


class LexError(CLogicError):
    """The lexer met a character sequence that is not a token."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(CLogicError):
    """The parser met a token sequence outside the grammar."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class TypeOrderError(CLogicError):
    """The declared subtype relation is not a partial order.

    Section 3.1 requires a *partially ordered* set of type symbols; a
    declaration cycle such as ``a < b`` and ``b < a`` violates
    antisymmetry and is rejected.
    """


class SemanticsError(CLogicError):
    """A semantic structure is ill-formed or a formula cannot be evaluated.

    Examples: an interpretation missing a symbol used by the formula, or
    a structure whose type interpretation does not respect the declared
    hierarchy (Section 3.2 requires ``I(t1) <= I(t2)`` whenever
    ``t1 <= t2``).
    """


class TransformError(CLogicError):
    """The transformation into first-order logic failed."""


class EngineError(CLogicError):
    """A deduction engine failed (resource limits, malformed input)."""


class ResourceExhausted(EngineError):
    """An evaluation ran into a resource limit.

    The common ancestor of every limit the runtime governor
    (:class:`repro.runtime.Governor`) enforces: wall-clock deadlines,
    step budgets, recursion-depth caps, fact-count caps and cooperative
    cancellation.  Engines raise these in *strict* mode (and whenever a
    hard parameter such as ``max_rounds`` overruns without a governor);
    in the default governed mode they are caught at the engine boundary
    and turned into a :class:`repro.runtime.PartialResult` carrying the
    work completed so far.

    ``limit`` names the limit family (``"deadline"``, ``"budget"``,
    ``"depth"``, ``"facts"``, ``"cancelled"``); ``elapsed``/``steps``
    carry the governor's counters at the moment of interruption when a
    governor raised the error.
    """

    limit = "resource"

    def __init__(
        self,
        message: str,
        elapsed: "float | None" = None,
        steps: "int | None" = None,
    ) -> None:
        super().__init__(message)
        self.elapsed = elapsed
        self.steps = steps


class DeadlineExceeded(ResourceExhausted):
    """The wall-clock deadline passed before evaluation finished."""

    limit = "deadline"


class BudgetExceeded(ResourceExhausted):
    """The derivation/step budget (or a round/iteration cap) ran out."""

    limit = "budget"


class DepthExceeded(ResourceExhausted):
    """A recursion-depth cap was hit (SLD depth, iterative-deepening
    ceiling, or the governor's ``max_depth``)."""

    limit = "depth"


class FactLimitExceeded(ResourceExhausted):
    """The derived model grew past the governor's fact-count cap."""

    limit = "facts"


class EvaluationCancelled(ResourceExhausted):
    """The run was cooperatively cancelled via the governor's token."""

    limit = "cancelled"


class SafetyError(EngineError):
    """A clause is not range-restricted.

    Bottom-up evaluation requires every head variable to occur in a
    positive body atom; otherwise derived facts would not be ground.
    """


class BuiltinError(EngineError):
    """A built-in (``is``, comparison) was called with unusable arguments,
    e.g. unbound variables or non-numeric operands."""


class StoreError(CLogicError):
    """The object store was given a non-ground or malformed fact."""


class ConsistencyError(CLogicError):
    """An O-logic program has no models (a label is multiply defined).

    Section 2.2: in Maier's O-logic labels are partial functions, so a
    program assigning two values to the same label of the same object is
    globally inconsistent.
    """


class UnsupportedFeatureError(CLogicError):
    """A feature the paper explicitly leaves out was requested.

    Section 5: C-logic cannot return a set value or test set equality
    (set unification); Section 6 excludes negation.  We surface these as
    errors instead of silently approximating them.
    """
