"""A small Python DSL for constructing C-logic syntax programmatically.

The concrete-syntax parser (:mod:`repro.lang`) is the most faithful way
to write programs, but building syntax trees from Python is often more
convenient in tests and applications.  This module provides terse,
explicit constructors::

    from repro.core.builder import V, c, fn, obj, pred, fact, rule, query

    john = obj("john", type="person", children={"bob", "bill"})
    r = rule(
        obj(fn("id", V("X"), V("Y")), type="path", src=V("X"), dest=V("Y")),
        obj(V("X"), type="node", linkto=V("Y")),
    )

Plain Python values are *lifted* automatically: strings and ints become
constants, sets/frozensets become collections, and terms pass through
unchanged.  (Sets are sorted when lifted so construction is
deterministic.)
"""

from __future__ import annotations

from typing import Iterable, Union

from repro.core.clauses import BuiltinAtom, BodyAtom, DefiniteClause, NegatedAtom, Program, Query
from repro.core.errors import SyntaxKindError
from repro.core.formulas import Atom, PredAtom, TermAtom
from repro.core.terms import (
    Collection,
    Const,
    Func,
    LabelSpec,
    LTerm,
    OBJECT,
    Term,
    Var,
    is_term,
)
from repro.core.types import SubtypeDecl

__all__ = [
    "V",
    "c",
    "fn",
    "lift",
    "obj",
    "labeled",
    "pred",
    "atom",
    "builtin",
    "arith",
    "fact",
    "naf",
    "rule",
    "query",
    "subtype",
    "program",
]

Liftable = Union[Term, str, int]


def V(name: str, type: str = OBJECT) -> Var:
    """A variable, optionally typed: ``V("X")`` is ``object: X``."""
    return Var(name, type)


def c(value: Union[str, int], type: str = OBJECT) -> Const:
    """A constant, optionally typed."""
    return Const(value, type)


def fn(functor: str, *args: Liftable, type: str = OBJECT) -> Func:
    """A function application with lifted arguments."""
    return Func(functor, tuple(lift(arg) for arg in args), type)


def lift(value: Union[Liftable, Iterable[Liftable]]) -> Union[Term, Collection]:
    """Lift a plain Python value into a term or collection.

    Strings and ints become constants; terms pass through; sets,
    frozensets, lists and tuples become collections (sorted for
    determinism when unordered).
    """
    if is_term(value) or isinstance(value, Collection):
        return value
    if isinstance(value, (str, int)):
        return Const(value)
    if isinstance(value, (set, frozenset)):
        items = sorted(value, key=lambda item: (str(type(item)), str(item)))
        return Collection(tuple(_lift_term(item) for item in items))
    if isinstance(value, (list, tuple)):
        return Collection(tuple(_lift_term(item) for item in value))
    raise SyntaxKindError(f"cannot lift {value!r} into a term")


def _lift_term(value: Liftable) -> Term:
    lifted = lift(value)
    if isinstance(lifted, Collection):
        raise SyntaxKindError("collections cannot be nested")
    return lifted


def obj(
    identity: Liftable,
    type: str = OBJECT,
    **labels: Union[Liftable, Iterable[Liftable]],
) -> Term:
    """A complex object description.

    ``obj("john", type="person", age=28, children={"bob", "bill"})``
    builds ``person: john[age => 28, children => {bill, bob}]``.
    Without labels it is just the typed identity.
    """
    base = lift(identity)
    if isinstance(base, Collection) or isinstance(base, LTerm):
        raise SyntaxKindError("object identity must be a variable, constant or function term")
    if type != OBJECT:
        if isinstance(base, Var):
            base = Var(base.name, type)
        elif isinstance(base, Const):
            base = Const(base.value, type)
        else:
            base = Func(base.functor, base.args, type)
    if not labels:
        return base
    specs = tuple(LabelSpec(label, lift(value)) for label, value in labels.items())
    return LTerm(base, specs)


def labeled(base: Term, *specs: tuple[str, Union[Liftable, Iterable[Liftable]]]) -> LTerm:
    """Attach label specs to a base term, for labels that are not valid
    Python keyword names (or to control spec order explicitly)."""
    if isinstance(base, LTerm):
        raise SyntaxKindError("cannot label an already labelled term")
    return LTerm(base, tuple(LabelSpec(label, lift(value)) for label, value in specs))


def pred(name: str, *args: Liftable) -> PredAtom:
    """A predicate atom ``name(args...)`` with lifted arguments."""
    return PredAtom(name, tuple(_lift_term(arg) for arg in args))


def atom(value: Union[Term, Atom, BuiltinAtom]) -> BodyAtom:
    """Coerce a term into a term atom; atoms pass through."""
    if isinstance(value, (TermAtom, PredAtom, BuiltinAtom, NegatedAtom)):
        return value
    if is_term(value):
        return TermAtom(value)
    raise SyntaxKindError(f"cannot treat {value!r} as an atom")


def naf(value: Union[Term, Atom]) -> NegatedAtom:
    """A negated body atom ``\\+ value`` (terms are lifted to atoms)."""
    inner = atom(value)
    if isinstance(inner, (BuiltinAtom, NegatedAtom)):
        raise SyntaxKindError("only atomic formulas can be negated")
    return NegatedAtom(inner)


def builtin(op: str, lhs: Liftable, rhs: Liftable) -> BuiltinAtom:
    """A builtin atom, e.g. ``builtin("is", V("L"), arith("+", V("L0"), 1))``."""
    return BuiltinAtom(op, (_lift_term(lhs), _lift_term(rhs)))


def arith(op: str, lhs: Liftable, rhs: Liftable) -> Func:
    """An arithmetic expression term, e.g. ``arith("+", V("L0"), 1)``."""
    return Func(op, (_lift_term(lhs), _lift_term(rhs)))


def fact(head: Union[Term, Atom]) -> DefiniteClause:
    """A unit clause."""
    head_atom = atom(head)
    if isinstance(head_atom, BuiltinAtom):
        raise SyntaxKindError("a builtin atom cannot be a clause head")
    return DefiniteClause(head_atom)


def rule(head: Union[Term, Atom], *body: Union[Term, Atom, BuiltinAtom]) -> DefiniteClause:
    """A definite clause ``head :- body...``."""
    head_atom = atom(head)
    if isinstance(head_atom, BuiltinAtom):
        raise SyntaxKindError("a builtin atom cannot be a clause head")
    return DefiniteClause(head_atom, tuple(atom(b) for b in body))


def query(*body: Union[Term, Atom, BuiltinAtom]) -> Query:
    """A negative clause (goal)."""
    return Query(tuple(atom(b) for b in body))


def subtype(sub: str, sup: str) -> SubtypeDecl:
    return SubtypeDecl(sub, sup)


def program(
    *clauses: DefiniteClause, subtypes: Iterable[SubtypeDecl] = ()
) -> Program:
    return Program(tuple(clauses), tuple(subtypes))
