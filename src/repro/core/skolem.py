"""Skolemization of existential object variables (Section 2.1).

Entity-creating rules leave the identity of the created object
underdetermined: in

    path: C[src => X, dest => Y, length => 1] :- node: X[linkto => Y].

the head variable ``C`` does not occur in the body, and the rule alone
does not say how ``C`` is quantified with respect to ``X`` and ``Y``.
The paper's answer is that the user (or a high-level interface, see
:mod:`repro.interface`) specifies *what determines the objects to be
created*; the system then replaces ``C`` with a structured identity — a
skolem term over the determining variables, e.g. ``id(X, Y)`` when path
objects are determined by the nodes at both ends only.

This module implements that replacement and the three readings the
paper enumerates for the path example:

1. determined by the node objects at both ends only (``id(X, Y)``);
2. determined by both ends and the length (``id(X, Y, L)``);
3. determined by the sequence of nodes (``id(X, C0)`` in the recursive
   rule: the new path identity depends on the extending node and the
   identity of the extended path, which encodes the whole sequence).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.clauses import DefiniteClause, Program, substitute_atom
from repro.core.errors import SyntaxKindError, TransformError
from repro.core.terms import Func, Term, Var

__all__ = [
    "SkolemPolicy",
    "skolemize_clause",
    "skolemize_program",
    "fresh_skolem_namer",
]


@dataclass(frozen=True, slots=True)
class SkolemPolicy:
    """How to replace one existential object variable in one clause.

    ``variable`` is the head-only variable to eliminate; ``depends_on``
    lists the variables the created identity is existentially dependent
    upon (the skolem function's arguments, in order); ``functor`` names
    the skolem function (e.g. ``id``).
    """

    variable: str
    depends_on: tuple[str, ...]
    functor: str = "id"

    def __post_init__(self) -> None:
        object.__setattr__(self, "depends_on", tuple(self.depends_on))
        if not self.variable:
            raise SyntaxKindError("skolem policy requires a variable name")
        if not self.functor:
            raise SyntaxKindError("skolem policy requires a functor name")


def skolemize_clause(clause: DefiniteClause, policy: SkolemPolicy) -> DefiniteClause:
    """Replace ``policy.variable`` in ``clause`` with the skolem identity.

    The variable must occur in the head only (it is existential); the
    dependency variables must occur in the clause, so the resulting
    identity is ground whenever the body instance is.  Raises
    :class:`TransformError` if either condition fails.
    """
    head_only = clause.head_only_variables()
    if policy.variable not in head_only:
        raise TransformError(
            f"variable {policy.variable!r} is not an existential (head-only) "
            f"variable of the clause; head-only variables are {sorted(head_only)}"
        )
    clause_vars = clause.variables()
    missing = [dep for dep in policy.depends_on if dep not in clause_vars]
    if missing:
        raise TransformError(
            f"dependency variables {missing} do not occur in the clause"
        )
    if policy.variable in policy.depends_on:
        raise TransformError(
            f"the skolemized variable {policy.variable!r} cannot depend on itself"
        )
    replacement: Term
    if policy.depends_on:
        replacement = Func(policy.functor, tuple(Var(dep) for dep in policy.depends_on))
    else:
        # No dependencies: one global object, a fresh constant-like
        # nullary identity encoded as the functor applied to nothing is
        # not a term (arity >= 1), so we use a variable-free constant.
        from repro.core.terms import Const

        replacement = Const(policy.functor)
    binding = {policy.variable: replacement}
    new_head = substitute_atom(clause.head, binding)
    if isinstance(new_head, type(clause.head)):
        return DefiniteClause(new_head, clause.body)  # body has no occurrence
    raise TransformError("skolemization changed the head atom kind")  # pragma: no cover


def skolemize_program(
    program: Program, policies: Sequence[tuple[int, SkolemPolicy]]
) -> Program:
    """Apply per-clause skolem policies to a program.

    ``policies`` pairs clause indices with policies; several policies
    may target the same clause (applied in order).  Distinct clauses
    should normally use distinct skolem functors — the paper's path
    rules share ``id`` deliberately because both rules create objects of
    the same kind; :func:`fresh_skolem_namer` helps generate unique
    functors when that sharing is not wanted.
    """
    clauses = list(program.clauses)
    for index, policy in policies:
        if not 0 <= index < len(clauses):
            raise TransformError(f"clause index {index} out of range")
        clauses[index] = skolemize_clause(clauses[index], policy)
    return Program(tuple(clauses), program.subtypes)


def fresh_skolem_namer(prefix: str = "sk") -> "callable":
    """Return a callable producing ``sk1``, ``sk2``, ... functor names."""
    counter = 0

    def next_name() -> str:
        nonlocal counter
        counter += 1
        return f"{prefix}{counter}"

    return next_name
