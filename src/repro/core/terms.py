"""Terms of a language of objects (Section 3.1 of the paper).

A *term* is one of:

* ``tau : X``           — a typed variable (:class:`Var`);
* ``tau : c``           — a typed constant (:class:`Const`);
* ``tau : f(t1,...,tn)`` — a typed function application (:class:`Func`);
* ``t[l1 => e1, ..., ln => en]`` — a labelled term (:class:`LTerm`),
  where ``t`` is one of the first three forms, each ``li`` is a label and
  each ``ei`` is either a term or a *collection* ``{t1,...,tk}`` of terms
  (:class:`Collection`).

The type annotation ``object :`` may be omitted; ``object`` is the
greatest type, a supertype of every other type.

All term classes are immutable, hashable value objects: two terms are
equal iff they are structurally identical.  Note that structural
equality is *finer* than semantic equivalence — the paper's semantics
makes ``t[a => x, b => y]`` equivalent to ``t[b => y, a => x]`` while
these are distinct syntax trees; :mod:`repro.core.decompose` provides
the semantic normal form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Union

from repro.core.errors import SyntaxKindError

__all__ = [
    "OBJECT",
    "ARROW",
    "Var",
    "Const",
    "Func",
    "Collection",
    "LabelSpec",
    "LTerm",
    "Term",
    "BaseTerm",
    "LabelValue",
    "is_term",
    "identity_of",
    "type_of",
    "variables_of",
    "is_ground",
    "substitute_term",
    "constants_of",
    "functors_of",
    "labels_of",
    "types_of",
    "term_size",
    "term_depth",
]

#: The greatest type symbol: every type is a subtype of ``object``.
OBJECT = "object"

#: ASCII rendering of the paper's label arrow (printed as a double arrow
#: in the original typesetting).
ARROW = "=>"


def _check_type_symbol(type_name: str) -> None:
    if not isinstance(type_name, str) or not type_name:
        raise SyntaxKindError(f"type symbol must be a nonempty string, got {type_name!r}")


@dataclass(frozen=True, slots=True)
class Var:
    """A typed variable ``tau : X``.

    Variable identity is the *name*: occurrences of ``X`` under
    different type annotations denote the same variable (the annotation
    is a constraint on the denoted object, not part of the variable).
    """

    name: str
    type: str = OBJECT

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise SyntaxKindError(f"variable name must be a nonempty string, got {self.name!r}")
        _check_type_symbol(self.type)

    def __repr__(self) -> str:
        if self.type == OBJECT:
            return f"Var({self.name!r})"
        return f"Var({self.name!r}, type={self.type!r})"


@dataclass(frozen=True, slots=True)
class Const:
    """A typed constant ``tau : c`` (a zero-ary function symbol).

    ``value`` is either an identifier / quoted string (``str``) or an
    integer (arithmetic literals used by the ``is`` builtin).
    """

    value: Union[str, int]
    type: str = OBJECT

    def __post_init__(self) -> None:
        if isinstance(self.value, bool) or not isinstance(self.value, (str, int)):
            raise SyntaxKindError(f"constant value must be str or int, got {self.value!r}")
        _check_type_symbol(self.type)

    def __repr__(self) -> str:
        if self.type == OBJECT:
            return f"Const({self.value!r})"
        return f"Const({self.value!r}, type={self.type!r})"


@dataclass(frozen=True, slots=True)
class Func:
    """A typed function application ``tau : f(t1, ..., tn)``, n >= 1.

    Arguments are arbitrary terms — including labelled terms, as in
    Section 3.1's grammar.  (Zero-ary applications are written as
    :class:`Const`.)
    """

    functor: str
    args: tuple["Term", ...]
    type: str = OBJECT

    def __post_init__(self) -> None:
        if not isinstance(self.functor, str) or not self.functor:
            raise SyntaxKindError(f"functor must be a nonempty string, got {self.functor!r}")
        _check_type_symbol(self.type)
        args = tuple(self.args)
        object.__setattr__(self, "args", args)
        if not args:
            raise SyntaxKindError("Func requires at least one argument; use Const for arity 0")
        for arg in args:
            if not is_term(arg):
                raise SyntaxKindError(f"function argument must be a term, got {arg!r}")

    @property
    def arity(self) -> int:
        return len(self.args)

    def __repr__(self) -> str:
        if self.type == OBJECT:
            return f"Func({self.functor!r}, {self.args!r})"
        return f"Func({self.functor!r}, {self.args!r}, type={self.type!r})"


@dataclass(frozen=True, slots=True)
class Collection:
    """A collection ``{t1, ..., tk}`` appearing as a label value.

    A collection is *not* itself a term (there are no set values in
    C-logic); it is notation for asserting the label of each member:
    ``t[l => {t1,...,tk}]`` is semantically ``t[l => t1] & ... &
    t[l => tk]`` (Section 3.2).  Order is preserved syntactically but is
    semantically irrelevant.
    """

    items: tuple["Term", ...]

    def __post_init__(self) -> None:
        items = tuple(self.items)
        object.__setattr__(self, "items", items)
        if not items:
            raise SyntaxKindError("a collection must contain at least one term")
        for item in items:
            if not is_term(item):
                raise SyntaxKindError(f"collection member must be a term, got {item!r}")

    def __iter__(self) -> Iterator["Term"]:
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)


@dataclass(frozen=True, slots=True)
class LabelSpec:
    """One ``label => value`` pair inside a labelled term.

    ``value`` is a term ("the label *contains the element*") or a
    :class:`Collection` ("the label *contains the subset*") — the two
    intuitive readings of ``=>`` given in Section 5.
    """

    label: str
    value: Union["Term", Collection]

    def __post_init__(self) -> None:
        if not isinstance(self.label, str) or not self.label:
            raise SyntaxKindError(f"label must be a nonempty string, got {self.label!r}")
        if not (is_term(self.value) or isinstance(self.value, Collection)):
            raise SyntaxKindError(f"label value must be a term or collection, got {self.value!r}")

    def value_terms(self) -> tuple["Term", ...]:
        """All terms asserted for this label (one, or the collection's members)."""
        if isinstance(self.value, Collection):
            return self.value.items
        return (self.value,)


@dataclass(frozen=True, slots=True)
class LTerm:
    """A labelled term ``t[l1 => e1, ..., ln => en]``, n >= 1.

    The grammar of Section 3.1 only allows the *base* ``t`` to be a
    typed variable, constant or function application — labelling an
    already labelled term is not a term (cf. the rejected
    ``student: id[name=>joe][age=>20]`` of Example 1) and raises
    :class:`~repro.core.errors.SyntaxKindError`.
    """

    base: Union[Var, Const, Func]
    specs: tuple[LabelSpec, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.base, (Var, Const, Func)):
            raise SyntaxKindError(
                "the base of a labelled term must be a variable, constant or "
                f"function application, got {type(self.base).__name__}"
            )
        specs = tuple(self.specs)
        object.__setattr__(self, "specs", specs)
        if not specs:
            raise SyntaxKindError("a labelled term requires at least one label spec")
        for spec in specs:
            if not isinstance(spec, LabelSpec):
                raise SyntaxKindError(f"expected LabelSpec, got {spec!r}")

    @property
    def type(self) -> str:
        """The type of a labelled term is the type of its base."""
        return self.base.type


#: A term of the language of objects.
Term = Union[Var, Const, Func, LTerm]
#: A term that may serve as the base of a labelled term.
BaseTerm = Union[Var, Const, Func]
#: What may follow ``=>`` in a label spec.
LabelValue = Union[Term, Collection]


def is_term(value: object) -> bool:
    """Return True iff ``value`` is a term (Var, Const, Func or LTerm)."""
    return isinstance(value, (Var, Const, Func, LTerm))


def identity_of(term: Term) -> BaseTerm:
    """The identity part of a term: its base, with labels stripped.

    Section 3.2: the denotation of ``t[l1 => e1, ...]`` is the
    denotation of ``t`` — labels describe the object but do not change
    which object is denoted.
    """
    if isinstance(term, LTerm):
        return term.base
    return term


def type_of(term: Term) -> str:
    """The type annotation of a term (``object`` when omitted)."""
    return term.type


def variables_of(term: Union[Term, Collection]) -> set[str]:
    """The set of variable names occurring anywhere in ``term``."""
    out: set[str] = set()
    _collect_variables(term, out)
    return out


def _collect_variables(term: Union[Term, Collection], out: set[str]) -> None:
    if isinstance(term, Var):
        out.add(term.name)
    elif isinstance(term, Const):
        pass
    elif isinstance(term, Func):
        for arg in term.args:
            _collect_variables(arg, out)
    elif isinstance(term, Collection):
        for item in term.items:
            _collect_variables(item, out)
    elif isinstance(term, LTerm):
        _collect_variables(term.base, out)
        for spec in term.specs:
            _collect_variables(spec.value, out)
    else:  # pragma: no cover - guarded by constructors
        raise SyntaxKindError(f"not a term: {term!r}")


def is_ground(term: Union[Term, Collection]) -> bool:
    """True iff ``term`` contains no variables."""
    if isinstance(term, Var):
        return False
    if isinstance(term, Const):
        return True
    if isinstance(term, Func):
        return all(is_ground(arg) for arg in term.args)
    if isinstance(term, Collection):
        return all(is_ground(item) for item in term.items)
    if isinstance(term, LTerm):
        return is_ground(term.base) and all(
            is_ground(value) for spec in term.specs for value in spec.value_terms()
        )
    raise SyntaxKindError(f"not a term: {term!r}")


def substitute_term(term: Term, binding: Mapping[str, Term]) -> Term:
    """Apply a variable binding to ``term``, returning a new term.

    Bindings map variable *names* to terms.  When a variable with a
    non-``object`` type annotation is replaced, the annotation is
    transferred to the replacement only if the replacement's own
    annotation is ``object`` (the more specific constraint wins); a
    replacement that already carries a type keeps it.
    """
    if isinstance(term, Var):
        replacement = binding.get(term.name)
        if replacement is None:
            return term
        return _retype(replacement, term.type)
    if isinstance(term, Const):
        return term
    if isinstance(term, Func):
        new_args = tuple(substitute_term(arg, binding) for arg in term.args)
        if new_args == term.args:
            return term
        return Func(term.functor, new_args, term.type)
    if isinstance(term, LTerm):
        new_base = substitute_term(term.base, binding)
        if isinstance(new_base, LTerm):
            # Substituting a labelled term for the base would create
            # t[..][..]; fold the labels together instead.
            new_base_specs = new_base.specs
            new_base = new_base.base
        else:
            new_base_specs = ()
        new_specs = tuple(
            LabelSpec(spec.label, _substitute_value(spec.value, binding)) for spec in term.specs
        )
        return LTerm(new_base, new_base_specs + new_specs)
    raise SyntaxKindError(f"not a term: {term!r}")


def _substitute_value(value: LabelValue, binding: Mapping[str, Term]) -> LabelValue:
    if isinstance(value, Collection):
        return Collection(tuple(substitute_term(item, binding) for item in value.items))
    return substitute_term(value, binding)


def _retype(term: Term, type_name: str) -> Term:
    """Push a type annotation onto ``term`` if it is currently untyped."""
    if type_name == OBJECT or term.type != OBJECT:
        return term
    if isinstance(term, Var):
        return Var(term.name, type_name)
    if isinstance(term, Const):
        return Const(term.value, type_name)
    if isinstance(term, Func):
        return Func(term.functor, term.args, type_name)
    if isinstance(term, LTerm):
        base = _retype(term.base, type_name)
        assert isinstance(base, (Var, Const, Func))
        return LTerm(base, term.specs)
    raise SyntaxKindError(f"not a term: {term!r}")


def constants_of(term: Union[Term, Collection]) -> set[Union[str, int]]:
    """All constant values occurring in ``term``."""
    out: set[Union[str, int]] = set()
    _walk(term, lambda sub: out.add(sub.value) if isinstance(sub, Const) else None)
    return out


def functors_of(term: Union[Term, Collection]) -> set[tuple[str, int]]:
    """All (functor, arity) pairs of function applications in ``term``."""
    out: set[tuple[str, int]] = set()
    _walk(term, lambda sub: out.add((sub.functor, sub.arity)) if isinstance(sub, Func) else None)
    return out


def labels_of(term: Union[Term, Collection]) -> set[str]:
    """All labels occurring in ``term`` (at any nesting depth)."""
    out: set[str] = set()

    def visit(sub: Term) -> None:
        if isinstance(sub, LTerm):
            out.update(spec.label for spec in sub.specs)

    _walk(term, visit)
    return out


def types_of(term: Union[Term, Collection]) -> set[str]:
    """All type symbols annotating subterms of ``term`` (incl. ``object``)."""
    out: set[str] = set()

    def visit(sub: Term) -> None:
        if isinstance(sub, (Var, Const, Func)):
            out.add(sub.type)

    _walk(term, visit)
    return out


def term_size(term: Union[Term, Collection]) -> int:
    """Number of term nodes (Var/Const/Func/LTerm) in ``term``."""
    count = 0

    def visit(sub: Term) -> None:
        nonlocal count
        count += 1

    _walk(term, visit)
    return count


def term_depth(term: Union[Term, Collection]) -> int:
    """Nesting depth of ``term`` (a Var or Const has depth 1)."""
    if isinstance(term, (Var, Const)):
        return 1
    if isinstance(term, Func):
        return 1 + max(term_depth(arg) for arg in term.args)
    if isinstance(term, Collection):
        return max(term_depth(item) for item in term.items)
    if isinstance(term, LTerm):
        inner = [term_depth(term.base)]
        inner.extend(term_depth(value) for spec in term.specs for value in spec.value_terms())
        return 1 + max(inner)
    raise SyntaxKindError(f"not a term: {term!r}")


def _walk(term: Union[Term, Collection], visit) -> None:
    """Apply ``visit`` to every term node in pre-order."""
    if isinstance(term, Collection):
        for item in term.items:
            _walk(item, visit)
        return
    visit(term)
    if isinstance(term, Func):
        for arg in term.args:
            _walk(arg, visit)
    elif isinstance(term, LTerm):
        _walk(term.base, visit)
        for spec in term.specs:
            _walk(spec.value, visit)
