"""The type hierarchy of a language of objects (Sections 2.3, 3.1, 4).

C-logic uses a *dynamic* notion of types: a type is semantically a set
of object identities (a unary predicate).  Type symbols form a
partially ordered set with a greatest element ``object``; the ordering
among the other symbols is declared by the user through *subtype
declarations* ``t1 < t2`` (Section 4).

:class:`TypeHierarchy` maintains the declared order, computes its
reflexive–transitive closure, and rejects declarations that would
violate antisymmetry (a cycle), since Section 3.1 requires a partial
order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.errors import TypeOrderError
from repro.core.terms import OBJECT

__all__ = ["TypeHierarchy", "SubtypeDecl"]


@dataclass(frozen=True, slots=True)
class SubtypeDecl:
    """A subtype declaration ``sub < sup`` (Section 4)."""

    sub: str
    sup: str

    def __post_init__(self) -> None:
        if not self.sub or not self.sup:
            raise TypeOrderError("subtype declaration requires two type symbols")
        if self.sub == self.sup:
            raise TypeOrderError(f"reflexive subtype declaration {self.sub} < {self.sup}")
        if self.sub == OBJECT:
            raise TypeOrderError(f"'{OBJECT}' is the greatest type; it has no proper supertype")


class TypeHierarchy:
    """A partially ordered set of type symbols with greatest element ``object``.

    The hierarchy is built incrementally with :meth:`declare` (or from
    an iterable of declarations) and answers subtype queries through the
    reflexive–transitive closure of the declared edges.  Every known
    symbol is automatically below ``object``.

    The structure is mutable during program construction but cheap to
    snapshot: :meth:`copy` produces an independent hierarchy.
    """

    def __init__(self, declarations: Iterable[SubtypeDecl] = ()) -> None:
        # Direct declared supertypes: sub -> set of sups.
        self._parents: dict[str, set[str]] = {}
        # Memoized upward closure (invalidated on mutation).
        self._up_cache: dict[str, frozenset[str]] = {}
        self._symbols: set[str] = {OBJECT}
        for decl in declarations:
            self.declare(decl.sub, decl.sup)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def declare(self, sub: str, sup: str) -> None:
        """Declare ``sub < sup``; raise :class:`TypeOrderError` on a cycle."""
        decl = SubtypeDecl(sub, sup)  # validates the pair
        if sup != OBJECT and self.is_subtype(sup, sub) and sub != sup:
            raise TypeOrderError(
                f"declaring {decl.sub} < {decl.sup} would create a cycle "
                f"({decl.sup} is already a subtype of {decl.sub})"
            )
        self._symbols.add(sub)
        self._symbols.add(sup)
        if sup != OBJECT:
            self._parents.setdefault(sub, set()).add(sup)
        else:
            self._parents.setdefault(sub, set())
        self._up_cache.clear()

    def add_symbol(self, symbol: str) -> None:
        """Register a type symbol with no declared supertype but ``object``."""
        if symbol != OBJECT:
            self._symbols.add(symbol)
            self._parents.setdefault(symbol, set())

    def copy(self) -> "TypeHierarchy":
        clone = TypeHierarchy()
        clone._parents = {sub: set(sups) for sub, sups in self._parents.items()}
        clone._symbols = set(self._symbols)
        return clone

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def symbols(self) -> frozenset[str]:
        """All known type symbols, including ``object``."""
        return frozenset(self._symbols)

    def declarations(self) -> Iterator[SubtypeDecl]:
        """All declared (direct) subtype pairs, in sorted order."""
        for sub in sorted(self._parents):
            for sup in sorted(self._parents[sub]):
                yield SubtypeDecl(sub, sup)

    def supertypes(self, symbol: str) -> frozenset[str]:
        """The reflexive–transitive upward closure of ``symbol``.

        Always contains ``symbol`` itself and ``object``.
        """
        cached = self._up_cache.get(symbol)
        if cached is not None:
            return cached
        closure: set[str] = {symbol, OBJECT}
        stack = list(self._parents.get(symbol, ()))
        while stack:
            current = stack.pop()
            if current in closure:
                continue
            closure.add(current)
            stack.extend(self._parents.get(current, ()))
        result = frozenset(closure)
        self._up_cache[symbol] = result
        return result

    def subtypes(self, symbol: str) -> frozenset[str]:
        """All known symbols at or below ``symbol`` (reflexive downset)."""
        if symbol == OBJECT:
            return frozenset(self._symbols)
        return frozenset(s for s in self._symbols if symbol in self.supertypes(s))

    def is_subtype(self, sub: str, sup: str) -> bool:
        """True iff ``sub <= sup`` in the reflexive–transitive order."""
        if sup == OBJECT or sub == sup:
            return True
        return sup in self.supertypes(sub)

    def comparable(self, a: str, b: str) -> bool:
        """True iff ``a <= b`` or ``b <= a``."""
        return self.is_subtype(a, b) or self.is_subtype(b, a)

    def least_common_supertypes(self, a: str, b: str) -> frozenset[str]:
        """The minimal elements of the common upper bounds of ``a`` and ``b``.

        Always nonempty because ``object`` bounds everything.  Used by
        the O-logic baseline's discussion of the lattice approach
        (Section 2.2), where a multiply-defined label climbs to the
        least common super-object.
        """
        common = self.supertypes(a) & self.supertypes(b)
        minimal = {
            t
            for t in common
            if not any(other != t and self.is_subtype(other, t) for other in common)
        }
        return frozenset(minimal)

    def __contains__(self, symbol: str) -> bool:
        return symbol in self._symbols

    def __repr__(self) -> str:
        decls = ", ".join(f"{d.sub}<{d.sup}" for d in self.declarations())
        return f"TypeHierarchy({decls})"
