"""Multiplicity storage for incremental maintenance.

Counting-based view maintenance needs two multisets over ground atoms:

* *assertion counts* — how many times a fact is externally asserted.
  One C-logic description translates to several first-order conjuncts
  (typing atoms, label atoms), and distinct descriptions share
  conjuncts — ``object(mary)`` is contributed by every description
  mentioning ``mary`` — so retracting one description must only remove
  the conjuncts no other assertion still supports;
* *derivation counts* — how many distinct rule instantiations derive a
  fact of a non-recursive stratum, maintained exactly by the engine in
  :mod:`repro.incremental.engine`.

Both are a :class:`FactCounts`: a dict-backed multiset whose decrement
reports when a count reaches zero (the moment a fact's support is
gone).  Counts never go negative — decrementing an absent fact is a
:class:`~repro.core.errors.StoreError`, because a silent negative count
would corrupt every later presence decision.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.errors import StoreError
from repro.fol.atoms import FAtom

__all__ = ["FactCounts"]


class FactCounts:
    """A multiset of ground atoms with zero-crossing reports."""

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: dict[FAtom, int] = {}

    def increment(self, atom: FAtom, by: int = 1) -> int:
        """Raise ``atom``'s count by ``by``; returns the new count."""
        if by <= 0:
            raise StoreError(f"increment must be positive, got {by}")
        new = self._counts.get(atom, 0) + by
        self._counts[atom] = new
        return new

    def decrement(self, atom: FAtom, by: int = 1) -> int:
        """Lower ``atom``'s count by ``by``; returns the new count and
        drops the entry when it reaches zero.  Decrementing below zero
        raises — the caller's bookkeeping is broken."""
        if by <= 0:
            raise StoreError(f"decrement must be positive, got {by}")
        current = self._counts.get(atom, 0)
        if by > current:
            raise StoreError(
                f"count of {atom!r} would go negative ({current} - {by})"
            )
        new = current - by
        if new:
            self._counts[atom] = new
        else:
            self._counts.pop(atom, None)
        return new

    def get(self, atom: FAtom) -> int:
        return self._counts.get(atom, 0)

    def __contains__(self, atom: FAtom) -> bool:
        return atom in self._counts

    def __len__(self) -> int:
        return len(self._counts)

    def __iter__(self) -> Iterator[FAtom]:
        return iter(self._counts)

    def items(self) -> Iterator[tuple[FAtom, int]]:
        return iter(self._counts.items())

    def discard(self, atom: FAtom) -> None:
        """Forget ``atom`` entirely (used when a deletion also retires
        the counter, e.g. a counted fact leaving the model)."""
        self._counts.pop(atom, None)

    def copy(self) -> "FactCounts":
        """An independent copy (transaction checkpoints)."""
        clone = FactCounts()
        clone._counts = dict(self._counts)
        return clone

    def clear(self) -> None:
        self._counts.clear()

    def __repr__(self) -> str:
        return f"FactCounts({len(self._counts)} facts)"
