"""The complex-object store: the extensional database of the direct engine.

Section 6 lists "how to store complex objects, how to cluster
components of a complex object together" among the problems C-logic's
simplicity is meant to support.  :class:`ObjectStore` is our answer for
the laptop scale:

* decomposed indexes — type extents (``type -> ids``), label relations
  (``label -> host -> values`` plus the inverted ``label -> value ->
  hosts``) and predicate relations, which realize labels-as-binary-
  predicates and types-as-unary-predicates directly;
* the *clustered* originals — every asserted fact term is kept intact,
  so whole-term unification (the naive strategy whose incompleteness on
  multi-valued labels E7 demonstrates) and per-object description
  merging (Section 4's "merge all information about an object
  together") are both available.

All stored data is ground; identities are label-free, ``object``-typed
term trees (see :func:`ground_id`).  Every atomic fact carries the
round in which it was derived, so the direct engine's semi-naive
saturation can restrict joins to new facts.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.core.clauses import BodyAtom, BuiltinAtom
from repro.core.decompose import recombine, spec_pairs
from repro.core.errors import StoreError
from repro.core.formulas import PredAtom, TermAtom
from repro.core.terms import (
    BaseTerm,
    Const,
    Func,
    LTerm,
    OBJECT,
    Term,
    Var,
    is_ground,
)
from repro.core.types import TypeHierarchy
from repro.runtime.faults import fault_point, register_fault_point

__all__ = ["ObjectStore", "ground_id"]

# Failure points for the fault-injection harness.  Each sits at the top
# of an atomic mutation or journal operation, *before* any state
# changes: an injected crash leaves that operation entirely unapplied
# and everything before it journaled, which is exactly the
# partially-committed shape rollback has to clean up.
_FP_BEGIN = register_fault_point("store.begin_journal")
_FP_COMMIT = register_fault_point("store.commit_journal")
_FP_ADD_TYPE = register_fault_point("store.add_type")
_FP_ADD_LABEL = register_fault_point("store.add_label")
_FP_ADD_PRED = register_fault_point("store.add_pred")
_FP_ASSERT_CLUSTERED = register_fault_point("store.assert_clustered")


def ground_id(term: Term) -> BaseTerm:
    """The canonical ground identity of a term: labels stripped at every
    depth and every type annotation erased to ``object``.

    Raises :class:`StoreError` if the term is not ground — stores hold
    ground facts only.
    """
    if isinstance(term, Var):
        raise StoreError(f"identities must be ground; found variable {term.name}")
    if isinstance(term, LTerm):
        return ground_id(term.base)
    if isinstance(term, Const):
        return Const(term.value) if term.type != OBJECT else term
    if isinstance(term, Func):
        args = tuple(ground_id(arg) for arg in term.args)
        if args == term.args and term.type == OBJECT:
            return term
        return Func(term.functor, args)
    raise StoreError(f"not a term: {term!r}")


class ObjectStore:
    """Ground facts about complex objects, indexed for direct evaluation."""

    def __init__(self, hierarchy: Optional[TypeHierarchy] = None) -> None:
        self.hierarchy = hierarchy if hierarchy is not None else TypeHierarchy()
        self._all_ids: set[BaseTerm] = set()
        self._types: dict[str, set[BaseTerm]] = {}
        self._types_of: dict[BaseTerm, set[str]] = {}
        self._labels: dict[str, dict[BaseTerm, set[BaseTerm]]] = {}
        self._labels_inv: dict[str, dict[BaseTerm, set[BaseTerm]]] = {}
        self._label_pairs: dict[str, int] = {}
        self._preds: dict[tuple[str, int], set[tuple[BaseTerm, ...]]] = {}
        self._clustered: list[Term] = []
        self._clustered_set: set[Term] = set()
        self._stamps: dict[tuple, int] = {}
        self._by_round: dict[int, list[tuple]] = {}
        self._round = 0
        #: Active undo journal (a list of inverse-operation records)
        #: while a store transaction is open; ``None`` otherwise.
        self._journal: Optional[list[tuple]] = None

    # ------------------------------------------------------------------
    # Assertion
    # ------------------------------------------------------------------

    def next_round(self) -> int:
        self._round += 1
        return self._round

    @property
    def round(self) -> int:
        return self._round

    def assert_atom(self, atom: BodyAtom) -> bool:
        """Assert a ground atom (term description or predicate fact).

        A term description is decomposed: the identity joins its type's
        extent, every ``label => value`` pair joins the label relation
        (with the value's own description asserted recursively, matching
        the conjuncts of the transformation), and the clustered original
        is retained.  Returns True iff anything new was recorded.
        """
        if isinstance(atom, BuiltinAtom):
            raise StoreError("builtin atoms cannot be stored")
        if isinstance(atom, PredAtom):
            for arg in atom.args:
                self._assert_term(arg)
            row = tuple(ground_id(arg) for arg in atom.args)
            return self._add_pred(atom.pred, row)
        assert isinstance(atom, TermAtom)
        return self.assert_description(atom.term)

    def assert_description(self, term: Term) -> bool:
        """Assert a ground complex-object description (kept clustered)."""
        changed = self._assert_term(term)
        if term not in self._clustered_set:
            fault_point(_FP_ASSERT_CLUSTERED)
            self._clustered_set.add(term)
            self._clustered.append(term)
            if self._journal is not None:
                self._journal.append(("c+", term))
        return changed

    def _assert_term(self, term: Term) -> bool:
        if not is_ground(term):
            raise StoreError(f"the store holds ground facts only: {term!r}")
        changed = False
        base = term.base if isinstance(term, LTerm) else term
        identity = ground_id(base)
        changed |= self.add_type(base.type, identity)
        if isinstance(base, Func):
            for arg in base.args:
                changed |= self._assert_term(arg)
        if isinstance(term, LTerm):
            for label, value in spec_pairs(term):
                changed |= self._assert_term(value)
                changed |= self._add_label(label, identity, ground_id(value))
        return changed

    def add_type(self, type_name: str, identity: BaseTerm) -> bool:
        """Add ``identity`` to ``type_name``'s extent (creating the
        object in the active domain if needed); returns True iff the
        membership is new.  This is the atomic type-assertion primitive
        the update façade builds on."""
        if identity in self._types.get(type_name, ()):
            return False
        fault_point(_FP_ADD_TYPE)
        new_object = identity not in self._all_ids
        self._all_ids.add(identity)
        key = ("t", type_name, identity)
        extent = self._types.setdefault(type_name, set())
        extent.add(identity)
        self._types_of.setdefault(identity, set()).add(type_name)
        self._stamps[key] = self._round
        self._by_round.setdefault(self._round, []).append(key)
        if self._journal is not None:
            self._journal.append(("t+", type_name, identity, new_object))
        return True

    def _add_type(self, type_name: str, identity: BaseTerm) -> bool:
        """Deprecated alias of :meth:`add_type` (kept for callers that
        reached into the private name)."""
        import warnings

        warnings.warn(
            "ObjectStore._add_type is deprecated; use add_type",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.add_type(type_name, identity)

    def _add_label(self, label: str, host: BaseTerm, value: BaseTerm) -> bool:
        if value in self._labels.get(label, {}).get(host, ()):
            return False
        fault_point(_FP_ADD_LABEL)
        key = ("l", label, host, value)
        values = self._labels.setdefault(label, {}).setdefault(host, set())
        values.add(value)
        self._labels_inv.setdefault(label, {}).setdefault(value, set()).add(host)
        self._label_pairs[label] = self._label_pairs.get(label, 0) + 1
        self._stamps[key] = self._round
        self._by_round.setdefault(self._round, []).append(key)
        if self._journal is not None:
            self._journal.append(("l+", label, host, value))
        return True

    def _add_pred(self, pred: str, row: tuple[BaseTerm, ...]) -> bool:
        if row in self._preds.get((pred, len(row)), ()):
            return False
        fault_point(_FP_ADD_PRED)
        key = ("p", pred, row)
        rows = self._preds.setdefault((pred, len(row)), set())
        rows.add(row)
        self._stamps[key] = self._round
        self._by_round.setdefault(self._round, []).append(key)
        if self._journal is not None:
            self._journal.append(("p+", (pred, len(row)), row))
        return True

    # ------------------------------------------------------------------
    # Undo journal (store-level transactions)
    # ------------------------------------------------------------------

    def begin_journal(self) -> None:
        """Start recording inverse operations.  Every atomic mutation —
        additions here, removals in
        :class:`~repro.db.updates.UpdatableStore` — appends one record;
        :meth:`rollback_journal` replays them in reverse."""
        if self._journal is not None:
            raise StoreError("a store transaction is already open")
        fault_point(_FP_BEGIN)
        self._journal = []

    def commit_journal(self) -> int:
        """Keep the mutations; returns how many were recorded."""
        if self._journal is None:
            raise StoreError("no store transaction is open")
        fault_point(_FP_COMMIT)
        recorded = len(self._journal)
        self._journal = None
        return recorded

    def rollback_journal(self) -> int:
        """Undo every journaled mutation, newest first; returns how
        many records were replayed."""
        if self._journal is None:
            raise StoreError("no store transaction is open")
        journal = self._journal
        # Replay must not journal its own mutations.
        self._journal = None
        for entry in reversed(journal):
            self._undo(entry)
        return len(journal)

    def _forget_key(self, key: tuple) -> None:
        stamp = self._stamps.pop(key, None)
        if stamp is not None:
            bucket = self._by_round.get(stamp)
            if bucket is not None and key in bucket:
                bucket.remove(key)

    def _undo(self, entry: tuple) -> None:
        kind = entry[0]
        if kind == "t+":
            _, type_name, identity, new_object = entry
            extent = self._types.get(type_name)
            if extent is not None:
                extent.discard(identity)
                if not extent:
                    del self._types[type_name]
            self._types_of.get(identity, set()).discard(type_name)
            self._forget_key(("t", type_name, identity))
            if new_object:
                self._all_ids.discard(identity)
                self._types_of.pop(identity, None)
        elif kind == "l+":
            _, label, host, value = entry
            hosts = self._labels.get(label, {})
            values = hosts.get(host)
            if values is not None:
                values.discard(value)
                if not values:
                    del hosts[host]
            inv = self._labels_inv.get(label, {})
            inv_hosts = inv.get(value)
            if inv_hosts is not None:
                inv_hosts.discard(host)
                if not inv_hosts:
                    del inv[value]
            remaining = self._label_pairs.get(label, 1) - 1
            if remaining:
                self._label_pairs[label] = remaining
            else:
                self._label_pairs.pop(label, None)
                if not hosts:
                    self._labels.pop(label, None)
                if not inv:
                    self._labels_inv.pop(label, None)
            self._forget_key(("l", label, host, value))
        elif kind == "p+":
            _, signature, row = entry
            rows = self._preds.get(signature)
            if rows is not None:
                rows.discard(row)
                if not rows:
                    del self._preds[signature]
            self._forget_key(("p", signature[0], row))
        elif kind == "c+":
            _, term = entry
            if term in self._clustered_set:
                self._clustered_set.discard(term)
                self._clustered.remove(term)
        elif kind == "t-":
            _, type_name, identity, stamp = entry
            self._all_ids.add(identity)
            self._types.setdefault(type_name, set()).add(identity)
            self._types_of.setdefault(identity, set()).add(type_name)
            self._stamps[("t", type_name, identity)] = stamp
        elif kind == "l-":
            _, label, host, value, stamp = entry
            self._labels.setdefault(label, {}).setdefault(host, set()).add(value)
            self._labels_inv.setdefault(label, {}).setdefault(
                value, set()
            ).add(host)
            self._label_pairs[label] = self._label_pairs.get(label, 0) + 1
            self._stamps[("l", label, host, value)] = stamp
        elif kind == "p-":
            _, signature, row, stamp = entry
            self._preds.setdefault(signature, set()).add(row)
            self._stamps[("p", signature[0], row)] = stamp
        elif kind == "c-":
            _, index, term = entry
            self._clustered.insert(index, term)
            self._clustered_set.add(term)
        elif kind == "dom-":
            _, identity = entry
            self._all_ids.add(identity)
        else:  # pragma: no cover - journal writers are all in-tree
            raise StoreError(f"unknown journal record {kind!r}")

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def all_ids(self) -> frozenset[BaseTerm]:
        """The active domain: every individual object in the database
        (the meaning of the type ``object``, per Section 4)."""
        return frozenset(self._all_ids)

    def asserted_types(self, identity: BaseTerm) -> frozenset[str]:
        return frozenset(self._types_of.get(identity, ()))

    def has_type(self, identity: BaseTerm, type_name: str) -> bool:
        """Membership modulo the hierarchy: an object is in ``tau`` iff
        some asserted type of it is ``<= tau``."""
        if type_name == OBJECT:
            return identity in self._all_ids
        asserted = self._types_of.get(identity)
        if not asserted:
            return False
        return any(self.hierarchy.is_subtype(t, type_name) for t in asserted)

    def ids_of_type(self, type_name: str) -> set[BaseTerm]:
        """The extent of a type, closed downward along the hierarchy."""
        if type_name == OBJECT:
            return set(self._all_ids)
        out: set[BaseTerm] = set()
        for sub in self.hierarchy.subtypes(type_name):
            out |= self._types.get(sub, set())
        out |= self._types.get(type_name, set())
        return out

    def label_values(self, label: str, host: BaseTerm) -> frozenset[BaseTerm]:
        return frozenset(self._labels.get(label, {}).get(host, ()))

    def label_hosts(self, label: str, value: BaseTerm) -> frozenset[BaseTerm]:
        return frozenset(self._labels_inv.get(label, {}).get(value, ()))

    def label_pairs(self, label: str) -> Iterator[tuple[BaseTerm, BaseTerm]]:
        for host, values in self._labels.get(label, {}).items():
            for value in values:
                yield host, value

    def holds_label(self, label: str, host: BaseTerm, value: BaseTerm) -> bool:
        return value in self._labels.get(label, {}).get(host, ())

    def label_count(self, label: str) -> int:
        return self._label_pairs.get(label, 0)

    def pred_rows(self, pred: str, arity: int) -> frozenset[tuple[BaseTerm, ...]]:
        return frozenset(self._preds.get((pred, arity), ()))

    def holds_pred(self, pred: str, row: tuple[BaseTerm, ...]) -> bool:
        return row in self._preds.get((pred, len(row)), ())

    def labels(self) -> set[str]:
        return set(self._labels)

    def types(self) -> set[str]:
        return set(self._types)

    def stamp(self, key: tuple) -> int:
        """Derivation round of an atomic fact key (see module docs)."""
        return self._stamps.get(key, 0)

    def keys_since(self, since_round: int) -> Iterator[tuple]:
        """Atomic fact keys first derived at or after ``since_round``
        (the delta feed for the direct engine's semi-naive mode)."""
        for round_number in range(since_round, self._round + 1):
            yield from self._by_round.get(round_number, ())

    def clustered_facts(self) -> list[Term]:
        """The original fact terms, as asserted (whole-term matching)."""
        return list(self._clustered)

    def merged_description(self, identity: BaseTerm) -> Term:
        """One maximal description of an object: its identity annotated
        with a representative asserted type, with every labelled value
        (collections for multi-valued labels).  Section 4: "for
        extensional databases, we may merge all information about an
        object together"."""
        types = sorted(t for t in self.asserted_types(identity) if t != OBJECT)
        base: BaseTerm = identity
        if types:
            if isinstance(identity, Const):
                base = Const(identity.value, types[0])
            elif isinstance(identity, Func):
                base = Func(identity.functor, identity.args, types[0])
        pieces: list[Term] = [base]
        from repro.core.terms import LabelSpec

        for label in sorted(self._labels):
            for value in self._labels[label].get(identity, ()):
                pieces.append(LTerm(base, (LabelSpec(label, value),)))
        merged = recombine(pieces)
        assert len(merged) == 1
        return merged[0]

    def merged_descriptions(self) -> Iterator[Term]:
        for identity in sorted(self._all_ids, key=repr):
            yield self.merged_description(identity)

    def snapshot_state(self) -> dict:
        """A deep, comparable copy of every piece of store state.

        Fault-injection tests take one snapshot before a transaction and
        compare it (``==``) after an injected crash + rollback: equality
        here is the "bit-identical to its pre-transaction state"
        guarantee — not just the fact sets, but the round stamps, the
        per-round delta feed, the inverted indexes, the pair counters,
        and the clustered originals *in order*.
        """
        return {
            "all_ids": set(self._all_ids),
            "types": {name: set(ids) for name, ids in self._types.items()},
            "types_of": {
                identity: set(names) for identity, names in self._types_of.items()
            },
            "labels": {
                label: {host: set(values) for host, values in hosts.items()}
                for label, hosts in self._labels.items()
            },
            "labels_inv": {
                label: {value: set(hosts) for value, hosts in values.items()}
                for label, values in self._labels_inv.items()
            },
            "label_pairs": dict(self._label_pairs),
            "preds": {
                signature: set(rows) for signature, rows in self._preds.items()
            },
            "clustered": list(self._clustered),
            "clustered_set": set(self._clustered_set),
            "stamps": dict(self._stamps),
            "by_round": {
                round_number: list(keys)
                for round_number, keys in self._by_round.items()
                if keys
            },
            "round": self._round,
        }

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def fact_count(self) -> int:
        """Total atomic facts (type memberships + label pairs + rows)."""
        return len(self._stamps)

    def __len__(self) -> int:
        return len(self._all_ids)

    def __repr__(self) -> str:
        return (
            f"ObjectStore(objects={len(self._all_ids)}, "
            f"types={len(self._types)}, labels={len(self._labels)}, "
            f"facts={self.fact_count()})"
        )
