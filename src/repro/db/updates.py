"""Database updates under the dynamic notion of types (Section 2.3).

"Under the dynamic aspect, a class denotes the set of objects ... and
such membership may be changed by database updates."  C-logic's types
carry no structural obligations, so updates are pure set manipulation:
inserting an object requires saying which type it joins (``object`` by
default), and removal simply shrinks extents — no schema checking is
involved, exactly because the static notion is deliberately left out of
the logic.

:class:`UpdatableStore` wraps an :class:`~repro.db.store.ObjectStore`
with insert/retract operations that keep every index consistent.
Retraction removes atomic facts (a type membership, a label pair, a
predicate row); retracting the last type of an object removes it from
the active domain unless it still participates in label pairs.

:meth:`UpdatableStore.transaction` scopes a batch of these operations
under the store's undo journal: every atomic mutation records its
inverse, commit discards the journal, rollback replays it newest-first
— so a failed batch leaves the store exactly as it found it.
"""

from __future__ import annotations

from typing import Optional

from repro.core.errors import StoreError
from repro.core.terms import OBJECT, Term
from repro.core.types import TypeHierarchy
from repro.db.store import ObjectStore, ground_id
from repro.runtime.faults import fault_point, register_fault_point

__all__ = ["StoreTransaction", "UpdatableStore"]

# Fault points sit after the presence checks and before the first
# mutation of each retract operation, so an injected crash leaves the
# store untouched by that operation — the journal (plus the hardened
# commit below) is what guarantees earlier operations roll back too.
_FP_REMOVE_TYPE = register_fault_point("updates.remove_from_type")
_FP_REMOVE_LABEL = register_fault_point("updates.remove_label")
_FP_REMOVE_OBJECT = register_fault_point("updates.remove_object")


class UpdatableStore:
    """Insert/retract façade over an object store."""

    def __init__(self, hierarchy: Optional[TypeHierarchy] = None) -> None:
        self.store = ObjectStore(hierarchy)

    # ------------------------------------------------------------------
    # Inserts
    # ------------------------------------------------------------------

    def insert(self, description: Term) -> bool:
        """Insert a ground description (its type defaults to ``object``
        when unannotated, the paper's default-type remark)."""
        return self.store.assert_description(description)

    def add_to_type(self, identity: Term, type_name: str) -> bool:
        """Add an existing or new object to a type's extent."""
        return self.store.add_type(type_name, ground_id(identity))

    def add_label(self, host: Term, label: str, value: Term) -> bool:
        host_id = ground_id(host)
        value_id = ground_id(value)
        changed = self.store.add_type(OBJECT, host_id)
        changed |= self.store.add_type(OBJECT, value_id)
        return self.store._add_label(label, host_id, value_id) or changed

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def transaction(self) -> "StoreTransaction":
        """Scope a batch of updates under the undo journal::

            with updatable.transaction():
                updatable.insert(term)
                updatable.remove_label(host, "linkto", value)
            # committed; an exception inside the block rolls back

        Transactions do not nest (the journal is a single log)."""
        return StoreTransaction(self.store)

    # ------------------------------------------------------------------
    # Retracts
    # ------------------------------------------------------------------

    def remove_from_type(self, identity: Term, type_name: str) -> bool:
        """Remove an object from one type's extent (dynamic membership).

        Removing from ``object`` is rejected: ``object`` is the active
        domain; use :meth:`remove_object` to delete the object outright.
        """
        if type_name == OBJECT:
            raise StoreError("remove the object itself instead of its 'object' membership")
        store = self.store
        key = ground_id(identity)
        extent = store._types.get(type_name)
        if not extent or key not in extent:
            return False
        fault_point(_FP_REMOVE_TYPE)
        extent.discard(key)
        store._types_of[key].discard(type_name)
        stamp = store._stamps.pop(("t", type_name, key), 0)
        if store._journal is not None:
            store._journal.append(("t-", type_name, key, stamp))
        return True

    def remove_label(self, host: Term, label: str, value: Term) -> bool:
        store = self.store
        host_id = ground_id(host)
        value_id = ground_id(value)
        values = store._labels.get(label, {}).get(host_id)
        if not values or value_id not in values:
            return False
        fault_point(_FP_REMOVE_LABEL)
        values.discard(value_id)
        store._labels_inv[label][value_id].discard(host_id)
        store._label_pairs[label] -= 1
        stamp = store._stamps.pop(("l", label, host_id, value_id), 0)
        if store._journal is not None:
            store._journal.append(("l-", label, host_id, value_id, stamp))
        return True

    def remove_object(self, identity: Term) -> bool:
        """Delete an object: all type memberships, all label pairs it
        participates in (either side), all predicate rows mentioning it."""
        store = self.store
        key = ground_id(identity)
        if key not in store._all_ids:
            return False
        fault_point(_FP_REMOVE_OBJECT)
        for type_name in list(store._types_of.get(key, ())):
            if type_name != OBJECT:
                self.remove_from_type(identity, type_name)
        store._types_of.pop(key, None)
        if key in store._types.get(OBJECT, set()):
            store._types[OBJECT].discard(key)
            stamp = store._stamps.pop(("t", OBJECT, key), 0)
            if store._journal is not None:
                store._journal.append(("t-", OBJECT, key, stamp))
        for label in list(store._labels):
            for value in list(store._labels[label].get(key, ())):
                self.remove_label(identity, label, value)
            store._labels[label].pop(key, None)
            hosts_of = store._labels_inv[label].get(key, set())
            for host in list(hosts_of):
                values = store._labels[label].get(host)
                if values and key in values:
                    values.discard(key)
                    store._label_pairs[label] -= 1
                    stamp = store._stamps.pop(("l", label, host, key), 0)
                    if store._journal is not None:
                        store._journal.append(("l-", label, host, key, stamp))
            store._labels_inv[label].pop(key, None)
        for signature in list(store._preds):
            rows = store._preds[signature]
            doomed = [row for row in rows if key in row]
            for row in doomed:
                rows.discard(row)
                stamp = store._stamps.pop(("p", signature[0], row), 0)
                if store._journal is not None:
                    store._journal.append(("p-", signature, row, stamp))
        store._all_ids.discard(key)
        if store._journal is not None:
            store._journal.append(("dom-", key))
        kept: list[Term] = []
        for index, fact in enumerate(store._clustered):
            if ground_id(fact) == key:
                if store._journal is not None:
                    store._journal.append(("c-", index, fact))
            else:
                kept.append(fact)
        store._clustered = kept
        store._clustered_set = set(kept)
        return True


class StoreTransaction:
    """Commit/rollback scope over an :class:`ObjectStore`'s undo journal.

    Created by :meth:`UpdatableStore.transaction`.  A clean ``with``
    exit commits; an exception rolls back (and re-raises).  Explicit
    :meth:`commit`/:meth:`rollback` work too.
    """

    def __init__(self, store: ObjectStore) -> None:
        self._store = store
        self._open = False

    def commit(self) -> int:
        """Keep the batch; returns how many mutations it recorded.

        If the commit itself fails, the batch is rolled back before the
        failure propagates — a failed commit must not leave the journal
        open with the mutations half-kept."""
        try:
            recorded = self._store.commit_journal()
        except BaseException:
            self._open = False
            if self._store._journal is not None:
                self._store.rollback_journal()
            raise
        self._open = False
        return recorded

    def rollback(self) -> int:
        """Undo the batch; returns how many mutations were reversed."""
        self._open = False
        return self._store.rollback_journal()

    def __enter__(self) -> "StoreTransaction":
        self._store.begin_journal()
        self._open = True
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if not self._open:  # already committed or rolled back explicitly
            return False
        if exc_type is None:
            self.commit()
        else:
            self.rollback()
        return False
