"""Database updates under the dynamic notion of types (Section 2.3).

"Under the dynamic aspect, a class denotes the set of objects ... and
such membership may be changed by database updates."  C-logic's types
carry no structural obligations, so updates are pure set manipulation:
inserting an object requires saying which type it joins (``object`` by
default), and removal simply shrinks extents — no schema checking is
involved, exactly because the static notion is deliberately left out of
the logic.

:class:`UpdatableStore` wraps an :class:`~repro.db.store.ObjectStore`
with insert/retract operations that keep every index consistent.
Retraction removes atomic facts (a type membership, a label pair, a
predicate row); retracting the last type of an object removes it from
the active domain unless it still participates in label pairs.
"""

from __future__ import annotations

from typing import Optional

from repro.core.errors import StoreError
from repro.core.terms import OBJECT, Term
from repro.core.types import TypeHierarchy
from repro.db.store import ObjectStore, ground_id

__all__ = ["UpdatableStore"]


class UpdatableStore:
    """Insert/retract façade over an object store."""

    def __init__(self, hierarchy: Optional[TypeHierarchy] = None) -> None:
        self.store = ObjectStore(hierarchy)

    # ------------------------------------------------------------------
    # Inserts
    # ------------------------------------------------------------------

    def insert(self, description: Term) -> bool:
        """Insert a ground description (its type defaults to ``object``
        when unannotated, the paper's default-type remark)."""
        return self.store.assert_description(description)

    def add_to_type(self, identity: Term, type_name: str) -> bool:
        """Add an existing or new object to a type's extent."""
        return self.store._add_type(type_name, ground_id(identity))

    def add_label(self, host: Term, label: str, value: Term) -> bool:
        host_id = ground_id(host)
        value_id = ground_id(value)
        changed = self.store._add_type(OBJECT, host_id)
        changed |= self.store._add_type(OBJECT, value_id)
        return self.store._add_label(label, host_id, value_id) or changed

    # ------------------------------------------------------------------
    # Retracts
    # ------------------------------------------------------------------

    def remove_from_type(self, identity: Term, type_name: str) -> bool:
        """Remove an object from one type's extent (dynamic membership).

        Removing from ``object`` is rejected: ``object`` is the active
        domain; use :meth:`remove_object` to delete the object outright.
        """
        if type_name == OBJECT:
            raise StoreError("remove the object itself instead of its 'object' membership")
        store = self.store
        key = ground_id(identity)
        extent = store._types.get(type_name)
        if not extent or key not in extent:
            return False
        extent.discard(key)
        store._types_of[key].discard(type_name)
        store._stamps.pop(("t", type_name, key), None)
        return True

    def remove_label(self, host: Term, label: str, value: Term) -> bool:
        store = self.store
        host_id = ground_id(host)
        value_id = ground_id(value)
        values = store._labels.get(label, {}).get(host_id)
        if not values or value_id not in values:
            return False
        values.discard(value_id)
        store._labels_inv[label][value_id].discard(host_id)
        store._label_pairs[label] -= 1
        store._stamps.pop(("l", label, host_id, value_id), None)
        return True

    def remove_object(self, identity: Term) -> bool:
        """Delete an object: all type memberships, all label pairs it
        participates in (either side), all predicate rows mentioning it."""
        store = self.store
        key = ground_id(identity)
        if key not in store._all_ids:
            return False
        for type_name in list(store._types_of.get(key, ())):
            if type_name != OBJECT:
                self.remove_from_type(identity, type_name)
        store._types_of.pop(key, None)
        store._types.get(OBJECT, set()).discard(key)
        store._stamps.pop(("t", OBJECT, key), None)
        for label in list(store._labels):
            for value in list(store._labels[label].get(key, ())):
                self.remove_label(identity, label, value)
            store._labels[label].pop(key, None)
            hosts_of = store._labels_inv[label].get(key, set())
            for host in list(hosts_of):
                values = store._labels[label].get(host)
                if values and key in values:
                    values.discard(key)
                    store._label_pairs[label] -= 1
                    store._stamps.pop(("l", label, host, key), None)
            store._labels_inv[label].pop(key, None)
        for signature in list(store._preds):
            rows = store._preds[signature]
            doomed = [row for row in rows if key in row]
            for row in doomed:
                rows.discard(row)
                store._stamps.pop(("p", signature[0], row), None)
        store._all_ids.discard(key)
        store._clustered = [
            fact for fact in store._clustered if ground_id(fact) != key
        ]
        store._clustered_set = set(store._clustered)
        return True
