"""Partial ordering (subsumption) over complex object descriptions.

Section 4: "For extensional databases, we may merge all information
about an object together ... and the query can be solved by checking
partial ordering over complex object descriptions [6]" (the ordering of
Bancilhon & Khoshafian's calculus).

For *ground* descriptions we say ``general <= specific`` when every
assertion the general description makes is made (or implied) by the
specific one:

* the identities are equal;
* the specific type annotation is a subtype of the general one
  (an object asserted as ``student`` is also a ``person``);
* every ``label => value`` of the general description appears among the
  specific description's values for that label (collections are read as
  subsets, per Section 5).

:func:`description_leq` implements that ordering, and
:func:`answers_by_subsumption` answers a (possibly non-ground) query
description against a store's *merged* descriptions by searching for
bindings under which the query becomes ``<=`` some merged description.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.core.decompose import spec_pairs
from repro.core.errors import StoreError
from repro.core.terms import BaseTerm, LTerm, OBJECT, Term, Var, is_ground
from repro.core.types import TypeHierarchy
from repro.db.store import ObjectStore, ground_id
from repro.engine.cunify import apply_binding, unify_identities

__all__ = ["description_leq", "answers_by_subsumption"]


def description_leq(
    general: Term, specific: Term, hierarchy: Optional[TypeHierarchy] = None
) -> bool:
    """The ordering ``general <= specific`` on ground descriptions."""
    if not (is_ground(general) and is_ground(specific)):
        raise StoreError("description_leq compares ground descriptions")
    hierarchy = hierarchy if hierarchy is not None else TypeHierarchy()
    if ground_id(general) != ground_id(specific):
        return False
    general_type = general.type
    specific_type = specific.type
    if general_type != OBJECT and not hierarchy.is_subtype(specific_type, general_type):
        return False
    specific_values: dict[str, set[BaseTerm]] = {}
    if isinstance(specific, LTerm):
        for label, value in spec_pairs(specific):
            specific_values.setdefault(label, set()).add(ground_id(value))
    if isinstance(general, LTerm):
        for label, value in spec_pairs(general):
            if ground_id(value) not in specific_values.get(label, ()):
                return False
    return True


def answers_by_subsumption(
    query: Term, store: ObjectStore
) -> Iterator[dict[str, BaseTerm]]:
    """Bindings under which ``query`` is subsumed by a merged description.

    The query's identity may be a variable or a partially instantiated
    term; its label values may be variables (bound from the stored value
    sets).  Each yielded binding maps the query's variable names to
    ground identities.
    """
    base = query.base if isinstance(query, LTerm) else query
    candidates = store.ids_of_type(base.type)
    specs = list(spec_pairs(query)) if isinstance(query, LTerm) else []
    seen: set[frozenset] = set()
    for identity in candidates:
        binding = unify_identities(base, identity)
        if binding is None:
            continue
        for full in _solve_specs(specs, 0, identity, binding, store):
            key = frozenset((name, apply_binding(Var(name), full)) for name in full)
            if key not in seen:
                seen.add(key)
                yield full


def _solve_specs(
    specs: list[tuple[str, Term]],
    index: int,
    identity: BaseTerm,
    binding: dict[str, BaseTerm],
    store: ObjectStore,
) -> Iterator[dict[str, BaseTerm]]:
    if index == len(specs):
        yield binding
        return
    label, value = specs[index]
    for stored in store.label_values(label, identity):
        extended = unify_identities(value, stored, binding)
        if extended is not None:
            yield from _solve_specs(specs, index + 1, identity, extended, store)
