"""The complex-object store substrate: clustered + decomposed storage,
description merging, subsumption ordering and dynamic updates."""

from repro.db.store import ObjectStore, ground_id
from repro.db.subsume import answers_by_subsumption, description_leq
from repro.db.updates import UpdatableStore

__all__ = [
    "ObjectStore",
    "UpdatableStore",
    "answers_by_subsumption",
    "description_leq",
    "ground_id",
]
