"""The user-facing API: knowledge bases with declarative identity
policies (Section 2.1's high-level interface) and multi-engine queries."""

from repro.interface.kb import (
    ENGINES,
    Answer,
    KnowledgeBase,
    QueryResult,
    Transaction,
)

__all__ = ["ENGINES", "Answer", "KnowledgeBase", "QueryResult", "Transaction"]
